//! `emtrust-suite` — the workspace umbrella package.
//!
//! This package exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. It re-exports the
//! member crates so that examples and tests can reach everything through a
//! single dependency graph.
//!
//! See the individual crates for the actual library surface:
//!
//! - [`emtrust`] — the runtime trust-evaluation framework (the paper's
//!   contribution),
//! - [`emtrust_aes`], [`emtrust_trojan`] — the device under test,
//! - [`emtrust_netlist`], [`emtrust_sim`], [`emtrust_layout`],
//!   [`emtrust_power`], [`emtrust_em`], [`emtrust_silicon`],
//!   [`emtrust_dsp`] — the substrates.

pub use emtrust;
/// The workspace-wide error type — every layer's error converts into it
/// with `?` (see [`emtrust::error`]).
pub use emtrust::Error;
pub use emtrust_aes;
pub use emtrust_dsp;
pub use emtrust_em;
/// The fleet ingestion service (sharded per-chip pipelines with
/// backpressure and circuit breakers). Lives above [`emtrust`] in the
/// dependency graph, so it is re-exported here rather than as an
/// `emtrust` module.
pub use emtrust_fleet;
pub use emtrust_layout;
pub use emtrust_netlist;
pub use emtrust_power;
pub use emtrust_silicon;
pub use emtrust_sim;
pub use emtrust_trojan;
