//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates registry, so the real `proptest`
//! cannot be fetched. This shim keeps the workspace's property tests
//! running: the [`proptest!`] macro expands each property into a loop of
//! seeded pseudo-random cases drawn from [`Strategy`] values (ranges,
//! [`collection::vec`], [`array::uniform16`]). There is no shrinking and
//! no persisted failure corpus — a failing case panics with the assertion
//! message, and the fixed seeding makes every run reproduce it.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-property configuration (subset of the upstream struct).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, with lengths drawn
    /// uniformly from `size` (a `usize` range, inclusive or exclusive).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-length array strategies.
pub mod array {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `[S::Value; 16]`.
    #[derive(Debug, Clone)]
    pub struct UniformArray16<S> {
        element: S,
    }

    /// Generates `[T; 16]` arrays with each element drawn from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> UniformArray16<S> {
        UniformArray16 { element }
    }

    impl<S: Strategy> Strategy for UniformArray16<S> {
        type Value = [S::Value; 16];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest permitted length.
    pub min: usize,
    /// Largest permitted length.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

/// The outcome of one generated case: pass, or skip via [`prop_assume!`].
/// Assertion failures panic directly, as `#[test]` functions expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseResult {
    /// The case ran to completion.
    Pass,
    /// The case's assumptions were not met; it does not count.
    Reject,
}

/// Deterministic per-property RNG: seeded from the property's name so
/// each property sees a distinct but fully reproducible stream.
pub fn case_rng(property_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32))
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseResult,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. Mirrors the upstream invocation shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(xs in proptest::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(xs.len() < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_properties! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one property per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                )*
                // The closure exists so `prop_assume!` can early-return.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> $crate::CaseResult {
                    $body
                    $crate::CaseResult::Pass
                })();
                let _ = outcome;
            }
        }
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property; panics with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn size_range_conversions() {
        let r: crate::SizeRange = (2..5).into();
        assert_eq!((r.min, r.max), (2, 4));
        let r: crate::SizeRange = (3..=3).into();
        assert_eq!((r.min, r.max), (3, 3));
    }

    #[test]
    fn case_rng_is_deterministic_per_property() {
        use rand::Rng;
        let a: u64 = crate::case_rng("p", 0).gen();
        let b: u64 = crate::case_rng("p", 0).gen();
        let c: u64 = crate::case_rng("p", 1).gen();
        let d: u64 = crate::case_rng("q", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vectors_respect_requested_sizes(
            xs in crate::collection::vec(-1.0f64..1.0, 4..=8)
        ) {
            prop_assert!(xs.len() >= 4 && xs.len() <= 8);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn arrays_are_sixteen_wide(key in crate::array::uniform16(0u8..=255)) {
            prop_assert_eq!(key.len(), 16);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }
}
