//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates registry, so the real `criterion`
//! cannot be fetched. This shim keeps `cargo bench` working with the same
//! bench sources: it times each closure over a fixed number of samples
//! and prints mean wall-clock time per iteration. Passing `--test` (as CI
//! does via `cargo bench -- --test`) runs every benchmark body exactly
//! once as a smoke test, without timing loops.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, handed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignored.
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        run_one(self, &id, 20, f);
        self
    }
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier combining a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An identifier naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared throughput of a benchmark, echoed alongside its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput (echoed, not verified).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id);
        let n = self.sample_size;
        run_one(self.criterion, &id, n, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        let n = self.sample_size;
        run_one(self.criterion, &id, n, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// per-benchmark, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records its mean wall-clock time. In
    /// `--test` mode the body runs exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            self.iterations = 1;
            return;
        }
        // One warm-up, then the timed samples.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, samples: usize, mut f: F) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples,
        test_mode: criterion.test_mode,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    if criterion.test_mode {
        println!("{id}: ok (smoke)");
    } else if b.iterations > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
        println!(
            "{id}: {} per iter ({} iters)",
            format_time(per_iter),
            b.iterations
        );
    } else {
        println!("{id}: no iterations recorded");
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("fit", 8).to_string(), "fit/8");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
