//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the real `rand` crate cannot be fetched. This shim
//! re-implements the small API surface the workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen`] and [`Rng::gen_range`] — on top of a
//! SplitMix64 generator. Streams are deterministic for a given seed (the
//! property every experiment in this repository relies on) but are *not*
//! the same streams the upstream ChaCha-based `StdRng` produces.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges a value type can be drawn uniformly from
/// (the shim's stand-in for `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; the tiny modulo bias of a
                // 64-bit word over these spans is irrelevant here.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing sampling interface of `rand::Rng`, auto-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's seeded generator: SplitMix64.
    ///
    /// Passes BigCrush-level statistical scrutiny for the uses here
    /// (Gaussian noise synthesis, stimulus draws) and is trivially
    /// reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let n = rng.gen_range(0u64..16);
            assert!(n < 16);
            let m = rng.gen_range(0u8..=255);
            let _ = m;
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn arrays_fill_with_distinct_bytes() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        assert_ne!(a, b);
    }
}
