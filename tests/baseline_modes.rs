//! The baseline contract: the empty-`GoldenContext` truth table across
//! all four detectors, rolling-statistics properties (batch-statistics
//! convergence, never-arms-early), and the bit-identity guarantee of
//! [`BaselineSource::Golden`] against a direct `fit`.

use emtrust::acquisition::TestBench;
use emtrust::detector::Detector;
use emtrust::persistence::{PersistenceConfig, SpectralPersistenceDetector};
use emtrust::sanitize::TraceSanitizer;
use emtrust::spectral::SpectralConfig;
use emtrust::{
    BaselineSource, ConsensusConfig, ConsensusDetector, DetectionPipeline, DetectorReadiness,
    EuclideanDetector, FingerprintConfig, GoldenContext, RollingBaseline, SelfCalibratingConfig,
    SpectralWindowDetector,
};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use proptest::prelude::*;

const KEY: [u8; 16] = *b"baseline test k!";

// ---------------------------------------------------------------------
// Empty-golden-context truth table
// ---------------------------------------------------------------------

/// Every detector's answer to "fit me with no golden material" and "fit
/// me reference-free", plus the readiness it reports at each step. This
/// is the behavior the boolean `is_fitted` used to blur: the two
/// golden-hungry detectors refuse an empty context outright (and stay
/// honestly unready), while the two reference-free detectors accept any
/// source.
#[test]
fn empty_golden_context_truth_table() {
    let selfcal = BaselineSource::self_calibrating(SelfCalibratingConfig::default());
    let warmup = SelfCalibratingConfig::default().warmup as u32;

    // Euclidean: refuses an empty context, supports self-calibration.
    let mut d = EuclideanDetector::from_config(FingerprintConfig::default());
    assert_eq!(d.readiness(), DetectorReadiness::NeedsGoldenTraces);
    assert!(d.fit(&GoldenContext::new()).is_err());
    assert_eq!(
        d.readiness(),
        DetectorReadiness::NeedsGoldenTraces,
        "a failed fit must leave the detector honestly unready"
    );
    assert!(d.fit_baseline(&selfcal).is_ok());
    assert_eq!(
        d.readiness(),
        DetectorReadiness::Calibrating {
            seen: 0,
            required: warmup
        }
    );

    // Spectral window: refuses an empty context (it wants a continuous
    // golden window, and says so), supports self-calibration.
    let mut d = SpectralWindowDetector::from_config(SpectralConfig::default());
    assert_eq!(d.readiness(), DetectorReadiness::NeedsGoldenWindow);
    assert!(d.fit(&GoldenContext::new()).is_err());
    assert_eq!(d.readiness(), DetectorReadiness::NeedsGoldenWindow);
    assert!(d.fit_baseline(&selfcal).is_ok());
    assert_eq!(
        d.readiness(),
        DetectorReadiness::Calibrating {
            seen: 0,
            required: warmup
        }
    );

    // Spectral persistence: reference-free by construction — an empty
    // context is a valid (re)fit and either baseline source works; the
    // warm-up whitelist keeps it in Calibrating until it has watched
    // enough windows.
    let mut d = SpectralPersistenceDetector::new(PersistenceConfig::default());
    assert!(matches!(
        d.readiness(),
        DetectorReadiness::Calibrating { seen: 0, .. }
    ));
    assert!(d.fit(&GoldenContext::new()).is_ok());
    assert!(d.fit_baseline(&selfcal).is_ok());
    assert!(!d.readiness().is_ready());

    // Consensus: a stateless spatial vote over per-tile margins —
    // always ready, any source fits.
    let mut d = ConsensusDetector::new(ConsensusConfig::default()).expect("consensus");
    assert_eq!(d.readiness(), DetectorReadiness::Ready);
    assert!(d.fit(&GoldenContext::new()).is_ok());
    assert!(d.fit_baseline(&selfcal).is_ok());
    assert_eq!(d.readiness(), DetectorReadiness::Ready);

    // The labels telemetry and artifacts key on are stable.
    assert_eq!(
        DetectorReadiness::NeedsGoldenTraces.label(),
        "needs_golden_traces"
    );
    assert_eq!(
        DetectorReadiness::NeedsGoldenWindow.label(),
        "needs_golden_window"
    );
    assert_eq!(
        DetectorReadiness::Calibrating {
            seen: 0,
            required: 1
        }
        .label(),
        "calibrating"
    );
    assert_eq!(DetectorReadiness::Ready.label(), "ready");
}

// ---------------------------------------------------------------------
// Rolling-statistics properties
// ---------------------------------------------------------------------

/// Mirrors `emtrust_dsp::stats::median`: upper-middle element on even
/// lengths, so the property comparison is exact rather than approximate.
fn med(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[v.len() / 2]
}

/// Deterministic stationary traffic: a fixed waveform plus small
/// hash-derived jitter, so every proptest case is reproducible.
fn stationary_rows(n: usize, dims: usize, base: f64, jitter: f64, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|d| {
                    let h = (((i * dims + d + 1) as f64) * (seed + 1) as f64 * 12.9898).sin()
                        * 43758.5453;
                    base + (d as f64 * 0.3).sin().abs() + jitter * (h.fract() - 0.5)
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On stationary clean traffic the rolling baseline (a) never arms
    /// before the warm-up ring fills, scoring nothing in the meantime,
    /// and (b) arms to exactly the batch robust statistics — same
    /// scale, same per-dimension median centre, same median + k × MAD
    /// threshold — computed independently here.
    #[test]
    fn rolling_baseline_matches_batch_statistics_and_never_arms_early(
        warmup in 2usize..12,
        dims in 2usize..10,
        base in 0.5f64..2.0,
        jitter in 0.01f64..0.2,
        seed in 0u64..512,
    ) {
        let rows = stationary_rows(warmup, dims, base, jitter, seed);
        let cfg = SelfCalibratingConfig { warmup, ..SelfCalibratingConfig::default() };
        let mut rb = RollingBaseline::new(cfg).expect("valid config");
        for (i, row) in rows.iter().enumerate() {
            prop_assert!(!rb.is_armed(), "must not arm before the ring fills");
            prop_assert!(rb.threshold().is_err(), "no threshold during warm-up");
            prop_assert!(rb.distance(row).is_err(), "no distance during warm-up");
            let armed = rb.observe(row).expect("finite observation");
            prop_assert_eq!(armed, i + 1 == warmup, "arms exactly when the ring fills");
        }
        prop_assert!(rb.is_armed());

        // Batch statistics over the same rows, computed from scratch.
        let scale = rows
            .iter()
            .map(|r| r.iter().map(|x| x * x).sum::<f64>().sqrt())
            .sum::<f64>()
            / warmup as f64;
        let center: Vec<f64> = (0..dims)
            .map(|d| med(&rows.iter().map(|r| r[d] / scale).collect::<Vec<_>>()))
            .collect();
        let distances: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .zip(&center)
                    .map(|(&x, &c)| (x / scale - c).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        let md = med(&distances);
        let mad = med(&distances.iter().map(|&d| (d - md).abs()).collect::<Vec<_>>());
        let expected = (md + cfg.mad_multiplier * mad).max(f64::MIN_POSITIVE);

        let m = rb.model().expect("armed baselines expose their model");
        prop_assert!((m.scale - scale).abs() <= 1e-12 * scale.abs());
        prop_assert_eq!(m.center.len(), dims);
        for (got, want) in m.center.iter().zip(&center) {
            prop_assert!((got - want).abs() <= 1e-12);
        }
        prop_assert!((m.median_distance - md).abs() <= 1e-12);
        prop_assert!((m.mad_distance - mad).abs() <= 1e-12);
        prop_assert!((m.threshold - expected).abs() <= 1e-12);
    }
}

// ---------------------------------------------------------------------
// Golden bit-identity
// ---------------------------------------------------------------------

/// `BaselineSource::Golden` is a pass-through: a pipeline fitted
/// through it must reproduce a directly-fitted pipeline's verdicts,
/// votes and alarms bit for bit on the same mixed clean/Trojan batch.
#[test]
fn golden_baseline_source_is_bit_identical_to_direct_fit() {
    let chip = ProtectedChip::with_all_trojans();
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect(KEY, 16, None, Channel::OnChipSensor, 11)
        .expect("golden collection");
    let suspects = bench
        .collect(
            KEY,
            8,
            Some(TrojanKind::T2LeakageLeaker),
            Channel::OnChipSensor,
            11,
        )
        .expect("suspect collection");
    let mixed: Vec<Vec<f64>> = golden
        .traces()
        .iter()
        .chain(suspects.traces())
        .cloned()
        .collect();

    let build = || {
        DetectionPipeline::builder()
            .detector(Box::new(EuclideanDetector::from_config(
                FingerprintConfig::default(),
            )))
            .sanitizer(TraceSanitizer::default())
            .build()
    };
    let ctx = GoldenContext::new().with_traces(&golden);

    let mut direct = build();
    direct.fit(&ctx).expect("direct fit");
    let mut via_source = build();
    via_source
        .fit_baseline(&BaselineSource::golden(ctx))
        .expect("fit via baseline source");
    assert!(!via_source.is_self_calibrating());
    assert!(via_source.calibration_state().is_armed());
    assert_eq!(
        via_source.detector_readiness(),
        vec![DetectorReadiness::Ready]
    );

    let a = direct.try_ingest_batch(&mixed).expect("direct ingest");
    let b = via_source.try_ingest_batch(&mixed).expect("source ingest");
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    assert_eq!(a.alarms.len(), b.alarms.len());
    let mut alarms = 0usize;
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.verdict, y.verdict);
        assert_eq!(x.health, y.health);
        assert_eq!(x.alarm.is_some(), y.alarm.is_some());
        alarms += usize::from(x.alarm.is_some());
        assert_eq!(x.votes.len(), y.votes.len());
        for (vx, vy) in x.votes.iter().zip(&y.votes) {
            assert_eq!(vx.detector, vy.detector);
            assert_eq!(vx.suspected, vy.suspected);
            assert_eq!(
                vx.score.statistic.to_bits(),
                vy.score.statistic.to_bits(),
                "statistics must agree bit for bit"
            );
            assert_eq!(vx.score.threshold.to_bits(), vy.score.threshold.to_bits());
        }
    }
    assert!(alarms > 0, "the Trojan half of the batch must alarm");
}
