//! Decision forensics across the real pipeline: every scored trace must
//! leave a replayable [`DecisionRecord`], alarms must be reconstructible
//! from their flight windows, the JSONL export must round-trip the log,
//! and hostile label cardinality must never grow the registry past its
//! cap (the overflow bucket absorbs the excess without panicking).
//!
//! [`DecisionRecord`]: emtrust::telemetry::DecisionRecord

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::telemetry::{
    self, decisions_jsonl, FlightRecorderConfig, ForensicsConfig, InMemoryRecorder, LabelSet,
    Recorder,
};
use emtrust::{FingerprintConfig, GoldenFingerprint, TrustMonitor};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

const KEY: [u8; 16] = *b"forensics test!!";
const STIMULUS: Stimulus = Stimulus::Fixed(*b"forensics block!");

/// The global recorder is process state: tests that install one are
/// serialized through this lock (poison-tolerant so one failure doesn't
/// cascade).
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn decision_log_reconstructs_a_trojan_replay() {
    let _guard = lock();
    let registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(registry.clone());

    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 51)
        .expect("golden");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fit");
    let mut monitor = TrustMonitor::builder(fp)
        .with_chip_id("chip-e2e")
        .with_forensics(ForensicsConfig {
            flight: FlightRecorderConfig {
                pre: 2,
                post: 1,
                max_windows: 16,
            },
            ..ForensicsConfig::default()
        })
        .build();

    let clean = bench
        .collect_with(KEY, STIMULUS, 3, None, Channel::OnChipSensor, 52)
        .expect("clean");
    for t in clean.traces() {
        assert!(monitor.ingest_trace(t).expect("ingest").is_none());
    }
    let infected = bench
        .collect_with(
            KEY,
            STIMULUS,
            3,
            Some(TrojanKind::T4PowerDegrader),
            Channel::OnChipSensor,
            53,
        )
        .expect("infected");
    let raised = monitor.ingest_batch(infected.traces()).expect("batch");
    monitor.seal_flight_windows();
    telemetry::uninstall();
    assert!(!raised.is_empty(), "the armed Trojan must alarm");

    // One record per scored trace, each labeled with the chip id.
    let decisions = monitor.decisions();
    assert_eq!(
        decisions.len(),
        clean.traces().len() + infected.traces().len()
    );
    assert!(decisions
        .iter()
        .all(|r| r.labels.get("chip_id") == Some("chip-e2e")));

    // Fused records carry the exact correlation ids the alarms were
    // assigned, in order.
    let fused_ids: Vec<u64> = decisions
        .iter()
        .filter(|r| r.fused_alarm)
        .filter_map(|r| r.correlation_id)
        .collect();
    let alarm_ids: Vec<u64> = monitor
        .alarms()
        .iter()
        .map(emtrust::monitor::Alarm::correlation_id)
        .collect();
    assert_eq!(fused_ids, alarm_ids);

    // Every alarm froze a flight window whose trigger record is the
    // alarm's own decision.
    for id in &alarm_ids {
        let window = monitor
            .flight_windows()
            .iter()
            .find(|w| w.correlation_id == *id)
            .unwrap_or_else(|| panic!("no flight window for correlation id {id}"));
        let trigger = window.trigger_record().expect("sealed window");
        assert!(trigger.fused_alarm);
        assert_eq!(trigger.correlation_id, Some(*id));
        assert!(window.records[..window.trigger]
            .iter()
            .all(|r| !r.fused_alarm));
    }

    // The global recorder mirrored the decision stream, and the JSONL
    // export round-trips every record on its own line.
    assert_eq!(registry.decisions().len(), decisions.len());
    let jsonl = decisions_jsonl(decisions);
    assert_eq!(jsonl.lines().count(), decisions.len());
    for (line, rec) in jsonl.lines().zip(decisions) {
        assert_eq!(line, rec.to_json());
        assert!(line.contains("\"domain\":\"trace\""));
    }

    // Labeled series reached the registry under the chip's label.
    let snap = registry.snapshot();
    let labeled: Vec<&str> = snap
        .labeled_counters
        .iter()
        .filter(|(_, family)| family.keys().any(|l| l.get("chip_id") == Some("chip-e2e")))
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(
        !labeled.is_empty(),
        "expected chip-labeled counter families, got {:?}",
        snap.labeled_counters.keys().collect::<Vec<_>>()
    );
}

#[test]
fn ten_thousand_distinct_labels_stay_bounded() {
    // Hostile cardinality: 10k+ distinct label values against a small
    // cap must neither grow the family past cap+overflow nor lose
    // updates. No global install needed — the registry is exercised
    // directly, so this runs in parallel with the e2e test.
    const CAP: usize = 64;
    const DISTINCT: u64 = 10_500;
    let registry = InMemoryRecorder::new().with_series_cap(CAP);
    for i in 0..DISTINCT {
        let labels = LabelSet::new().with("chip_id", format!("chip-{i}"));
        registry.counter_with("fleet.traces", &labels, 1);
        registry.observe_with("fleet.distance", &labels, i as f64);
    }
    let snap = registry.snapshot();
    let family = &snap.labeled_counters["fleet.traces"];
    assert_eq!(family.len(), CAP + 1, "cap plus the overflow bucket");
    let overflow = family[&LabelSet::overflow()];
    assert_eq!(overflow, DISTINCT - CAP as u64, "no update may be lost");
    assert_eq!(snap.labeled_histograms["fleet.distance"].len(), CAP + 1);
    assert_eq!(snap.series_overflowed, 2 * (DISTINCT - CAP as u64));
}

/// Maps a numeric seed onto a deliberately hostile label value: quote,
/// backslash, newline, and multibyte prefixes exercise the sink escaping
/// paths while the numeric suffix controls distinctness.
fn hostile_value(seed: u32) -> String {
    const PREFIXES: [&str; 6] = ["", "\"", "\\", "\n", "tile-µ", "r\"c\\n"];
    format!("{}{}", PREFIXES[(seed % 6) as usize], seed / 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary label values (including empty strings, quotes,
    /// newlines, backslashes, UTF-8) against a tiny cap: the family
    /// never exceeds cap+1 series, no update is lost, and neither the
    /// registry nor the Prometheus sink panics.
    #[test]
    fn hostile_label_values_never_breach_the_cap(
        seeds in proptest::collection::vec(0u32..5000, 1..200),
        cap in 1usize..8,
    ) {
        let values: Vec<String> = seeds.iter().map(|&s| hostile_value(s)).collect();
        let registry = InMemoryRecorder::new().with_series_cap(cap);
        for v in &values {
            let labels = LabelSet::new().with("tile", v.clone());
            registry.counter_with("prop.updates", &labels, 1);
        }
        let snap = registry.snapshot();
        let family = &snap.labeled_counters["prop.updates"];
        prop_assert!(family.len() <= cap + 1, "family {} > cap {cap}+1", family.len());
        let total: u64 = family.values().sum();
        prop_assert_eq!(total, values.len() as u64, "updates must never be lost");
        let distinct: std::collections::BTreeSet<&String> = values.iter().collect();
        let expected_overflow = distinct.len().saturating_sub(cap) as u64;
        // Every update whose label set arrived after the cap filled is
        // routed (and counted) — re-hits of routed sets count again.
        prop_assert!(snap.series_overflowed >= expected_overflow);
        let sinks = emtrust::telemetry::sink::prometheus_text(&snap);
        prop_assert!(sinks.contains("emtrust_prop_updates"));
    }
}
