//! Chaos suite: randomized fault plans thrown at the hardened ingestion
//! path. The properties under test are the robustness contract of the
//! fault/sanitize/health stack, not detection quality:
//!
//! - no fault plan, at any intensity or composition, panics the monitor;
//! - every ingested trace is accounted for (clean + degraded + rejected);
//! - fault realizations and monitor outcomes replay bit-identically;
//! - sensor-health transitions only ever step to adjacent states.

use emtrust::faults::{FaultKind, FaultPlan, FaultSpec};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::health::SensorHealth;
use emtrust::monitor::TrustMonitor;
use emtrust::sanitize::{TraceDefect, TraceSanitizer, TraceVerdict};
use emtrust::TraceSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_TRACES: usize = 12;
const TRACE_LEN: usize = 256;

/// Synthetic clean traces: a smooth tone plus per-trace noise, enough
/// spread for a meaningful Eq. 1 threshold.
fn clean_traces(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..TRACE_LEN)
                .map(|j| (j as f64 / 9.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

fn fitted_monitor() -> TrustMonitor {
    let golden = TraceSet::new(clean_traces(32, 1), 640e6).expect("golden set");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fit");
    TrustMonitor::builder(fp)
        .with_sanitizer(TraceSanitizer::default())
        .build()
}

/// Builds a random 1–3 entry plan from one seed (kinds, intensities and
/// probabilities all derived deterministically).
fn random_plan(seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A05);
    let n_entries = rng.gen_range(1..4usize);
    let mut plan = FaultPlan::new(seed);
    for _ in 0..n_entries {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let spec = FaultSpec::new(kind, rng.gen_range(0.05..1.0))
            .with_probability(rng.gen_range(0.3..1.0));
        plan = plan.with(spec);
    }
    plan
}

fn corrupt(plan: &FaultPlan, seed: u64) -> Vec<Vec<f64>> {
    clean_traces(N_TRACES, seed)
        .into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            plan.apply(i as u64, 0, None, &mut t, 640e6);
            t
        })
        .collect()
}

fn adjacent(a: SensorHealth, b: SensorHealth) -> bool {
    !matches!(
        (a, b),
        (SensorHealth::Healthy, SensorHealth::SensorFault)
            | (SensorHealth::SensorFault, SensorHealth::Healthy)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn chaos_plans_never_panic_and_account_for_every_trace(seed in 0u64..u64::MAX) {
        let plan = random_plan(seed);
        let traces = corrupt(&plan, 2);

        // Bit-identical fault realization on replay.
        let replay = corrupt(&plan, 2);
        for (a, b) in traces.iter().flatten().zip(replay.iter().flatten()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let mut monitor = fitted_monitor();
        let batch = monitor.ingest_batch_report(&traces);

        // 100 % accounting: every trace is exactly one of the three.
        prop_assert_eq!(batch.reports.len(), N_TRACES);
        prop_assert_eq!(batch.clean() + batch.degraded() + batch.rejected(), N_TRACES);
        prop_assert_eq!(
            monitor.traces_seen() + monitor.traces_rejected(),
            N_TRACES as u64
        );
        prop_assert_eq!(monitor.traces_rejected(), batch.rejected() as u64);

        // Health transitions only ever step to adjacent states.
        for t in monitor.health_tracker().transitions() {
            prop_assert!(adjacent(t.from, t.to), "jump {:?} -> {:?}", t.from, t.to);
        }

        // The whole monitor outcome replays bit-identically.
        let mut second = fitted_monitor();
        let batch2 = second.ingest_batch_report(&replay);
        prop_assert_eq!(batch.reports, batch2.reports);
        prop_assert_eq!(monitor.alarms(), second.alarms());
        prop_assert_eq!(monitor.health(), second.health());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// `ingest_batch_report` rejected accounting: however a batch mixes
    /// clean traces with unconditionally-rejectable ones (NaN bodies,
    /// empty traces), `rejected()` counts exactly the bad ones and the
    /// monitor's cumulative counters agree across batches.
    #[test]
    fn rejected_accounting_is_exact_under_mixed_batches(
        seed in 0u64..u64::MAX,
        n_batches in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBADACC);
        let mut monitor = fitted_monitor();
        let mut expected_rejected = 0u64;
        let mut expected_total = 0u64;
        for batch_no in 0..n_batches {
            let n = rng.gen_range(1..10usize);
            let mut traces = clean_traces(n, seed.wrapping_add(batch_no as u64));
            let mut bad_here = 0usize;
            for t in traces.iter_mut() {
                if rng.gen_bool(0.4) {
                    bad_here += 1;
                    if rng.gen_bool(0.5) {
                        *t = vec![f64::NAN; TRACE_LEN];
                    } else {
                        *t = Vec::new();
                    }
                }
            }
            let report = monitor.ingest_batch_report(&traces);
            prop_assert_eq!(report.reports.len(), n);
            prop_assert!(report.rejected() >= bad_here, "bad traces must be rejected");
            prop_assert_eq!(
                report.clean() + report.degraded() + report.rejected(),
                n
            );
            expected_rejected += report.rejected() as u64;
            expected_total += n as u64;
            prop_assert_eq!(monitor.traces_rejected(), expected_rejected);
            prop_assert_eq!(
                monitor.traces_seen() + monitor.traces_rejected(),
                expected_total
            );
        }
    }

    /// A quarantine→recovery storm — alternating runs of rejected and
    /// clean traces of random lengths — never makes the health state
    /// machine jump a state, and the consecutive-rejection streak the
    /// fleet's circuit breakers key on resets on the first clean trace.
    #[test]
    fn health_stays_adjacent_through_quarantine_recovery_storms(
        seed in 0u64..u64::MAX,
        phases in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5701A);
        let mut monitor = fitted_monitor();
        let mut seen = vec![monitor.health()];
        for phase in 0..phases {
            let poisoned = phase % 2 == 0;
            let len = rng.gen_range(1..24usize);
            if poisoned {
                for _ in 0..len {
                    seen.push(monitor.ingest_checked(&[f64::NAN; 16]).health);
                }
                prop_assert_eq!(
                    monitor.health_tracker().consecutive_rejections(),
                    len as u64
                );
            } else {
                for t in clean_traces(len, seed ^ phase as u64) {
                    seen.push(monitor.ingest_checked(&t).health);
                }
                prop_assert_eq!(monitor.health_tracker().consecutive_rejections(), 0);
            }
        }
        for w in seen.windows(2) {
            prop_assert!(adjacent(w[0], w[1]), "jump {:?} -> {:?}", w[0], w[1]);
        }
        for t in monitor.health_tracker().transitions() {
            prop_assert!(adjacent(t.from, t.to), "jump {:?} -> {:?}", t.from, t.to);
        }
    }
}

#[test]
fn every_fault_kind_at_full_intensity_is_survived() {
    for kind in FaultKind::ALL {
        let plan = FaultPlan::single(9, kind, 1.0);
        let traces = corrupt(&plan, 3);
        let mut monitor = fitted_monitor();
        let batch = monitor.ingest_batch_report(&traces);
        assert_eq!(
            batch.clean() + batch.degraded() + batch.rejected(),
            N_TRACES,
            "accounting broke under {}",
            kind.label()
        );
    }
}

#[test]
fn nan_corruption_is_rejected_as_non_finite() {
    let plan = FaultPlan::single(4, FaultKind::NanCorruption, 0.5);
    let traces = corrupt(&plan, 5);
    let mut monitor = fitted_monitor();
    let batch = monitor.ingest_batch_report(&traces);
    assert_eq!(batch.rejected(), N_TRACES);
    for r in &batch.reports {
        assert!(matches!(
            r.verdict,
            TraceVerdict::Rejected {
                reason: TraceDefect::NonFinite { .. }
            }
        ));
    }
    assert!(monitor.alarms().is_empty());
}

#[test]
fn sustained_flatline_walks_health_down_and_recovery_walks_it_back() {
    let mut monitor = fitted_monitor();
    let flat = vec![0.25; TRACE_LEN];
    let mut seen = vec![monitor.health()];
    for _ in 0..32 {
        seen.push(monitor.ingest_checked(&flat).health);
    }
    assert_eq!(monitor.health(), SensorHealth::SensorFault);
    assert!(seen.contains(&SensorHealth::Degraded));
    for t in clean_traces(64, 6) {
        seen.push(monitor.ingest_checked(&t).health);
    }
    assert_eq!(monitor.health(), SensorHealth::Healthy);
    for w in seen.windows(2) {
        assert!(adjacent(w[0], w[1]), "jump {:?} -> {:?}", w[0], w[1]);
    }
}

#[test]
fn per_trace_failures_do_not_abort_the_batch() {
    let mut traces = clean_traces(5, 7);
    traces[2] = vec![f64::NAN; TRACE_LEN];
    traces[4] = vec![]; // empty trace
    let mut monitor = fitted_monitor();
    let batch = monitor.ingest_batch_report(&traces);
    assert_eq!(batch.reports.len(), 5);
    assert_eq!(batch.rejected(), 2);
    assert_eq!(batch.clean(), 3);
    assert!(batch.reports[2].verdict.is_rejected());
    assert!(batch.reports[4].verdict.is_rejected());
    assert_eq!(monitor.traces_seen(), 3);
}
