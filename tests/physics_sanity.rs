//! Physics sanity across the layout → EM chain: the qualitative laws the
//! paper's argument rests on must emerge from the solver, not from
//! constants.

use emtrust_em::coil::Coil;
use emtrust_em::coupling::CouplingMap;
use emtrust_layout::floorplan::Die;
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;

fn die() -> Die {
    Die::square(600.0).expect("die")
}

#[test]
fn coupling_falls_monotonically_with_probe_standoff() {
    let mut last = f64::INFINITY;
    for z in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let probe = ExternalProbe::over_die(die())
            .with_standoff(z)
            .expect("probe");
        let m = CouplingMap::build(&Coil::External(probe), die())
            .expect("map")
            .mean_abs();
        assert!(m < last, "coupling must fall with distance (z={z})");
        last = m;
    }
}

#[test]
fn coupling_grows_with_spiral_turns() {
    let mut last = 0.0;
    for turns in [5, 10, 20, 40] {
        let coil = Coil::OnChip(SpiralSensor::with_turns(die(), turns).expect("spiral"));
        let m = CouplingMap::build(&coil, die()).expect("map").mean_abs();
        assert!(m > last, "more turns must link more flux (turns={turns})");
        last = m;
    }
}

#[test]
fn spiral_couples_strongest_where_it_winds_tightest() {
    let coil = Coil::OnChip(SpiralSensor::for_die(die()).expect("spiral"));
    let map = CouplingMap::build(&coil, die()).expect("map");
    let center = map.at(300.0, 300.0);
    let mid = map.at(150.0, 300.0);
    let corner = map.at(20.0, 20.0);
    assert!(center > mid.abs(), "centre beats mid-radius");
    assert!(
        center > 3.0 * corner.abs(),
        "centre ({center:.3e}) dwarfs the corner ({corner:.3e})"
    );
}

#[test]
fn external_probe_is_spatially_blind() {
    let coil = Coil::External(ExternalProbe::over_die(die()));
    let map = CouplingMap::build(&coil, die()).expect("map");
    let center = map.at(300.0, 300.0);
    let corner = map.at(30.0, 30.0);
    // Less than 30% variation across the die: no localization power.
    assert!(
        (center - corner).abs() < 0.3 * center.abs(),
        "probe kernel must be nearly uniform: centre {center:.3e}, corner {corner:.3e}"
    );
}

#[test]
fn onchip_advantage_is_an_order_of_magnitude() {
    let on = CouplingMap::build(
        &Coil::OnChip(SpiralSensor::for_die(die()).expect("spiral")),
        die(),
    )
    .expect("map");
    let ext =
        CouplingMap::build(&Coil::External(ExternalProbe::over_die(die())), die()).expect("map");
    let ratio = on.mean_abs() / ext.mean_abs();
    assert!(
        ratio > 5.0,
        "on-chip/external coupling ratio {ratio:.1} (the SNR gap's origin)"
    );
}

#[test]
fn sensor_respects_manufacturing_rules() {
    let spiral = SpiralSensor::for_die(die()).expect("spiral");
    assert!(spiral.width_um() >= emtrust_layout::spiral::MIN_WIDTH_UM);
    assert!(spiral.pitch_um() >= 2.0 * emtrust_layout::spiral::MIN_WIDTH_UM);
    // One-way: total length far exceeds one perimeter (it winds inward
    // to outward), and resistance is in a measurable range.
    assert!(spiral.wire_length_um() > 4.0 * 600.0);
    assert!(spiral.resistance_ohm() > 100.0);
    assert!(spiral.resistance_ohm() < 1e6);
}
