//! Functional equivalence between the behavioural AES-128 reference and
//! the gate-level netlist, with and without Trojans — the property that
//! makes every EM trace in this repository the trace of a *real* AES.

use emtrust_aes::reference::Aes128;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn gate_level_aes_matches_fips_reference(
        key in proptest::array::uniform16(0u8..=255),
        pt in proptest::array::uniform16(0u8..=255),
    ) {
        let chip = ProtectedChip::golden();
        let mut sim = chip.simulator().expect("simulator");
        let hw = chip.encrypt(&mut sim, key, pt);
        let sw = Aes128::new(key).encrypt_block(pt);
        prop_assert_eq!(hw, sw);
    }
}

#[test]
fn every_trigger_combination_preserves_functionality() {
    let chip = ProtectedChip::with_all_trojans();
    let mut sim = chip.simulator().expect("simulator");
    let key = *b"trigger-combo-k!";
    let pt = *b"trigger-combo-pt";
    let expect = Aes128::new(key).encrypt_block(pt);
    let kinds = [
        TrojanKind::T1AmLeaker,
        TrojanKind::T2LeakageLeaker,
        TrojanKind::T3CdmaLeaker,
        TrojanKind::T4PowerDegrader,
    ];
    for mask in 0u8..16 {
        for (i, &kind) in kinds.iter().enumerate() {
            chip.arm(&mut sim, kind, mask >> i & 1 != 0);
        }
        assert_eq!(
            chip.encrypt(&mut sim, key, pt),
            expect,
            "trigger mask {mask:#06b} corrupted the ciphertext"
        );
    }
}

#[test]
fn repeated_encryptions_are_deterministic() {
    let chip = ProtectedChip::with_all_trojans();
    let mut sim = chip.simulator().expect("simulator");
    let key = *b"determinism key!";
    let a = chip.encrypt(&mut sim, key, [0x11; 16]);
    let b = chip.encrypt(&mut sim, key, [0x22; 16]);
    let c = chip.encrypt(&mut sim, key, [0x11; 16]);
    assert_eq!(a, c);
    assert_ne!(a, b);
}
