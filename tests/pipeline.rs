//! The staged detection pipeline: fusion-policy truth tables, seeded
//! property tests, bit-identical equivalence against the legacy
//! `TrustMonitor` ingest paths, and three detectors fused side by side.

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::detector::EuclideanDetector;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::monitor::{Alarm, TrustMonitor};
use emtrust::persistence::{PersistenceConfig, SpectralPersistenceDetector};
use emtrust::sanitize::TraceSanitizer;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust::{DetectionPipeline, FusionPolicy, ScoreDetail, SpectralWindowDetector};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip, TrojanKind};
use proptest::prelude::*;

const KEY: [u8; 16] = *b"pipeline test k!";
const STIMULUS: Stimulus = Stimulus::Fixed(*b"pipeline test pt");

// ---------------------------------------------------------------------
// Fusion truth tables
// ---------------------------------------------------------------------

#[test]
fn or_fusion_truth_table() {
    let or = FusionPolicy::Or;
    assert!(!or.decide(&[]));
    assert!(!or.decide(&[false]));
    assert!(or.decide(&[true]));
    assert!(or.decide(&[false, true, false]));
    assert!(or.decide(&[true, true]));
}

#[test]
fn and_fusion_truth_table() {
    let and = FusionPolicy::And;
    assert!(!and.decide(&[]));
    assert!(and.decide(&[true]));
    assert!(!and.decide(&[true, false]));
    assert!(and.decide(&[true, true, true]));
    assert!(!and.decide(&[false, false]));
}

#[test]
fn majority_fusion_is_strict() {
    let maj = FusionPolicy::Majority;
    assert!(!maj.decide(&[]));
    assert!(maj.decide(&[true]));
    // Exactly half is not a majority.
    assert!(!maj.decide(&[true, false]));
    assert!(maj.decide(&[true, true, false]));
    assert!(!maj.decide(&[true, false, false]));
    assert!(!maj.decide(&[true, true, false, false]));
}

#[test]
fn weighted_fusion_sums_suspected_weights_inclusively() {
    let w = FusionPolicy::Weighted {
        weights: vec![2.0, 1.0],
        threshold: 2.0,
    };
    assert!(w.decide(&[true, false]), "2.0 >= 2.0 alarms (inclusive)");
    assert!(!w.decide(&[false, true]));
    assert!(w.decide(&[true, true]));
    // Votes beyond the weight list carry weight zero.
    assert!(!w.decide(&[false, false, true]));
    // The empty vote set never alarms, whatever the threshold.
    let zero = FusionPolicy::Weighted {
        weights: vec![],
        threshold: 0.0,
    };
    assert!(!zero.decide(&[]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fusion_policies_match_their_counting_predicates(
        raw in proptest::collection::vec(0u8..=1, 0..8),
    ) {
        let votes: Vec<bool> = raw.iter().map(|&v| v == 1).collect();
        let suspected = votes.iter().filter(|&&v| v).count();
        prop_assert_eq!(FusionPolicy::Or.decide(&votes), suspected > 0);
        prop_assert_eq!(
            FusionPolicy::And.decide(&votes),
            !votes.is_empty() && suspected == votes.len()
        );
        prop_assert_eq!(
            FusionPolicy::Majority.decide(&votes),
            2 * suspected > votes.len()
        );
        // Unit weights reduce Weighted to a count threshold.
        let k_of_n = FusionPolicy::Weighted {
            weights: vec![1.0; votes.len()],
            threshold: 2.0,
        };
        prop_assert_eq!(k_of_n.decide(&votes), !votes.is_empty() && suspected >= 2);
    }

    #[test]
    fn flipping_a_vote_to_suspected_never_clears_an_alarm(
        raw in proptest::collection::vec(0u8..=1, 1..8),
        flip in 0usize..8,
        threshold in 0.5f64..4.0,
    ) {
        let votes: Vec<bool> = raw.iter().map(|&v| v == 1).collect();
        let mut more = votes.clone();
        let flip = flip % more.len();
        more[flip] = true;
        let policies = [
            FusionPolicy::Or,
            FusionPolicy::And,
            FusionPolicy::Majority,
            FusionPolicy::Weighted {
                weights: vec![1.0; votes.len()],
                threshold,
            },
        ];
        for policy in policies {
            prop_assert!(
                !policy.decide(&votes) || policy.decide(&more),
                "{} lost its alarm when vote {} turned suspected",
                policy.label(),
                flip
            );
        }
    }
}

// ---------------------------------------------------------------------
// Bit-identical equivalence with the legacy monitor
// ---------------------------------------------------------------------

/// The pipeline `TrustMonitor::builder(fp).build()` wraps.
fn euclidean_pipeline(fp: &GoldenFingerprint) -> DetectionPipeline {
    DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fp.clone())))
        .fusion(FusionPolicy::Or)
        .build()
}

#[test]
fn per_trace_ingest_matches_the_legacy_monitor_bit_for_bit() {
    let sim_chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let si_chip = ProtectedChip::with_trojans(&[TrojanKind::T2LeakageLeaker]);
    let scenarios: [(TestBench, TrojanKind); 2] = [
        (
            TestBench::simulation(&sim_chip).expect("sim bench"),
            TrojanKind::T4PowerDegrader,
        ),
        (
            TestBench::silicon(&si_chip, 3).expect("silicon bench"),
            TrojanKind::T2LeakageLeaker,
        ),
    ];
    for (bench, trojan) in scenarios {
        let golden = bench
            .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 11)
            .expect("golden");
        let config = FingerprintConfig {
            pca_components: None,
            ..FingerprintConfig::default()
        };
        let fp = GoldenFingerprint::fit(&golden, config).expect("fit");
        let clean = bench
            .collect_with(KEY, STIMULUS, 6, None, Channel::OnChipSensor, 12)
            .expect("clean");
        let armed = bench
            .collect_with(KEY, STIMULUS, 6, Some(trojan), Channel::OnChipSensor, 13)
            .expect("armed");

        let mut monitor = TrustMonitor::builder(fp.clone()).build();
        let mut pipeline = euclidean_pipeline(&fp);
        for t in clean.traces().iter().chain(armed.traces().iter()) {
            let legacy = monitor.ingest_trace(t).expect("monitor ingest");
            let outcome = pipeline.try_ingest_trace(t).expect("pipeline ingest");
            match (&legacy, &outcome.alarm) {
                (None, None) => {}
                (
                    Some(Alarm::TimeDomain {
                        trace_index,
                        distance,
                        threshold,
                        ..
                    }),
                    Some(fused),
                ) => {
                    assert_eq!(*trace_index, fused.index);
                    let vote = outcome.votes.first().expect("euclidean vote");
                    assert_eq!(distance.to_bits(), vote.score.statistic.to_bits());
                    assert_eq!(threshold.to_bits(), vote.score.threshold.to_bits());
                }
                (l, p) => panic!("alarm divergence: {l:?} vs {p:?}"),
            }
        }
        assert!(!monitor.alarms().is_empty(), "the Trojan half must alarm");
        assert_eq!(monitor.alarms().len(), pipeline.alarms().len());
        assert_eq!(
            monitor.alarm_rate().to_bits(),
            pipeline.alarm_rate().to_bits(),
            "alarm rates must be bit-identical"
        );
        assert_eq!(monitor.health(), pipeline.health());
        assert_eq!(monitor.traces_seen(), pipeline.traces_seen());
    }
}

#[test]
fn sanitized_batch_ingest_matches_the_legacy_monitor() {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 21)
        .expect("golden");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fit");

    let mut traces = bench
        .collect_with(KEY, STIMULUS, 4, None, Channel::OnChipSensor, 22)
        .expect("clean")
        .traces()
        .to_vec();
    traces.extend_from_slice(
        bench
            .collect_with(
                KEY,
                STIMULUS,
                4,
                Some(TrojanKind::T4PowerDegrader),
                Channel::OnChipSensor,
                23,
            )
            .expect("armed")
            .traces(),
    );
    // A corrupted acquisition the sanitizer must reject on both paths.
    traces[1][7] = f64::NAN;

    let mut monitor = TrustMonitor::builder(fp.clone())
        .with_sanitizer(TraceSanitizer::default())
        .build();
    let mut pipeline = DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fp.clone())))
        .fusion(FusionPolicy::Or)
        .sanitizer(TraceSanitizer::default())
        .build();

    let legacy = monitor.ingest_batch_report(&traces);
    let batch = pipeline.ingest_batch(&traces);

    assert_eq!(legacy.clean(), batch.clean());
    assert_eq!(legacy.degraded(), batch.degraded());
    assert_eq!(legacy.rejected(), batch.rejected());
    assert_eq!(legacy.alarms.len(), batch.alarms.len());
    assert!(!batch.alarms.is_empty(), "the armed traces must alarm");
    for (l, p) in legacy.alarms.iter().zip(batch.alarms.iter()) {
        let Alarm::TimeDomain {
            trace_index,
            distance,
            ..
        } = l
        else {
            panic!("unexpected alarm kind {l:?}");
        };
        assert_eq!(*trace_index, p.index);
        let vote = p.verdicts.first().expect("euclidean vote");
        assert_eq!(distance.to_bits(), vote.score.statistic.to_bits());
    }
    assert_eq!(monitor.traces_rejected(), pipeline.traces_rejected());
    assert_eq!(monitor.health(), pipeline.health());
    assert_eq!(
        monitor.alarm_rate().to_bits(),
        pipeline.alarm_rate().to_bits()
    );
}

#[test]
fn window_ingest_matches_the_legacy_monitor() {
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)
        .expect("bench")
        .with_a2(A2Trojan::new(10e6));
    let golden_traces = bench
        .collect(KEY, 16, None, Channel::OnChipSensor, 1)
        .expect("golden traces");
    let fp = GoldenFingerprint::fit(&golden_traces, FingerprintConfig::default()).expect("fit");
    let golden_window = bench
        .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 2)
        .expect("golden window");
    let spectral = SpectralDetector::fit(&golden_window, SpectralConfig::default()).expect("fit");

    let mut monitor = TrustMonitor::builder(fp.clone())
        .with_spectral(spectral.clone())
        .build();
    let mut pipeline = DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fp.clone())))
        .detector(Box::new(SpectralWindowDetector::new(spectral)))
        .fusion(FusionPolicy::Or)
        .build();

    let quiet = bench
        .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 3)
        .expect("quiet window");
    assert!(monitor.ingest_window(&quiet).expect("ingest").is_none());
    assert!(pipeline
        .try_ingest_window(&quiet)
        .expect("ingest")
        .alarm
        .is_none());

    bench.arm_a2(true).expect("arm");
    let armed = bench
        .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 4)
        .expect("armed window");
    let legacy = monitor.ingest_window(&armed).expect("ingest");
    let outcome = pipeline.try_ingest_window(&armed).expect("ingest");
    let Some(Alarm::Spectral {
        anomaly,
        spot_count,
        ..
    }) = legacy
    else {
        panic!("legacy monitor must raise a spectral alarm, got {legacy:?}");
    };
    let fused = outcome.alarm.expect("pipeline spectral alarm");
    assert_eq!(fused.index, 1, "second window");
    let vote = fused
        .verdicts
        .iter()
        .find(|v| v.detector == "spectral")
        .expect("spectral vote");
    let ScoreDetail::Spectral { anomalies } = &vote.score.detail else {
        panic!("spectral vote must carry anomalies");
    };
    assert_eq!(anomalies.len(), spot_count);
    let top = anomalies.first().expect("at least one anomaly");
    assert_eq!(top.frequency_hz.to_bits(), anomaly.frequency_hz.to_bits());
    assert_eq!(monitor.windows_seen(), pipeline.windows_seen());
}

// ---------------------------------------------------------------------
// Three detectors side by side under different fusion policies
// ---------------------------------------------------------------------

/// Euclidean + reference-based spectral + reference-free persistence in
/// one pipeline, under the given window-domain fusion policy.
fn three_detector_pipeline(
    fp: &GoldenFingerprint,
    spectral: &SpectralDetector,
    fusion: FusionPolicy,
) -> DetectionPipeline {
    DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fp.clone())))
        .detector(Box::new(SpectralWindowDetector::new(spectral.clone())))
        .detector(Box::new(SpectralPersistenceDetector::new(
            PersistenceConfig::default(),
        )))
        .fusion(fusion)
        .build()
}

#[test]
fn or_and_and_fusion_gate_the_same_three_detector_evidence_differently() {
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)
        .expect("bench")
        .with_a2(A2Trojan::new(10e6));
    let golden_traces = bench
        .collect(KEY, 16, None, Channel::OnChipSensor, 1)
        .expect("golden traces");
    let fp = GoldenFingerprint::fit(&golden_traces, FingerprintConfig::default()).expect("fit");
    let golden_window = bench
        .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 2)
        .expect("golden window");
    let spectral = SpectralDetector::fit(&golden_window, SpectralConfig::default()).expect("fit");

    let mut or_pipe = three_detector_pipeline(&fp, &spectral, FusionPolicy::Or);
    let mut and_pipe = three_detector_pipeline(&fp, &spectral, FusionPolicy::And);
    assert_eq!(
        or_pipe.detector_names(),
        ["euclidean", "spectral", "spectral_persistence"]
    );

    // Quiet warm-up: the persistence detector learns the chip's own
    // lines, nobody alarms.
    let warmup = PersistenceConfig::default().warmup_windows;
    for seed in 0..u64::from(warmup) {
        let quiet = bench
            .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 10 + seed)
            .expect("quiet window");
        assert!(or_pipe
            .try_ingest_window(&quiet)
            .expect("or")
            .alarm
            .is_none());
        assert!(and_pipe
            .try_ingest_window(&quiet)
            .expect("and")
            .alarm
            .is_none());
    }

    // The A2 trigger starts flipping and stays parked.
    bench.arm_a2(true).expect("arm");
    let mut or_first = None;
    let mut and_first = None;
    for k in 1..=6u32 {
        let armed = bench
            .collect_continuous(KEY, 48, None, Channel::OnChipSensor, 100 + u64::from(k))
            .expect("armed window");
        if or_pipe
            .try_ingest_window(&armed)
            .expect("or")
            .alarm
            .is_some()
            && or_first.is_none()
        {
            or_first = Some(k);
        }
        if and_pipe
            .try_ingest_window(&armed)
            .expect("and")
            .alarm
            .is_some()
            && and_first.is_none()
        {
            and_first = Some(k);
        }
    }
    assert_eq!(
        or_first,
        Some(1),
        "Or-fusion alarms on the first armed window (spectral alone suffices)"
    );
    assert_eq!(
        and_first,
        Some(PersistenceConfig::default().persistence_windows),
        "And-fusion waits until the persistence run corroborates the spectral vote"
    );
}
