//! The paper's headline quantitative *shapes*, asserted end to end (the
//! experiment binaries print the full tables; these tests pin the
//! orderings and gaps in CI form with reduced workloads).

use emtrust::acquisition::TestBench;
use emtrust::euclidean::trojan_distance_study;
use emtrust::fingerprint::FingerprintConfig;
use emtrust_em::snr::snr_report;
use emtrust_netlist::stats::module_stats;
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

fn snr_db(bench: &TestBench<'_>, channel: Channel, seed: u64) -> f64 {
    let signal = bench
        .collect_continuous(KEY, 12, None, channel, seed)
        .expect("signal");
    let noise = bench.collect_noise(signal.len(), channel, seed ^ 0xF00D);
    snr_report(&signal, &noise).snr_db
}

#[test]
fn table1_ordering_holds() {
    let chip = ProtectedChip::with_all_trojans();
    let aes = module_stats(chip.netlist(), "aes").total;
    let t = |tag: &str| module_stats(chip.netlist(), tag).total;
    // The paper's relative-size ordering: T3 < T1 < T2 <= T4 << AES.
    assert!(t("trojan3") < t("trojan1"));
    assert!(t("trojan1") < t("trojan2"));
    assert!(t("trojan2") <= t("trojan4"));
    assert!(aes > 10 * t("trojan4"));
    // And the paper's percentages within a factor-of-two band.
    for (tag, pct) in [
        ("trojan1", 5.01),
        ("trojan2", 8.44),
        ("trojan3", 0.76),
        ("trojan4", 8.44),
    ] {
        let ours = 100.0 * t(tag) as f64 / aes as f64;
        assert!(
            ours > pct / 2.0 && ours < pct * 2.0,
            "{tag}: {ours:.2}% vs paper {pct}%"
        );
    }
}

#[test]
fn snr_shape_simulation_paper_iv_b() {
    // Paper: on-chip 29.976 dB vs external 17.483 dB.
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).expect("bench");
    let onchip = snr_db(&bench, Channel::OnChipSensor, 0x51);
    let external = snr_db(&bench, Channel::ExternalProbe, 0x52);
    assert!((25.0..35.0).contains(&onchip), "on-chip {onchip:.1} dB");
    assert!(
        (13.0..22.0).contains(&external),
        "external {external:.1} dB"
    );
    assert!(onchip > external + 8.0, "gap {:.1} dB", onchip - external);
}

#[test]
fn snr_shape_silicon_paper_v_a() {
    // Paper: the external probe loses several dB from simulation to
    // silicon (17.48 -> 13.87); the on-chip sensor holds (29.98 -> 30.55).
    let chip = ProtectedChip::golden();
    let sim = TestBench::simulation(&chip).expect("sim");
    let silicon = TestBench::silicon(&chip, 1).expect("silicon");
    let sim_ext = snr_db(&sim, Channel::ExternalProbe, 0x61);
    let si_ext = snr_db(&silicon, Channel::ExternalProbe, 0x62);
    let sim_on = snr_db(&sim, Channel::OnChipSensor, 0x63);
    let si_on = snr_db(&silicon, Channel::OnChipSensor, 0x64);
    assert!(si_ext < sim_ext - 1.5, "external must degrade on silicon");
    assert!(
        (si_on - sim_on).abs() < 3.0,
        "on-chip must hold up on silicon"
    );
    assert!(si_on > si_ext + 10.0);
}

#[test]
fn euclidean_distance_shape_paper_iv_c() {
    // Paper: 0.27 / 0.25 / 0.05 / 0.28 — T3 far smallest, all detected.
    let chip = ProtectedChip::with_all_trojans();
    let bench = TestBench::simulation(&chip).expect("bench");
    let config = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    let rows = trojan_distance_study(
        &bench,
        KEY,
        &[
            TrojanKind::T1AmLeaker,
            TrojanKind::T2LeakageLeaker,
            TrojanKind::T3CdmaLeaker,
            TrojanKind::T4PowerDegrader,
        ],
        24,
        Channel::OnChipSensor,
        config,
        0xD15,
    )
    .expect("study");
    let d: Vec<f64> = rows.iter().map(|r| r.centroid_distance).collect();
    assert!(
        d[2] < 0.5 * d[0].min(d[1]).min(d[3]),
        "T3 must be by far the smallest: {d:?}"
    );
    assert!(rows.iter().all(|r| r.detected), "all detected: {rows:?}");
}
