//! Determinism guarantees of the parallel acquisition and evaluation
//! engine: for every worker count, traces, verdicts, and alarms are
//! bit-identical to the serial run, in the same order.

use emtrust::acquisition::Stimulus;
use emtrust::{FingerprintConfig, GoldenFingerprint, ParallelConfig, TestBench, TrustMonitor};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use proptest::prelude::*;

const KEY: [u8; 16] = *b"sixteen byte key";

fn pool(workers: usize) -> ParallelConfig {
    ParallelConfig::serial().with_workers(workers)
}

#[test]
fn golden_collection_is_bit_identical_for_1_2_8_workers() {
    let chip = ProtectedChip::golden();
    let reference = TestBench::simulation(&chip)
        .unwrap()
        .with_parallel(pool(1))
        .collect(KEY, 6, None, Channel::OnChipSensor, 11)
        .unwrap();
    for workers in [2, 8] {
        let set = TestBench::simulation(&chip)
            .unwrap()
            .with_parallel(pool(workers))
            .collect(KEY, 6, None, Channel::OnChipSensor, 11)
            .unwrap();
        assert_eq!(set, reference, "workers={workers}");
    }
}

#[test]
fn armed_trojan_and_random_stimulus_stay_deterministic() {
    // A Trojan-carrying netlist takes the serial-simulation path (its
    // state is not replayable), so this exercises the measurement fan-out.
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T2LeakageLeaker]);
    let reference = TestBench::simulation(&chip)
        .unwrap()
        .with_parallel(pool(1))
        .collect_with(
            KEY,
            Stimulus::RandomPerTrace,
            4,
            Some(TrojanKind::T2LeakageLeaker),
            Channel::OnChipSensor,
            7,
        )
        .unwrap();
    for workers in [2, 8] {
        let set = TestBench::simulation(&chip)
            .unwrap()
            .with_parallel(pool(workers))
            .collect_with(
                KEY,
                Stimulus::RandomPerTrace,
                4,
                Some(TrojanKind::T2LeakageLeaker),
                Channel::OnChipSensor,
                7,
            )
            .unwrap();
        assert_eq!(set, reference, "workers={workers}");
    }
}

#[test]
fn continuous_collection_is_bit_identical_for_1_2_8_workers() {
    // 8 blocks × 12 cycles spans two CYCLE_CHUNK chunks, exercising the
    // chunked current-synthesis path.
    let chip = ProtectedChip::golden();
    let reference = TestBench::simulation(&chip)
        .unwrap()
        .with_parallel(pool(1))
        .collect_continuous(KEY, 8, None, Channel::OnChipSensor, 3)
        .unwrap();
    for workers in [2, 8] {
        let trace = TestBench::simulation(&chip)
            .unwrap()
            .with_parallel(pool(workers))
            .collect_continuous(KEY, 8, None, Channel::OnChipSensor, 3)
            .unwrap();
        assert_eq!(trace.samples(), reference.samples(), "workers={workers}");
    }
}

#[test]
fn monitor_raises_the_same_alarms_in_the_same_order_for_1_2_8_workers() {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).unwrap().with_parallel(pool(1));
    let golden = bench
        .collect(KEY, 8, None, Channel::OnChipSensor, 1)
        .unwrap();
    // Suspects: clean traces plus scaled-up anomalies, interleaved.
    let clean = bench
        .collect(KEY, 4, None, Channel::OnChipSensor, 2)
        .unwrap();
    let mut suspects: Vec<Vec<f64>> = Vec::new();
    for (i, t) in clean.traces().iter().enumerate() {
        suspects.push(t.clone());
        if i % 2 == 0 {
            suspects.push(t.iter().map(|x| 1.5 * x).collect());
        }
    }

    let mut reference: Option<Vec<emtrust::Alarm>> = None;
    for workers in [1, 2, 8] {
        let config = FingerprintConfig {
            parallel: pool(workers),
            ..FingerprintConfig::default()
        };
        let fp = GoldenFingerprint::fit(&golden, config).unwrap();
        let mut monitor = TrustMonitor::builder(fp).build();
        let raised = monitor.ingest_batch(&suspects).unwrap();
        assert!(!raised.is_empty(), "anomalies must alarm");
        assert_eq!(monitor.traces_seen(), suspects.len() as u64);
        assert_eq!(monitor.alarms(), raised.as_slice());
        match &reference {
            None => reference = Some(raised),
            Some(r) => assert_eq!(&raised, r, "workers={workers}"),
        }
    }
}

#[test]
fn batch_ingest_matches_serial_ingest_exactly() {
    let chip = ProtectedChip::golden();
    let bench = TestBench::simulation(&chip).unwrap().with_parallel(pool(1));
    let golden = bench
        .collect(KEY, 8, None, Channel::OnChipSensor, 1)
        .unwrap();
    let clean = bench
        .collect(KEY, 3, None, Channel::OnChipSensor, 9)
        .unwrap();
    let mut suspects: Vec<Vec<f64>> = clean.traces().to_vec();
    suspects.push(clean.traces()[0].iter().map(|x| 1.4 * x).collect());

    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
    let mut serial = TrustMonitor::builder(fp.clone()).build();
    for t in &suspects {
        let _ = serial.ingest_trace(t).unwrap();
    }
    let mut batched = TrustMonitor::builder(fp).build();
    let _ = batched.ingest_batch(&suspects).unwrap();
    assert_eq!(batched.alarms(), serial.alarms());
    assert_eq!(batched.traces_seen(), serial.traces_seen());
}

#[test]
fn workers_one_is_a_degenerate_pool() {
    // `ParallelConfig::serial()` must behave exactly like the default
    // all-core pool — and both must accept a clamped zero worker count.
    let cfg = ParallelConfig::default();
    assert!(cfg.workers >= 1);
    assert_eq!(pool(0).workers, 1);
    let chip = ProtectedChip::golden();
    let serial = TestBench::simulation(&chip)
        .unwrap()
        .with_parallel(ParallelConfig::serial())
        .collect(KEY, 3, None, Channel::OnChipSensor, 5)
        .unwrap();
    let pooled = TestBench::simulation(&chip)
        .unwrap()
        .collect(KEY, 3, None, Channel::OnChipSensor, 5)
        .unwrap();
    assert_eq!(serial, pooled);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn evaluate_batch_agrees_with_per_trace_evaluate(
        seed in 0u64..1000,
        n in 1usize..12,
        gain in 0.5f64..2.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let golden: Vec<Vec<f64>> = (0..16)
            .map(|_| {
                (0..256)
                    .map(|j| (j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                    .collect()
            })
            .collect();
        let set = emtrust::TraceSet::new(golden, 640e6).unwrap();
        let config = FingerprintConfig {
            parallel: ParallelConfig::default().with_workers(4),
            ..FingerprintConfig::default()
        };
        let fp = GoldenFingerprint::fit(&set, config).unwrap();
        let batch: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..256)
                    .map(|j| gain * ((j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0)))
                    .collect()
            })
            .collect();
        let verdicts = fp.evaluate_batch(&batch).unwrap();
        prop_assert_eq!(verdicts.len(), batch.len());
        for (v, t) in verdicts.iter().zip(&batch) {
            let single = fp.evaluate(t).unwrap();
            prop_assert_eq!(v.distance.to_bits(), single.distance.to_bits());
            prop_assert_eq!(v.trojan_suspected, single.trojan_suspected);
        }
    }
}
