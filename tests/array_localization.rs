//! Multi-sensor array: coupling-map partition invariants, single-sensor
//! parity against the legacy `TestBench` + `TrustMonitor` path, and a
//! localization smoke test.

use emtrust::acquisition::TestBench;
use emtrust::array::{Localizer, SensorArray};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::monitor::TrustMonitor;
use emtrust_em::array::EmArray;
use emtrust_em::pipeline::EmPipelineConfig;
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const KEY: [u8; 16] = *b"sixteen byte key";

fn placed_chip(chip: &ProtectedChip) -> (Floorplan, CurrentModel) {
    let library = Library::generic_180nm();
    let die = Die::for_netlist(chip.netlist(), &library, 0.7).unwrap();
    let floorplan = Floorplan::place(chip.netlist(), &library, die).unwrap();
    let model = CurrentModel::new(library, ClockConfig::reference());
    (floorplan, model)
}

#[test]
fn one_by_one_tile_weights_equal_the_full_die_coil() {
    let chip = ProtectedChip::golden();
    let (floorplan, model) = placed_chip(&chip);
    let array = EmArray::build(chip.netlist(), &floorplan, model.clone(), 1, 1, 20).unwrap();
    let single = EmPipelineConfig::default()
        .with_model(model)
        .build(chip.netlist(), &floorplan)
        .unwrap();
    assert_eq!(array.tiles()[0].sensor().weights(), single.weights());
}

#[test]
fn partitioned_tile_weights_track_the_full_die_coil() {
    let chip = ProtectedChip::golden();
    let (floorplan, model) = placed_chip(&chip);
    let array = EmArray::build(chip.netlist(), &floorplan, model.clone(), 2, 2, 10).unwrap();
    let single = EmPipelineConfig::default()
        .with_model(model)
        .build(chip.netlist(), &floorplan)
        .unwrap();
    // Coupling weights are signed (the flux reverses outside a
    // winding), so the partition is compared in magnitude: per-cell sum
    // of |coupling| over the tiles against the full-die coil's
    // |coupling|.
    let full: Vec<f64> = single.weights().iter().map(|w| w.abs()).collect();
    let n = full.len();
    let mut summed = vec![0.0; n];
    for tile in array.tiles() {
        for (s, w) in summed.iter_mut().zip(tile.sensor().weights()) {
            *s += w.abs();
        }
    }
    // The sub-coils partition the die. Three invariants follow:
    // overall magnitude of the summed coupling stays within a band of
    // the full coil's (same die, same physics, different winding
    // geometry), every cell the full coil sees is covered by some tile,
    // and each cell couples most strongly to the tile that contains it.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let ratio = mean(&summed) / mean(&full);
    assert!(
        (0.1..=10.0).contains(&ratio),
        "summed/full magnitude ratio out of band: {ratio}"
    );
    for (i, (&s, &f)) in summed.iter().zip(&full).enumerate() {
        if f > 0.0 {
            assert!(s > 0.0, "cell {i} couples to the full coil but no tile");
        }
    }
    // Locality holds in aggregate (per-cell the kernel zero-crosses
    // throughout the winding band, so pointwise argmax is noise): over
    // the cells placed inside a tile, that tile's own coil must couple
    // more total magnitude than any other tile's coil.
    for (t, tile) in array.tiles().iter().enumerate() {
        let cells: Vec<usize> = floorplan
            .locations()
            .iter()
            .enumerate()
            .filter(|(_, p)| tile.rect().distance_to(**p) == 0.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!cells.is_empty(), "tile {t} holds no cells");
        let coupled = |u: usize| -> f64 {
            let w = array.tiles()[u].sensor().weights();
            cells.iter().map(|&i| w[i].abs()).sum()
        };
        let own = coupled(t);
        for u in 0..array.len() {
            if u != t {
                assert!(
                    own > coupled(u),
                    "tile {t}'s own coil ({own:e}) outcoupled by tile {u}'s \
                     ({:e}) over its cells",
                    coupled(u)
                );
            }
        }
    }
}

#[test]
fn sub_coil_turns_never_double_count_a_die_position() {
    let chip = ProtectedChip::golden();
    let (floorplan, _) = placed_chip(&chip);
    let die = floorplan.die();
    let coils: Vec<SpiralSensor> = die
        .tiles(2, 3)
        .unwrap()
        .into_iter()
        .map(|rect| SpiralSensor::with_turns(Die { core: rect }, 8).unwrap())
        .collect();
    let (w, h) = (die.core.width(), die.core.height());
    for i in 0..40 {
        for j in 0..40 {
            let x = die.core.min.x + w * i as f64 / 39.0;
            let y = die.core.min.y + h * j as f64 / 39.0;
            let enclosing = coils.iter().filter(|c| c.turns_enclosing(x, y) > 0).count();
            assert!(
                enclosing <= 1,
                "({x:.1}, {y:.1}) um enclosed by {enclosing} sub-coils"
            );
        }
    }
}

#[test]
fn one_by_one_array_is_bit_identical_to_the_legacy_single_sensor_path() {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::simulation(&chip).unwrap();
    let mut array = SensorArray::builder(&chip)
        .with_grid(1, 1)
        .unwrap()
        .with_turns(20)
        .unwrap()
        .build()
        .unwrap();

    // Same campaign seeds on both paths: the raw traces must agree bit
    // for bit — golden, clean suspects, and Trojan-armed suspects alike.
    let legacy_golden = bench
        .collect(KEY, 12, None, Channel::OnChipSensor, 42)
        .unwrap();
    let array_golden = array.collect(KEY, 12, None, 42).unwrap();
    assert_eq!(array_golden.len(), 1);
    assert_eq!(legacy_golden.traces(), array_golden[0].traces());

    let armed = Some(TrojanKind::T4PowerDegrader);
    let legacy_bad = bench
        .collect(KEY, 8, armed, Channel::OnChipSensor, 44)
        .unwrap();
    let array_bad = array.collect(KEY, 8, armed, 44).unwrap();
    assert_eq!(legacy_bad.traces(), array_bad[0].traces());

    // And the verdicts must agree alarm for alarm with the legacy
    // TrustMonitor driven by the same fingerprint configuration.
    let fp = GoldenFingerprint::fit(&legacy_golden, FingerprintConfig::default()).unwrap();
    let mut monitor = TrustMonitor::builder(fp).build();
    let legacy_alarms = monitor.ingest_batch(legacy_bad.traces()).unwrap().len();
    array.fit_golden(&array_golden).unwrap();
    let verdict = array.attribute(&array_bad, None).unwrap();
    assert_eq!(verdict.heat().len(), 1);
    let array_alarms = (verdict.heat()[0].alarm_rate * 8.0).round() as usize;
    assert_eq!(array_alarms, legacy_alarms);
    assert_eq!(verdict.alarmed(), legacy_alarms > 0);
    assert!((monitor.alarm_rate() - verdict.heat()[0].alarm_rate).abs() < 1e-12);
}

#[test]
fn localizer_is_undefined_on_a_flat_heat_map_and_array_stays_quiet_when_clean() {
    let chip = ProtectedChip::with_all_trojans();
    let mut array = SensorArray::builder(&chip)
        .with_grid(2, 2)
        .unwrap()
        .with_turns(8)
        .unwrap()
        .build()
        .unwrap();
    let golden = array.collect(KEY, 12, None, 42).unwrap();
    array.fit_golden(&golden).unwrap();
    // Same seed, no Trojan armed: the suspect campaign replays the
    // golden one, so no tile may alarm and no excess may localize.
    let clean = array.collect(KEY, 8, None, 42).unwrap();
    let verdict = array.attribute(&clean, None).unwrap();
    assert!(!verdict.alarmed());
    assert!(verdict.centroid_um().is_none());
    assert!(verdict.region_scores().is_empty());
    assert_eq!(verdict.top_region(), None);
    // The localizer itself says "no location" for an all-equal map.
    assert!(Localizer::new(vec![(0.0, 0.0); 4])
        .centroid(&[1.0; 4])
        .is_none());
}

#[test]
fn armed_trojan_localizes_to_its_placement_region() {
    let chip = ProtectedChip::with_all_trojans();
    let mut array = SensorArray::builder(&chip)
        .with_grid(4, 2)
        .unwrap()
        .with_turns(8)
        .unwrap()
        .build()
        .unwrap();
    let golden = array.collect(KEY, 16, None, 42).unwrap();
    array.fit_golden(&golden).unwrap();
    let kind = TrojanKind::T4PowerDegrader;
    let suspects = array.collect(KEY, 8, Some(kind), 44).unwrap();
    let verdict = array.attribute(&suspects, None).unwrap();
    assert!(verdict.alarmed(), "armed Trojan must raise tile alarms");
    let (cx, cy) = verdict.centroid_um().expect("excess energy must localize");
    let die = array.floorplan().die();
    assert!(die
        .core
        .contains(emtrust_layout::geometry::Point::new(cx, cy)));
    assert!(
        verdict.hit_at(kind.module_tag(), 3),
        "{} not in top-3 of {:?}",
        kind.module_tag(),
        verdict.region_scores()
    );
}
