//! Cell-level attribution: end-to-end on the placed chip, and
//! bit-identity of the scores — and of the learned re-ranking — across
//! runs and worker counts.

use emtrust::array::SensorArray;
use emtrust::attribution::{Attribution, CellEvidence};
use emtrust::fingerprint::FingerprintConfig;
use emtrust::learned::{LogisticModel, TrainSpec};
use emtrust::ParallelConfig;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const KEY: [u8; 16] = *b"sixteen byte key";
const KIND: TrojanKind = TrojanKind::T4PowerDegrader;

/// Runs the full campaign — golden with activity, fit, armed suspect
/// with activity, attribute — on a fresh array with the given
/// parallelism.
fn attributed_campaign(parallel: ParallelConfig) -> Attribution {
    let chip = ProtectedChip::with_all_trojans();
    let mut array = SensorArray::builder(&chip)
        .with_grid(4, 2)
        .unwrap()
        .with_turns(8)
        .unwrap()
        .with_fingerprint(FingerprintConfig {
            pca_components: None,
            ..FingerprintConfig::default()
        })
        .with_parallel(parallel)
        .build()
        .unwrap();
    let (golden, golden_activity) = array.collect_with_activity(KEY, 12, None, 42).unwrap();
    array.fit_golden(&golden).unwrap();
    // Suspect campaign reuses the golden seed so the per-cell toggle
    // excess is purely the armed Trojan's switching.
    let (suspects, activity) = array.collect_with_activity(KEY, 8, Some(KIND), 42).unwrap();
    let evidence = CellEvidence {
        baseline: &golden_activity,
        suspect: &activity,
    };
    array.attribute(&suspects, Some(&evidence)).unwrap()
}

#[test]
fn armed_trojan_attributes_to_its_own_cells() {
    let chip = ProtectedChip::with_all_trojans();
    let cell_count = chip.netlist().cell_count();
    let attribution = attributed_campaign(ParallelConfig::default());

    assert!(attribution.alarmed(), "armed Trojan must alarm");
    assert!(attribution.hit_at(KIND.module_tag(), 3));

    // One score per placed cell, ranked by descending suspicion.
    let cells = attribution.cell_scores();
    assert_eq!(cells.len(), cell_count);
    assert!(cells
        .windows(2)
        .all(|w| w[0].suspicion >= w[1].suspicion || w[1].suspicion.is_nan()));

    // The top of the ranking is the armed Trojan's own placement.
    let tag = KIND.module_tag();
    assert!(
        attribution.top_cells(10).iter().all(|c| c.region == tag),
        "top-10 cells must sit in {tag}"
    );
    let truth = |c: &emtrust::attribution::CellScore| c.region == tag;
    assert!((attribution.precision_at(10, truth) - 1.0).abs() < 1e-12);
    let auroc = attribution.auroc(truth).unwrap();
    assert!(auroc > 0.9, "AUROC {auroc} too low");
}

#[test]
fn attribution_and_learned_reranking_are_bit_identical_across_worker_counts() {
    let serial = attributed_campaign(ParallelConfig::serial());
    let fanned = attributed_campaign(ParallelConfig::default().with_workers(4));

    // Raw attribution: same cells, same features, same suspicion — bit
    // for bit, regardless of the measurement fan-out.
    let (a, b) = (serial.cell_scores(), fanned.cell_scores());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cell, y.cell);
        assert_eq!(x.features.to_vec(), y.features.to_vec());
        assert_eq!(x.suspicion.to_bits(), y.suspicion.to_bits());
    }

    // Learned re-ranking: training is seeded, full-batch and
    // fixed-order, so the model — and the ranking it induces — must be
    // bit-identical too.
    let spec = TrainSpec {
        balance: true,
        ..TrainSpec::default()
    };
    let tag = KIND.module_tag();
    let train = |att: &Attribution| {
        let rows: Vec<Vec<f64>> = att
            .cell_scores()
            .iter()
            .map(|c| c.features.to_vec())
            .collect();
        let labels: Vec<bool> = att.cell_scores().iter().map(|c| c.region == tag).collect();
        LogisticModel::train(&rows, &labels, spec).unwrap()
    };
    let (ma, mb) = (train(&serial), train(&fanned));
    assert_eq!(ma.bias().to_bits(), mb.bias().to_bits());
    for (wa, wb) in ma.weights().iter().zip(mb.weights()) {
        assert_eq!(wa.to_bits(), wb.to_bits());
    }

    let mut ra = serial.clone();
    let mut rb = fanned.clone();
    ra.rescore_cells(|c| ma.predict(&c.features.to_vec()).unwrap_or(0.0));
    rb.rescore_cells(|c| mb.predict(&c.features.to_vec()).unwrap_or(0.0));
    for (x, y) in ra.cell_scores().iter().zip(rb.cell_scores()) {
        assert_eq!(x.cell, y.cell);
        assert_eq!(x.suspicion.to_bits(), y.suspicion.to_bits());
    }
}
