//! End-to-end integration: netlist → simulation → placement → EM physics
//! → detection, across every crate in the workspace.

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::monitor::{Alarm, TrustMonitor};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const KEY: [u8; 16] = *b"integration key!";
const STIMULUS: Stimulus = Stimulus::Fixed(*b"integration blk!");

#[test]
fn trojan_is_caught_at_runtime_through_the_onchip_sensor() {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::simulation(&chip).expect("bench");

    let golden = bench
        .collect_with(KEY, STIMULUS, 16, None, Channel::OnChipSensor, 11)
        .expect("golden traces");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fingerprint");
    let mut monitor = TrustMonitor::builder(fp).build();

    // Healthy operation: no alarms.
    let clean = bench
        .collect_with(KEY, STIMULUS, 6, None, Channel::OnChipSensor, 12)
        .expect("clean traces");
    for t in clean.traces() {
        assert!(monitor.ingest_trace(t).expect("ingest").is_none());
    }

    // Trojan activates.
    let infected = bench
        .collect_with(
            KEY,
            STIMULUS,
            6,
            Some(TrojanKind::T4PowerDegrader),
            Channel::OnChipSensor,
            13,
        )
        .expect("infected traces");
    let mut alarms = 0;
    for t in infected.traces() {
        if let Some(Alarm::TimeDomain {
            distance,
            threshold,
            ..
        }) = monitor.ingest_trace(t).expect("ingest")
        {
            assert!(distance > threshold);
            alarms += 1;
        }
    }
    assert_eq!(alarms, 6, "every Trojan-active trace must alarm");
    assert!((monitor.alarm_rate() - 0.5).abs() < 1e-9);
}

#[test]
fn detection_works_on_the_fabricated_chip_as_well() {
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T2LeakageLeaker]);
    let bench = TestBench::silicon(&chip, 3).expect("silicon bench");
    let golden = bench
        .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 21)
        .expect("golden");
    // Raw feature space: the silicon T2 signature is broad-band, which
    // a handful of PCA components can dilute.
    let config = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    let fp = GoldenFingerprint::fit(&golden, config).expect("fingerprint");
    let armed = bench
        .collect_with(
            KEY,
            STIMULUS,
            6,
            Some(TrojanKind::T2LeakageLeaker),
            Channel::OnChipSensor,
            22,
        )
        .expect("armed");
    let flagged = armed
        .traces()
        .iter()
        .filter(|t| fp.evaluate(t).expect("evaluate").trojan_suspected)
        .count();
    assert!(
        flagged >= 5,
        "T2 must be visible on silicon through the sensor ({flagged}/6 flagged)"
    );
}

#[test]
fn golden_chip_raises_no_alarms_across_benches() {
    let chip = ProtectedChip::golden();
    for bench in [
        TestBench::simulation(&chip).expect("sim"),
        TestBench::silicon(&chip, 9).expect("silicon"),
    ] {
        let golden = bench
            .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 31)
            .expect("golden");
        let fp =
            GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fingerprint");
        let fresh = bench
            .collect_with(KEY, STIMULUS, 6, None, Channel::OnChipSensor, 32)
            .expect("fresh");
        for t in fresh.traces() {
            assert!(
                !fp.evaluate(t).expect("evaluate").trojan_suspected,
                "golden chip must not alarm"
            );
        }
    }
}
