//! Fleet ingestion service: end-to-end robustness contract.
//!
//! - bounded queues: observed depth never exceeds capacity (+1 transient
//!   slot for a send racing the worker's decrement);
//! - bulkhead isolation: a quarantined chip's neighbours on the same
//!   shard score bit-identically with and without it present;
//! - LRU eviction and cold-start: evicted chips re-fit from their
//!   retained baseline, brand-new chips warm up gracefully;
//! - transport chaos replays bit-identically under a seeded plan.

use emtrust::faults::{TransportFaultKind, TransportFaultSpec, TransportPlan};
use emtrust_fleet::{
    AdmissionVerdict, BreakerConfig, ChaosTransport, FleetConfig, FleetService, FleetSummary,
    StoreConfig,
};
use emtrust_suite::emtrust;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRACE_LEN: usize = 128;

fn clean_batch(chip_seed: u64, round: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(chip_seed.wrapping_mul(31).wrapping_add(round));
    (0..n)
        .map(|_| {
            (0..TRACE_LEN)
                .map(|j| (j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

fn nan_batch(n: usize) -> Vec<Vec<f64>> {
    vec![vec![f64::NAN; TRACE_LEN]; n]
}

fn config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        queue_capacity: 16,
        golden_traces: 4,
        store: StoreConfig {
            baseline_window: 8,
            capacity: 64,
            ..StoreConfig::default()
        },
        breaker: BreakerConfig {
            trip_after: 6,
            ..BreakerConfig::default()
        },
        ..FleetConfig::default()
    }
}

/// Runs a fixed clean workload for `chips`, optionally interleaving a
/// poisoned chip, and returns the summary.
fn run_fleet(chips: &[&str], poison: Option<&str>) -> FleetSummary {
    let mut cfg = config(2);
    // Sized so nothing is ever shed: the bit-identity comparison below
    // must only exercise the quarantine bulkhead, not timing.
    cfg.queue_capacity = 256;
    let service = FleetService::new(cfg).expect("service");
    for round in 0..12u64 {
        for (c, chip) in chips.iter().enumerate() {
            let batch = clean_batch(c as u64 + 1, round, 2);
            let receipt = service.ingest(chip, batch).expect("ingest");
            assert!(receipt.verdict.accepted(), "{chip} round {round}");
        }
        if let Some(bad) = poison {
            // Repeatedly-rejected traces: trips the breaker mid-run.
            let _ = service.ingest(bad, nan_batch(3)).expect("ingest poison");
            // The breaker is fed back by the shard worker; give it a
            // beat so the trip lands while the run is still going.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    service.finish().expect("finish")
}

#[test]
fn queue_depth_stays_bounded_and_nothing_panics() {
    let cfg = config(1);
    let capacity = cfg.queue_capacity;
    let service = FleetService::new(cfg).expect("service");
    for round in 0..200u64 {
        let chip = format!("chip-{}", round % 20);
        let receipt = service
            .ingest(&chip, clean_batch(round % 20, round, 1))
            .expect("ingest");
        assert!(
            receipt.depth <= capacity + 1,
            "depth {} blew past capacity {capacity}",
            receipt.depth
        );
    }
    let summary = service.finish().expect("finish");
    assert!(summary.peak_depth <= capacity + 1);
    assert_eq!(summary.shed + summary.admitted + summary.throttled, 200);
}

#[test]
fn poisoned_chip_is_quarantined_and_neighbours_are_untouched() {
    let chips = ["alpha", "bravo", "charlie", "delta"];
    let clean = run_fleet(&chips, None);
    let stormy = run_fleet(&chips, Some("poison"));

    let victim = stormy.chip("poison").expect("poison chip tracked");
    assert!(
        victim.breaker_trips >= 1,
        "breaker never tripped: {victim:?}"
    );
    assert!(stormy.quarantined >= 1, "no admissions were refused");

    // Bulkhead: every healthy chip's accounting is bit-identical with
    // and without the quarantined neighbour sharing its shard.
    for chip in chips {
        let a = clean.chip(chip).expect("clean run");
        let b = stormy.chip(chip).expect("stormy run");
        assert_eq!(a.stats, b.stats, "leakage into {chip}");
        assert_eq!(a.health, b.health, "health leakage into {chip}");
        assert!(!b.quarantined, "{chip} wrongly quarantined");
    }
}

#[test]
fn quarantined_chip_recovers_through_a_half_open_probe() {
    let mut cfg = config(1);
    cfg.breaker.trip_after = 4;
    cfg.breaker.probe_base = 1;
    cfg.breaker.probe_cap = 4;
    let service = FleetService::new(cfg).expect("service");
    // Warm + poison until quarantined.
    for round in 0..4u64 {
        service.ingest("x", clean_batch(1, round, 2)).expect("warm");
    }
    let mut saw_refusal = false;
    for _ in 0..30 {
        let r = service.ingest("x", nan_batch(2)).expect("poison");
        if r.verdict == AdmissionVerdict::Quarantined {
            saw_refusal = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(saw_refusal, "chip never quarantined");
    // Clean batches again: a half-open probe eventually closes the
    // breaker and traffic flows.
    let mut readmitted = 0;
    for round in 100..160u64 {
        let r = service
            .ingest("x", clean_batch(1, round, 2))
            .expect("recover");
        if r.verdict.accepted() {
            readmitted += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(readmitted > 10, "chip never recovered: {readmitted}");
    let summary = service.finish().expect("finish");
    let x = summary.chip("x").expect("x tracked");
    assert!(!x.quarantined, "breaker should have closed again");
    assert!(x.breaker_trips >= 1);
}

#[test]
fn lru_eviction_refits_returning_chips() {
    let mut cfg = config(1);
    cfg.store.capacity = 4;
    cfg.store.cold_capacity = 64;
    let service = FleetService::new(cfg).expect("service");
    // 12 chips through a 4-slot store: heavy eviction...
    for round in 0..6u64 {
        for c in 0..12u64 {
            service
                .ingest(&format!("chip-{c}"), clean_batch(c, round, 2))
                .expect("ingest");
        }
    }
    // ...then the first chip returns.
    for round in 100..103u64 {
        service
            .ingest("chip-0", clean_batch(0, round, 2))
            .expect("return");
    }
    let summary = service.finish().expect("finish");
    let shard = &summary.shards[0];
    assert!(shard.evictions > 0, "no evictions at capacity 4");
    assert!(shard.refits > 0, "returning chip did not re-fit");
    assert!(shard.hot <= 4);
    let chip0 = summary.chip("chip-0").expect("chip-0 tracked");
    assert_eq!(chip0.stats.scored, 18, "traces lost across eviction");
}

#[test]
fn transport_chaos_is_survived_and_replays_bit_identically() {
    let run = || {
        let mut cfg = config(2);
        // No shedding: replay comparison must be timing-independent.
        cfg.queue_capacity = 256;
        let service = FleetService::new(cfg).expect("service");
        let plan = TransportPlan::new(0xC4405)
            .with(TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0).with_probability(0.2))
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchDuplicate, 1.0)
                    .with_probability(0.2),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchReorder, 1.0)
                    .with_probability(0.2),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchDelay, 0.6).with_probability(0.4),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::ChipIdCorruption, 1.0)
                    .with_probability(0.1),
            );
        let mut link = ChaosTransport::new(plan);
        for round in 0..16u64 {
            for c in 0..6u64 {
                link.deliver(&service, &format!("chip-{c}"), &clean_batch(c, round, 2))
                    .expect("deliver");
            }
        }
        link.flush(&service).expect("flush");
        let stats = link.stats();
        (stats, service.finish().expect("finish"))
    };
    let (s1, f1) = run();
    let (s2, f2) = run();
    assert_eq!(s1, s2, "chaos accounting diverged between replays");
    assert_eq!(f1.chips, f2.chips, "fleet outcome diverged between replays");
    assert!(s1.dropped > 0 && s1.duplicated > 0, "plan too tame: {s1:?}");
    assert!(
        s1.delivered >= s1.offered - s1.dropped,
        "deliveries unaccounted: {s1:?}"
    );
}
