//! Telemetry across the real pipeline: a Trojan-active replay must raise
//! alarms whose forensic rings hold the offending observation, the
//! registry must capture every stage, and installing a recorder must not
//! perturb the detection results (bit-identical across worker counts).

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::monitor::Alarm;
use emtrust::telemetry::{self, InMemoryRecorder, ManualClock};
use emtrust::{FingerprintConfig, GoldenFingerprint, ParallelConfig, TrustMonitor};
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};
use std::sync::{Arc, Mutex, MutexGuard};

const KEY: [u8; 16] = *b"telemetry test!!";
const STIMULUS: Stimulus = Stimulus::Fixed(*b"telemetry block!");

/// The global recorder is process state: tests that install one are
/// serialized through this lock (poison-tolerant so one failure doesn't
/// cascade).
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    RECORDER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn trojan_replay_raises_alarms_with_forensic_context() {
    let _guard = lock();
    let registry = Arc::new(InMemoryRecorder::new());
    telemetry::install(registry.clone());

    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    let bench = TestBench::simulation(&chip).expect("bench");
    let golden = bench
        .collect_with(KEY, STIMULUS, 12, None, Channel::OnChipSensor, 31)
        .expect("golden");
    let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).expect("fit");
    let mut monitor = TrustMonitor::builder(fp).with_forensic_depth(8).build();

    let clean = bench
        .collect_with(KEY, STIMULUS, 3, None, Channel::OnChipSensor, 32)
        .expect("clean");
    for t in clean.traces() {
        assert!(monitor.ingest_trace(t).expect("ingest").is_none());
    }
    let infected = bench
        .collect_with(
            KEY,
            STIMULUS,
            3,
            Some(TrojanKind::T4PowerDegrader),
            Channel::OnChipSensor,
            33,
        )
        .expect("infected");
    let raised = monitor.ingest_batch(infected.traces()).expect("batch");
    telemetry::uninstall();

    assert!(!raised.is_empty(), "the armed Trojan must alarm");
    assert_eq!(monitor.forensics().len(), monitor.alarms().len());

    // Every alarm's ring must end with its own offending distance.
    for (alarm, record) in monitor.alarms().iter().zip(monitor.forensics()) {
        assert_eq!(record.correlation_id, alarm.correlation_id());
        let Alarm::TimeDomain {
            trace_index,
            distance,
            ..
        } = alarm
        else {
            panic!("expected a time-domain alarm, got {alarm:?}");
        };
        let last = record
            .recent_distances
            .last()
            .expect("ring must not be empty");
        assert_eq!(last.trace_index, *trace_index);
        assert_eq!(last.distance.to_bits(), distance.to_bits());
        assert!(record.recent_distances.len() <= 8);
        assert!(record.to_json().contains("\"kind\":\"time_domain\""));
    }

    // Correlation ids: unique and strictly monotonic in alarm order.
    let ids: Vec<u64> = monitor.alarms().iter().map(Alarm::correlation_id).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids {ids:?}");

    // The registry saw every stage of the pipeline.
    let snap = registry.snapshot();
    for span in ["collect", "fit", "ingest_batch"] {
        assert!(
            snap.spans
                .keys()
                .any(|k| k == span || k.starts_with(&format!("{span}."))),
            "span {span:?} missing; got {:?}",
            snap.spans.keys().collect::<Vec<_>>()
        );
    }
    assert!(snap.counters["monitor.alarms"] >= raised.len() as u64);
    assert!(snap.counters["monitor.traces"] >= monitor.traces_seen());
    assert!(snap.histograms.contains_key("monitor.distance"));

    // Both sinks render the captured run.
    let prom = emtrust::telemetry::sink::prometheus_text(&snap);
    assert!(prom.contains("emtrust_monitor_alarms"));
    let jsonl = emtrust::telemetry::sink::events_jsonl(&registry.events());
    assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"alarm\"")));
    assert!(jsonl.lines().any(|l| l.contains("correlation_id")));
}

#[test]
fn collection_stays_bit_identical_with_a_recorder_installed() {
    let _guard = lock();
    let chip = ProtectedChip::golden();

    // Reference: serial, telemetry disabled.
    telemetry::uninstall();
    let reference = TestBench::simulation(&chip)
        .unwrap()
        .with_parallel(ParallelConfig::serial())
        .collect(KEY, 5, None, Channel::OnChipSensor, 77)
        .unwrap();

    // Recorded: manual clock (deterministic ticks, no wall time in any
    // recorded value), multiple worker counts.
    let registry = Arc::new(InMemoryRecorder::with_clock(Box::new(ManualClock::new(10))));
    telemetry::install(registry.clone());
    for workers in [1usize, 2, 8] {
        let set = TestBench::simulation(&chip)
            .unwrap()
            .with_parallel(ParallelConfig::serial().with_workers(workers))
            .collect(KEY, 5, None, Channel::OnChipSensor, 77)
            .unwrap();
        assert_eq!(set, reference, "workers={workers}");
    }
    telemetry::uninstall();

    // The pool reported per-worker chunk timings for the fanned-out runs.
    let snap = registry.snapshot();
    assert!(snap.counters["pool.chunks"] > 0);
    assert!(
        snap.histograms
            .keys()
            .any(|k| k.starts_with("pool.worker.")),
        "per-worker timings missing; got {:?}",
        snap.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn correlation_ids_stay_unique_across_concurrent_monitors() {
    // No recorder needed: ids are process-global and always drawn.
    let ids: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    (0..32)
                        .map(|_| telemetry::next_correlation_id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "ids must be unique");
}
