//! Integration of the spectral detector and the fabricated-chip model:
//! A2 detection end to end, chip-to-chip variation, and the measurement
//! chain's reproducibility guarantees.

use emtrust::acquisition::TestBench;
use emtrust::spectral::{SpectralConfig, SpectralDetector, SpectralStream};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip, TrojanKind};

const KEY: [u8; 16] = *b"spectral-silicon";

#[test]
fn a2_trigger_is_caught_in_the_frequency_domain() {
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)
        .expect("bench")
        .with_a2(A2Trojan::new(10e6));
    let golden = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 1)
        .expect("golden window");
    let det = SpectralDetector::fit(&golden, SpectralConfig::default()).expect("detector");

    // Dormant: clean.
    let dormant = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 2)
        .expect("dormant window");
    assert!(!det.trojan_suspected(&dormant).expect("compare"));

    // Triggering: the fast-flipping wire shows up.
    bench.arm_a2(true).expect("A2 installed above");
    let armed = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 3)
        .expect("armed window");
    let anomalies = det.compare(&armed).expect("compare");
    assert!(!anomalies.is_empty(), "A2 trigger must be visible");
    // Anomalies sit on the 5 MHz odd-harmonic comb of the trigger.
    for a in anomalies.iter().take(3) {
        let harmonic = (a.frequency_hz / 5e6).round();
        assert!(
            (a.frequency_hz - harmonic * 5e6).abs() < 2e6 && harmonic as u64 % 2 == 1,
            "anomaly at {:.2} MHz off the comb",
            a.frequency_hz / 1e6
        );
    }
}

#[test]
fn streaming_scan_catches_the_a2_trigger_per_window() {
    // The same A2 scenario, but through the incremental sliding-DFT
    // stream: no per-window FFT recompute, and the verdict comes with the
    // window position it first tripped at.
    let chip = ProtectedChip::golden();
    // A hungrier A2 instance (double the trigger-wire charge): single
    // 1024-sample windows lack the Welch-averaged contrast the batch
    // detector enjoys, so the reference-strength trigger only rises out
    // of the per-window floor once the wire load is of this order.
    let mut bench = TestBench::simulation(&chip)
        .expect("bench")
        .with_a2(A2Trojan::new(10e6).with_charge_per_toggle(3e-12));
    let golden = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 1)
        .expect("golden window");
    // Per-window spectra are noisier than the batch detector's Welch
    // average: widen the ratio margin, and confine the comparison (and
    // with it the noise-floor calibration) to the band below the third
    // clock harmonic where the trigger comb lives.
    let config = SpectralConfig {
        margin_ratio: 2.5,
        floor_multiplier: 2.0,
        analysis_band_hz: Some(30e6),
        ..SpectralConfig::default()
    };
    let stream = SpectralStream::fit(&golden, 1024, 512, config).expect("stream");

    let dormant = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 2)
        .expect("dormant window");
    assert!(
        stream.scan(&dormant).expect("scan").is_empty(),
        "dormant trace must stay within golden margins"
    );

    bench.arm_a2(true).expect("A2 installed above");
    let armed = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 3)
        .expect("armed window");
    let flagged = stream.scan(&armed).expect("scan");
    assert!(!flagged.is_empty(), "A2 trigger must be visible");
    // Every flagged window carries a valid position and the strongest
    // anomalies sit on the trigger's 5 MHz odd-harmonic comb.
    for w in &flagged {
        assert!(w.end_sample >= stream.window_len());
        assert!(w.end_sample <= armed.samples().len());
    }
    let top = flagged[0].anomalies[0];
    let harmonic = (top.frequency_hz / 5e6).round();
    assert!(
        (top.frequency_hz - harmonic * 5e6).abs() < 2e6 && harmonic as u64 % 2 == 1,
        "top anomaly at {:.2} MHz off the comb",
        top.frequency_hz / 1e6
    );
}

#[test]
fn t4_floods_the_spectrum_more_than_t3() {
    // Fig. 6 (i)-(l): register-bank Trojans raise many spots; T3 is
    // nearly invisible.
    let chip = ProtectedChip::with_all_trojans();
    let bench = TestBench::silicon(&chip, 1).expect("bench");
    let golden = bench
        .collect_continuous(KEY, 24, None, Channel::OnChipSensor, 5)
        .expect("golden");
    let det = SpectralDetector::fit(&golden, SpectralConfig::default()).expect("detector");
    let spots = |kind: TrojanKind, seed: u64| {
        let armed = bench
            .collect_continuous(KEY, 24, Some(kind), Channel::OnChipSensor, seed)
            .expect("armed");
        det.compare(&armed).expect("compare").len()
    };
    let t4 = spots(TrojanKind::T4PowerDegrader, 6);
    let t3 = spots(TrojanKind::T3CdmaLeaker, 7);
    assert!(t4 > t3, "T4 spots {t4} must exceed T3 spots {t3}");
}

#[test]
fn different_dies_measure_differently_but_reproducibly() {
    let chip = ProtectedChip::golden();
    let bench_a = TestBench::silicon(&chip, 100).expect("bench a");
    let bench_a2 = TestBench::silicon(&chip, 100).expect("bench a again");
    let bench_b = TestBench::silicon(&chip, 101).expect("bench b");
    let collect = |b: &TestBench<'_>| {
        b.collect(KEY, 1, None, Channel::OnChipSensor, 9)
            .expect("trace")
            .traces()[0]
            .clone()
    };
    let a = collect(&bench_a);
    let a2 = collect(&bench_a2);
    let b = collect(&bench_b);
    assert_eq!(a, a2, "same die, same seed: identical measurement");
    assert_ne!(a, b, "different dies differ (process variation)");
}

#[test]
fn scope_quantization_is_visible_in_the_output() {
    let chip = ProtectedChip::golden();
    let bench = TestBench::silicon(&chip, 1).expect("bench");
    let set = bench
        .collect(KEY, 1, None, Channel::OnChipSensor, 9)
        .expect("trace");
    let trace = &set.traces()[0];
    // 12-bit ADC over ±100 µV: every sample is a multiple of the LSB.
    let lsb = 2.0 * 100e-6 / 4096.0;
    for &v in trace.iter().take(200) {
        let steps = v / lsb;
        assert!(
            (steps - steps.round()).abs() < 1e-6,
            "sample {v} is not quantized"
        );
    }
}
