//! Trojan hunt on a fabricated chip: screen all four of the paper's
//! digital Trojans through both measurement channels and compare the
//! on-chip sensor against the external probe — the paper's headline
//! experiment, end to end.
//!
//! Run with: `cargo run --release --example trojan_hunt`

use emtrust::acquisition::TestBench;
use emtrust::euclidean::trojan_distance_study;
use emtrust::fingerprint::FingerprintConfig;
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

const TROJANS: [TrojanKind; 4] = [
    TrojanKind::T1AmLeaker,
    TrojanKind::T2LeakageLeaker,
    TrojanKind::T3CdmaLeaker,
    TrojanKind::T4PowerDegrader,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"hunting key 0123";
    println!("fabricating the test chip (AES + 4 Trojans, process variation)...");
    let chip = ProtectedChip::with_all_trojans();
    let bench = TestBench::silicon(&chip, /* chip serial */ 7)?;

    let config = FingerprintConfig {
        pca_components: None,
        ..FingerprintConfig::default()
    };
    for (channel, name) in [
        (Channel::OnChipSensor, "on-chip sensor"),
        (Channel::ExternalProbe, "external probe"),
    ] {
        println!("\n== screening through the {name} ==");
        let rows = trojan_distance_study(&bench, key, &TROJANS, 24, channel, config, 0xBEEF)?;
        for r in &rows {
            println!(
                "  {}: distance {:.4} vs EDth {:.4} -> {} ({:.0}% of traces over threshold)",
                r.kind,
                r.centroid_distance,
                r.threshold,
                if r.detected { "DETECTED" } else { "missed" },
                100.0 * r.per_trace_detection_rate,
            );
        }
        let caught = rows.iter().filter(|r| r.detected).count();
        println!("  -> {caught}/4 Trojans caught through the {name}");
    }
    println!(
        "\nThe on-chip sensor catches what the external probe cannot — the\n\
         paper's core result, reproduced on the simulated fabricated chip."
    );
    Ok(())
}
