//! Quickstart: protect an AES chip with the on-chip EM sensor framework
//! and catch a hardware Trojan the moment it activates.
//!
//! Run with: `cargo run --release --example quickstart`

use emtrust::acquisition::{Stimulus, TestBench};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::monitor::TrustMonitor;
use emtrust_silicon::Channel;
use emtrust_trojan::{ProtectedChip, TrojanKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"quickstart key!!";

    // 1. The chip under test: an AES-128 core that, unknown to its user,
    //    carries the paper's T4 power-degrader Trojan.
    println!("building the protected AES chip (gate-level netlist)...");
    let chip = ProtectedChip::with_trojans(&[TrojanKind::T4PowerDegrader]);
    println!(
        "  {} cells, of which the Trojan is {}",
        chip.netlist().cell_count(),
        emtrust_netlist::stats::module_stats(chip.netlist(), "trojan4").total
    );

    // 2. The measurement setup: spiral sensor on the top metal layer,
    //    simulation-grade measurement chain (paper §IV).
    println!("placing the die and computing the EM coupling kernel...");
    let bench = TestBench::simulation(&chip)?;

    // 3. Fingerprint the golden behaviour (Trojan dormant). Runtime
    //    self-test replays one known stimulus block, so the golden spread
    //    reflects only measurement noise.
    println!("collecting 32 golden traces and fitting the fingerprint...");
    let stimulus = Stimulus::Fixed(*b"self-test block!");
    let golden = bench.collect_with(key, stimulus, 32, None, Channel::OnChipSensor, 1)?;
    let fingerprint = GoldenFingerprint::fit(&golden, FingerprintConfig::default())?;
    println!("  Eq. 1 threshold: {:.4}", fingerprint.threshold());

    // 4. Runtime monitoring: the Trojan activates mid-stream.
    let mut monitor = TrustMonitor::builder(fingerprint).build();
    println!("monitoring... (Trojan activates after trace 8)");
    let clean = bench.collect_with(key, stimulus, 8, None, Channel::OnChipSensor, 2)?;
    for trace in clean.traces() {
        assert!(monitor.ingest_trace(trace)?.is_none(), "no false alarms");
    }
    let infected = bench.collect_with(
        key,
        stimulus,
        8,
        Some(TrojanKind::T4PowerDegrader),
        Channel::OnChipSensor,
        3,
    )?;
    for trace in infected.traces() {
        if let Some(alarm) = monitor.ingest_trace(trace)? {
            println!("  ALARM: {alarm:?}");
        }
    }
    println!(
        "{} traces ingested, {} alarms — every Trojan-active trace flagged.",
        monitor.traces_seen(),
        monitor.alarms().len()
    );
    assert_eq!(monitor.alarms().len(), 8);
    Ok(())
}
