//! Spectral watch for analog Trojans: an A2-style charge-pump Trojan is
//! invisible to power fingerprinting, but its fast-flipping trigger wire
//! betrays it in the frequency domain (paper §III-E / Fig. 4).
//!
//! Run with: `cargo run --release --example a2_spectral_watch`

use emtrust::acquisition::TestBench;
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::monitor::TrustMonitor;
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"spectral watch k";
    println!("installing an A2-style analog Trojan (6 transistors)...");
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)?.with_a2(A2Trojan::new(10e6));

    // Fit both detectors on golden windows (A2 dormant).
    println!("fitting time-domain and spectral detectors on golden data...");
    let golden_traces = bench.collect(key, 16, None, Channel::OnChipSensor, 1)?;
    let fingerprint = GoldenFingerprint::fit(&golden_traces, FingerprintConfig::default())?;
    let golden_window = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 2)?;
    let spectral = SpectralDetector::fit(&golden_window, SpectralConfig::default())?;
    let mut monitor = TrustMonitor::builder(fingerprint)
        .with_spectral(spectral)
        .build();

    // Dormant: both detectors stay quiet.
    let quiet = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 3)?;
    assert!(monitor.ingest_window(&quiet)?.is_none());
    println!("A2 dormant: spectrum clean.");

    // The trigger wire starts flipping.
    bench.arm_a2(true)?;
    let window = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 4)?;
    match monitor.ingest_window(&window)? {
        Some(alarm) => println!("A2 triggering: {alarm:?}"),
        None => panic!("the spectral detector must catch the A2 trigger"),
    }
    println!(
        "Alarm raised from the trigger's harmonic comb — no logic corruption\n\
         ever occurred, yet the chip is flagged before the payload can fire."
    );
    Ok(())
}
