//! Composable detection: three detectors — time-domain Euclidean,
//! reference-based spectral, and reference-free spectral-persistence —
//! voting through one fusion policy in a [`DetectionPipeline`].
//!
//! And-fusion over the window domain shows the value of composition:
//! the spectral detector flags the A2 trigger instantly but alone, and
//! the alarm fires only once the persistence run corroborates it —
//! a one-off spectral glitch never alarms.
//!
//! Run with: `cargo run --release --example detector_pipeline`

use emtrust::acquisition::TestBench;
use emtrust::detector::{EuclideanDetector, SpectralWindowDetector};
use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
use emtrust::persistence::{PersistenceConfig, SpectralPersistenceDetector};
use emtrust::spectral::{SpectralConfig, SpectralDetector};
use emtrust::{DetectionPipeline, FusionPolicy};
use emtrust_silicon::Channel;
use emtrust_trojan::{A2Trojan, ProtectedChip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = *b"pipeline demo k!";
    let chip = ProtectedChip::golden();
    let mut bench = TestBench::simulation(&chip)?.with_a2(A2Trojan::new(10e6));

    // Golden material for the two reference-based detectors; the
    // persistence detector learns its baseline from live windows.
    println!("fitting the euclidean and spectral references...");
    let golden_traces = bench.collect(key, 16, None, Channel::OnChipSensor, 1)?;
    let fingerprint = GoldenFingerprint::fit(&golden_traces, FingerprintConfig::default())?;
    let golden_window = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 2)?;
    let spectral = SpectralDetector::fit(&golden_window, SpectralConfig::default())?;

    let mut pipeline = DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fingerprint)))
        .detector(Box::new(SpectralWindowDetector::new(spectral)))
        .detector(Box::new(SpectralPersistenceDetector::new(
            PersistenceConfig::default(),
        )))
        .fusion(FusionPolicy::And)
        .build();
    println!(
        "pipeline: {:?} fused by {}",
        pipeline.detector_names(),
        pipeline.fusion().label()
    );

    // Quiet operation doubles as the persistence warm-up.
    let warmup = PersistenceConfig::default().warmup_windows;
    for seed in 0..u64::from(warmup) {
        let quiet = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 10 + seed)?;
        assert!(pipeline.try_ingest_window(&quiet)?.alarm.is_none());
    }
    println!("{warmup} quiet windows absorbed: baseline learned, no alarms.");

    // The A2 trigger wire starts flipping and stays parked.
    bench.arm_a2(true)?;
    for k in 1..=6u64 {
        let armed = bench.collect_continuous(key, 48, None, Channel::OnChipSensor, 100 + k)?;
        let outcome = pipeline.try_ingest_window(&armed)?;
        let votes: Vec<String> = outcome
            .votes
            .iter()
            .map(|v| format!("{}={}", v.detector, v.suspected))
            .collect();
        match outcome.alarm {
            Some(alarm) => {
                println!("armed window {k}: {} -> ALARM {alarm:?}", votes.join(" "));
                println!(
                    "every window detector corroborates — the spectral spike \
                     persisted long enough to rule out a glitch."
                );
                return Ok(());
            }
            None => println!("armed window {k}: {} -> no alarm yet", votes.join(" ")),
        }
    }
    Err("the fused pipeline never alarmed".into())
}
