//! Sensor design exploration: how the spiral's geometry drives its
//! coupling — the knob the paper's future work proposes tuning ("the
//! structure of the on-chip EM sensor will be enhanced to increase the
//! SNR").
//!
//! Run with: `cargo run --release --example sensor_design`

use emtrust_em::coil::Coil;
use emtrust_em::coupling::CouplingMap;
use emtrust_layout::floorplan::Die;
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let die = Die::square(600.0)?;

    println!("spiral turn-count sweep (die 600 um, M6 height 5 um):");
    println!("  turns  wire length  resistance  mean coupling");
    for turns in [5, 10, 20, 40, 80] {
        let spiral = SpiralSensor::with_turns(die, turns)?;
        let map = CouplingMap::build(&Coil::OnChip(spiral.clone()), die)?;
        println!(
            "  {:>5}  {:>8.0} um  {:>7.1} ohm  {:.3e} H",
            turns,
            spiral.wire_length_um(),
            spiral.resistance_ohm(),
            map.mean_abs(),
        );
    }

    println!("\nexternal probe standoff sweep (LANGER-class tip):");
    println!("  standoff  mean coupling");
    for z in [100.0, 200.0, 500.0, 1000.0, 3000.0] {
        let probe = ExternalProbe::over_die(die).with_standoff(z)?;
        let map = CouplingMap::build(&Coil::External(probe), die)?;
        println!("  {z:>6.0} um  {:.3e} H", map.mean_abs());
    }

    let onchip = CouplingMap::build(&Coil::OnChip(SpiralSensor::for_die(die)?), die)?;
    let external = CouplingMap::build(&Coil::External(ExternalProbe::over_die(die)), die)?;
    println!(
        "\ndefault design: on-chip couples {:.1}x stronger than the external probe\n\
         (and spatially: centre {:.2e} H vs corner {:.2e} H — the spiral sees\n\
         *where* current flows, the probe cannot).",
        onchip.mean_abs() / external.mean_abs(),
        onchip.at(300.0, 300.0),
        onchip.at(30.0, 30.0),
    );
    Ok(())
}
