//! Gate-count statistics per module — the machinery behind paper Table I
//! ("Trojan sizes compared to the whole AES design").
//!
//! Every cell carries a module tag; statistics aggregate by tag prefix so
//! a query for `"trojan1"` covers `trojan1/lfsr`, `trojan1/ctrl`, etc.

use crate::cell::{CellKind, ALL_KINDS};
use crate::graph::Netlist;
use crate::library::{netlist_area_um2, Library};
use std::collections::BTreeMap;

/// Gate-count summary of one module subtree (or a whole design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleStats {
    /// The module prefix the stats were collected for.
    pub prefix: String,
    /// Total cells in the subtree.
    pub total: usize,
    /// Per-kind breakdown.
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl ModuleStats {
    /// Count of a specific kind (0 if absent).
    pub fn kind_count(&self, kind: CellKind) -> usize {
        self.by_kind.get(kind.library_name()).copied().unwrap_or(0)
    }
}

/// Collects cell counts for every cell whose module path equals `prefix`
/// or starts with `prefix + "/"`. An empty prefix matches the whole design.
///
/// # Examples
///
/// ```
/// use emtrust_netlist::graph::Netlist;
/// use emtrust_netlist::stats::module_stats;
///
/// let mut n = Netlist::new("chip");
/// let a = n.input("a");
/// n.push_module("aes");
/// let x = n.not(a);
/// n.pop_module();
/// n.push_module("trojan1");
/// let y = n.and2(a, x);
/// n.pop_module();
/// n.mark_output("y", y);
///
/// assert_eq!(module_stats(&n, "aes").total, 1);
/// assert_eq!(module_stats(&n, "trojan1").total, 1);
/// assert_eq!(module_stats(&n, "").total, 2);
/// ```
pub fn module_stats(netlist: &Netlist, prefix: &str) -> ModuleStats {
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut total = 0;
    for (_, cell) in netlist.cells() {
        let path = netlist.module_path(cell.module());
        if matches_prefix(path, prefix) {
            total += 1;
            *by_kind.entry(cell.kind().library_name()).or_insert(0) += 1;
        }
    }
    ModuleStats {
        prefix: prefix.to_string(),
        total,
        by_kind,
    }
}

fn matches_prefix(path: &str, prefix: &str) -> bool {
    prefix.is_empty()
        || path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// One row of a Table-I-style size report.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRow {
    /// Row label (e.g. `AES`, `T1`).
    pub label: String,
    /// Gate count of the block.
    pub gate_count: usize,
    /// Gate count as a percentage of the baseline block.
    pub percent_of_baseline: f64,
}

/// Builds a Table-I-style report: each entry of `blocks` is a
/// `(label, module_prefix)` pair; percentages are relative to the first
/// block (the paper uses the AES as the 100 % baseline).
///
/// # Panics
///
/// Panics if `blocks` is empty.
pub fn size_table(netlist: &Netlist, blocks: &[(&str, &str)]) -> Vec<SizeRow> {
    assert!(!blocks.is_empty(), "size table needs at least one block");
    let baseline = module_stats(netlist, blocks[0].1).total.max(1);
    blocks
        .iter()
        .map(|(label, prefix)| {
            let count = module_stats(netlist, prefix).total;
            SizeRow {
                label: (*label).to_string(),
                gate_count: count,
                percent_of_baseline: 100.0 * count as f64 / baseline as f64,
            }
        })
        .collect()
}

/// Area of a module subtree as a percentage of a baseline subtree's area —
/// the metric the paper uses for the A2 Trojan row of Table I (0.087 %,
/// "calculated based on circuit area").
pub fn area_percent(
    netlist: &Netlist,
    library: &Library,
    prefix: &str,
    baseline_prefix: &str,
) -> f64 {
    let sub: f64 = netlist
        .cells()
        .filter(|(_, c)| matches_prefix(netlist.module_path(c.module()), prefix))
        .map(|(_, c)| library.electrical(c.kind()).area_um2)
        .sum();
    let base: f64 = netlist
        .cells()
        .filter(|(_, c)| matches_prefix(netlist.module_path(c.module()), baseline_prefix))
        .map(|(_, c)| library.electrical(c.kind()).area_um2)
        .sum();
    if base == 0.0 {
        0.0
    } else {
        100.0 * sub / base
    }
}

/// Full-design summary: total cells, sequential cells, per-kind counts and
/// total area.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSummary {
    /// Design name.
    pub name: String,
    /// Total cell count.
    pub cells: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Per-kind counts in `ALL_KINDS` order.
    pub by_kind: Vec<(CellKind, usize)>,
    /// Total area under the given library, in µm².
    pub area_um2: f64,
}

/// Summarizes an entire netlist.
pub fn design_summary(netlist: &Netlist, library: &Library) -> DesignSummary {
    let by_kind: Vec<(CellKind, usize)> = ALL_KINDS
        .iter()
        .map(|&k| (k, netlist.count_kind(k)))
        .collect();
    DesignSummary {
        name: netlist.name().to_string(),
        cells: netlist.cell_count(),
        flip_flops: netlist.count_kind(CellKind::Dff),
        by_kind,
        area_um2: netlist_area_um2(netlist, library),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged_netlist() -> Netlist {
        let mut n = Netlist::new("chip");
        let a = n.input("a");
        n.push_module("aes");
        n.push_module("sbox");
        let x = n.not(a);
        let y = n.not(x);
        n.pop_module();
        let z = n.and2(x, y);
        n.pop_module();
        n.push_module("trojan1");
        let t = n.xor2(a, z);
        n.pop_module();
        n.mark_output("t", t);
        n
    }

    #[test]
    fn prefix_matching_covers_subtrees() {
        let n = tagged_netlist();
        assert_eq!(module_stats(&n, "aes").total, 3);
        assert_eq!(module_stats(&n, "aes/sbox").total, 2);
        assert_eq!(module_stats(&n, "trojan1").total, 1);
        assert_eq!(module_stats(&n, "").total, 4);
    }

    #[test]
    fn prefix_does_not_match_substrings() {
        let mut n = Netlist::new("chip");
        let a = n.input("a");
        n.push_module("aes");
        let _ = n.not(a);
        n.pop_module();
        n.push_module("aes2");
        let _ = n.not(a);
        n.pop_module();
        assert_eq!(module_stats(&n, "aes").total, 1);
    }

    #[test]
    fn kind_breakdown_is_correct() {
        let n = tagged_netlist();
        let s = module_stats(&n, "aes");
        assert_eq!(s.kind_count(CellKind::Inv), 2);
        assert_eq!(s.kind_count(CellKind::And2), 1);
        assert_eq!(s.kind_count(CellKind::Dff), 0);
    }

    #[test]
    fn size_table_percentages() {
        let n = tagged_netlist();
        let rows = size_table(&n, &[("AES", "aes"), ("T1", "trojan1")]);
        assert_eq!(rows[0].gate_count, 3);
        assert!((rows[0].percent_of_baseline - 100.0).abs() < 1e-12);
        assert_eq!(rows[1].gate_count, 1);
        assert!((rows[1].percent_of_baseline - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn size_table_rejects_empty() {
        let n = tagged_netlist();
        let _ = size_table(&n, &[]);
    }

    #[test]
    fn area_percent_reflects_library_areas() {
        let n = tagged_netlist();
        let lib = Library::generic_180nm();
        let p = area_percent(&n, &lib, "trojan1", "aes");
        // trojan1 = one XOR (20 µm²); aes = 2 INV + 1 AND2 = 26.7 µm².
        assert!((p - 100.0 * 20.0 / 26.7).abs() < 0.1, "{p}");
    }

    #[test]
    fn area_percent_of_missing_baseline_is_zero() {
        let n = tagged_netlist();
        let lib = Library::generic_180nm();
        assert_eq!(area_percent(&n, &lib, "trojan1", "nope"), 0.0);
    }

    #[test]
    fn design_summary_totals() {
        let n = tagged_netlist();
        let lib = Library::generic_180nm();
        let s = design_summary(&n, &lib);
        assert_eq!(s.cells, 4);
        assert_eq!(s.flip_flops, 0);
        assert!(s.area_um2 > 0.0);
        let total_from_kinds: usize = s.by_kind.iter().map(|(_, c)| c).sum();
        assert_eq!(total_from_kinds, 4);
    }
}
