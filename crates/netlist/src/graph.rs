//! The netlist graph and its builder-style construction API.
//!
//! A [`Netlist`] is a flat sea of gates with:
//!
//! - **nets** (single-driver wires, optionally named),
//! - **cells** (a [`CellKind`] plus ordered input nets and one output net),
//! - **primary inputs/outputs**, and
//! - **module tags**: every cell carries a [`ModuleId`] naming the
//!   hierarchical block it belongs to (e.g. `aes/sbox_3` or `trojan1`).
//!   Tags drive the Table-I statistics and the placement grouping in
//!   `emtrust-layout`.
//!
//! Construction is done by mutating methods (`input`, `gate`, `dff`, the
//! per-kind helpers) that append to the netlist and return ids, following
//! the builder-pattern guidance for complex values.

use crate::cell::CellKind;
use crate::NetlistError;

/// Identifier of a net (wire) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a cell (gate instance) within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

/// Identifier of a module tag within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub(crate) u32);

impl NetId {
    /// The raw index (stable for the lifetime of the netlist).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CellId {
    /// The raw index (stable for the lifetime of the netlist).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ModuleId {
    /// The raw index (stable for the lifetime of the netlist).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetSource {
    /// Nothing drives the net yet (illegal in a validated netlist).
    Undriven,
    /// A constant logic value.
    Const(bool),
    /// A primary input.
    Input,
    /// The output pin of a cell.
    Cell(CellId),
}

#[derive(Debug, Clone)]
pub(crate) struct Net {
    pub(crate) name: Option<String>,
    pub(crate) source: NetSource,
}

/// A gate instance.
#[derive(Debug, Clone)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
    pub(crate) module: ModuleId,
}

impl Cell {
    /// The gate kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Ordered input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The module tag the cell belongs to.
    pub fn module(&self) -> ModuleId {
        self.module
    }
}

/// A flat gate-level netlist with module tags.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
    modules: Vec<String>,
    module_stack: Vec<ModuleId>,
    const0: NetId,
    const1: NetId,
}

impl Netlist {
    /// Creates an empty netlist named `name`, with constant-0/1 nets
    /// pre-allocated and the root module tag `""`.
    pub fn new(name: impl Into<String>) -> Self {
        let nets = vec![
            Net {
                name: Some("const0".into()),
                source: NetSource::Const(false),
            },
            Net {
                name: Some("const1".into()),
                source: NetSource::Const(true),
            },
        ];
        Self {
            name: name.into(),
            nets,
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            modules: vec![String::new()],
            module_stack: vec![ModuleId(0)],
            const0: NetId(0),
            const1: NetId(1),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constant-false net.
    pub fn const0(&self) -> NetId {
        self.const0
    }

    /// The constant-true net.
    pub fn const1(&self) -> NetId {
        self.const1
    }

    /// A constant net for `value`.
    pub fn constant(&self, value: bool) -> NetId {
        if value {
            self.const1
        } else {
            self.const0
        }
    }

    // ---- module tagging ------------------------------------------------

    /// Enters a sub-module scope: subsequent cells are tagged
    /// `parent/name`. Returns the new tag.
    pub fn push_module(&mut self, name: &str) -> ModuleId {
        let parent = &self.modules[self.module_stack.last().unwrap().index()];
        let full = if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        let id = match self.modules.iter().position(|m| *m == full) {
            Some(i) => ModuleId(i as u32),
            None => {
                self.modules.push(full);
                ModuleId((self.modules.len() - 1) as u32)
            }
        };
        self.module_stack.push(id);
        id
    }

    /// Leaves the current sub-module scope.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`Netlist::push_module`].
    pub fn pop_module(&mut self) {
        assert!(
            self.module_stack.len() > 1,
            "pop_module without matching push_module"
        );
        self.module_stack.pop();
    }

    /// The currently active module tag.
    pub fn current_module(&self) -> ModuleId {
        *self.module_stack.last().unwrap()
    }

    /// Full path of a module tag.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn module_path(&self, id: ModuleId) -> &str {
        &self.modules[id.index()]
    }

    /// All module tags (index = [`ModuleId`]).
    pub fn module_paths(&self) -> impl Iterator<Item = (ModuleId, &str)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, p)| (ModuleId(i as u32), p.as_str()))
    }

    // ---- net / port construction ----------------------------------------

    /// Allocates a fresh unnamed, undriven net (used for forward
    /// references, e.g. feedback through flip-flops).
    pub fn fresh_net(&mut self) -> NetId {
        self.nets.push(Net {
            name: None,
            source: NetSource::Undriven,
        });
        NetId((self.nets.len() - 1) as u32)
    }

    /// Adds a primary input named `name` and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        self.nets.push(Net {
            name: Some(name.clone()),
            source: NetSource::Input,
        });
        let id = NetId((self.nets.len() - 1) as u32);
        self.inputs.push((name, id));
        id
    }

    /// Adds a bus of `width` primary inputs named `name[i]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Marks `net` as the primary output `name`.
    pub fn mark_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Marks a bus of primary outputs named `name[i]`, LSB first.
    pub fn mark_output_bus(&mut self, name: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.mark_output(format!("{name}[{i}]"), n);
        }
    }

    // ---- gate construction ----------------------------------------------

    /// Appends a gate of `kind` over `inputs`, returning its output net.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::ArityMismatch`] if `inputs.len() != kind.arity()`,
    /// - [`NetlistError::UnknownNet`] if any input id is out of range.
    pub fn try_gate(&mut self, kind: CellKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                kind,
                expected: kind.arity(),
                actual: inputs.len(),
            });
        }
        for &i in inputs {
            if i.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet { net: i.0 });
            }
        }
        let out = self.fresh_net();
        let cell_id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            output: out,
            module: self.current_module(),
        });
        self.nets[out.index()].source = NetSource::Cell(cell_id);
        Ok(out)
    }

    /// Appends a gate, panicking on misuse (the ergonomic path for
    /// generators whose arity is statically correct).
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`Netlist::try_gate`] reports as errors.
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        self.try_gate(kind, inputs)
            .expect("invalid gate construction")
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Inv, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Buf, &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::And2, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nand2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Or2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nor2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xnor2, &[a, b])
    }

    /// 2:1 mux: `sel ? d1 : d0`.
    pub fn mux2(&mut self, d0: NetId, d1: NetId, sel: NetId) -> NetId {
        self.gate(CellKind::Mux2, &[d0, d1, sel])
    }

    /// Rising-edge D flip-flop; returns `q`.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.gate(CellKind::Dff, &[d])
    }

    /// A flip-flop whose `d` is supplied later via
    /// [`Netlist::connect_dff_d`]; returns `(q, placeholder_d)`.
    ///
    /// Needed for feedback (state machines, LFSRs) where `d` depends on `q`.
    pub fn dff_deferred(&mut self) -> (NetId, DeferredD) {
        let placeholder = self.fresh_net();
        let q = self.gate(CellKind::Dff, &[placeholder]);
        let cell = match self.nets[q.index()].source {
            NetSource::Cell(c) => c,
            _ => unreachable!("dff output must be cell-driven"),
        };
        (q, DeferredD { cell })
    }

    /// Resolves a deferred flip-flop input to `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn connect_dff_d(&mut self, deferred: DeferredD, d: NetId) {
        assert!(d.index() < self.nets.len(), "unknown net");
        self.cells[deferred.cell.index()].inputs[0] = d;
    }

    /// Rewires input pin `pin` of `cell` to `net`.
    ///
    /// This is the netlist-editing primitive hardware-Trojan insertion
    /// uses: tap an existing wire, route it through malicious logic, and
    /// reconnect. Note that careless rewiring can create combinational
    /// cycles; [`Netlist::validate`] will catch them.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `net` is out of range, or
    /// [`NetlistError::ArityMismatch`] if `pin` exceeds the cell's arity.
    pub fn rewire_input(
        &mut self,
        cell: CellId,
        pin: usize,
        net: NetId,
    ) -> Result<(), NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet { net: net.0 });
        }
        let kind = self.cells[cell.index()].kind;
        if pin >= kind.arity() {
            return Err(NetlistError::ArityMismatch {
                kind,
                expected: kind.arity(),
                actual: pin + 1,
            });
        }
        self.cells[cell.index()].inputs[pin] = net;
        Ok(())
    }

    /// Reduces a slice of nets with XOR (balanced tree). Returns `const0`
    /// for an empty slice.
    pub fn xor_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, Self::xor2, self.const0)
    }

    /// Reduces a slice of nets with OR (balanced tree). Returns `const0`
    /// for an empty slice.
    pub fn or_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, Self::or2, self.const0)
    }

    /// Reduces a slice of nets with AND (balanced tree). Returns `const1`
    /// for an empty slice.
    pub fn and_many(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, Self::and2, self.const1)
    }

    fn reduce_tree(
        &mut self,
        nets: &[NetId],
        op: fn(&mut Self, NetId, NetId) -> NetId,
        empty: NetId,
    ) -> NetId {
        match nets {
            [] => empty,
            [one] => *one,
            _ => {
                let mut layer = nets.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    // ---- inspection ------------------------------------------------------

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets (including the two constants).
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Primary inputs as `(name, net)` pairs, in declaration order.
    pub fn primary_inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs, in declaration order.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// The cell with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// The driver of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net_source(&self, net: NetId) -> &NetSource {
        &self.nets[net.index()].source
    }

    /// The optional name of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.nets[net.index()].name.as_deref()
    }

    /// Counts cells of a particular kind.
    pub fn count_kind(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// Validates structural sanity: every cell input driven, no
    /// combinational cycles, all primary outputs driven.
    ///
    /// # Errors
    ///
    /// - [`NetlistError::UndrivenNet`] for a floating cell input or output
    ///   port,
    /// - [`NetlistError::CombinationalCycle`] if levelization fails.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for cell in &self.cells {
            for &i in &cell.inputs {
                if matches!(self.nets[i.index()].source, NetSource::Undriven) {
                    return Err(NetlistError::UndrivenNet {
                        net: i.0,
                        name: self.nets[i.index()].name.clone(),
                    });
                }
            }
        }
        for (_, net) in &self.outputs {
            if matches!(self.nets[net.index()].source, NetSource::Undriven) {
                return Err(NetlistError::UndrivenNet {
                    net: net.0,
                    name: self.nets[net.index()].name.clone(),
                });
            }
        }
        crate::level::levelize(self).map(|_| ())
    }
}

/// Token for a flip-flop created with [`Netlist::dff_deferred`] whose data
/// input is still unresolved.
#[derive(Debug)]
#[must_use = "a deferred flip-flop input must be connected"]
pub struct DeferredD {
    pub(crate) cell: CellId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_exist_up_front() {
        let n = Netlist::new("t");
        assert_eq!(n.net_source(n.const0()), &NetSource::Const(false));
        assert_eq!(n.net_source(n.const1()), &NetSource::Const(true));
        assert_eq!(n.constant(true), n.const1());
    }

    #[test]
    fn build_and_count() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        n.mark_output("x", x);
        assert_eq!(n.cell_count(), 1);
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn arity_is_checked() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        assert!(matches!(
            n.try_gate(CellKind::And2, &[a]),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_net_is_rejected() {
        let mut n = Netlist::new("t");
        let bogus = NetId(999);
        assert!(matches!(
            n.try_gate(CellKind::Inv, &[bogus]),
            Err(NetlistError::UnknownNet { net: 999 })
        ));
    }

    #[test]
    fn undriven_input_fails_validation() {
        let mut n = Netlist::new("t");
        let floating = n.fresh_net();
        let _ = n.not(floating);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn deferred_dff_enables_feedback() {
        // A 1-bit toggle: q' = !q.
        let mut n = Netlist::new("toggle");
        let (q, d) = n.dff_deferred();
        let nq = n.not(q);
        n.connect_dff_d(d, nq);
        n.mark_output("q", q);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn module_tags_nest() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.push_module("aes");
        n.push_module("sbox");
        let x = n.not(a);
        n.pop_module();
        let y = n.not(x);
        n.pop_module();
        let z = n.not(y);
        let cells: Vec<_> = n.cells().map(|(_, c)| c.module()).collect();
        assert_eq!(n.module_path(cells[0]), "aes/sbox");
        assert_eq!(n.module_path(cells[1]), "aes");
        assert_eq!(n.module_path(cells[2]), "");
        let _ = z;
    }

    #[test]
    fn pushing_same_module_twice_reuses_tag() {
        let mut n = Netlist::new("t");
        let m1 = n.push_module("x");
        n.pop_module();
        let m2 = n.push_module("x");
        n.pop_module();
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "pop_module")]
    fn pop_root_module_panics() {
        let mut n = Netlist::new("t");
        n.pop_module();
    }

    #[test]
    fn reduce_trees() {
        let mut n = Netlist::new("t");
        let bus = n.input_bus("a", 5);
        let x = n.xor_many(&bus);
        let o = n.or_many(&bus);
        let a = n.and_many(&bus);
        n.mark_output("x", x);
        n.mark_output("o", o);
        n.mark_output("a", a);
        assert_eq!(n.count_kind(CellKind::Xor2), 4);
        assert_eq!(n.count_kind(CellKind::Or2), 4);
        assert_eq!(n.count_kind(CellKind::And2), 4);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn empty_reductions_give_identities() {
        let mut n = Netlist::new("t");
        assert_eq!(n.xor_many(&[]), n.const0());
        assert_eq!(n.or_many(&[]), n.const0());
        assert_eq!(n.and_many(&[]), n.const1());
    }

    #[test]
    fn single_net_reduction_is_identity() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        assert_eq!(n.xor_many(&[a]), a);
        assert_eq!(n.cell_count(), 0);
    }

    #[test]
    fn input_bus_names_are_indexed() {
        let mut n = Netlist::new("t");
        let bus = n.input_bus("d", 3);
        assert_eq!(n.net_name(bus[0]), Some("d[0]"));
        assert_eq!(n.net_name(bus[2]), Some("d[2]"));
    }
}
