//! Electrical characterization of the cell library.
//!
//! The paper fabricates in a 180 nm CMOS process (V_DD = 1.8 V, six metal
//! layers). The power model converts switching events into current pulses
//! using these per-cell parameters:
//!
//! - **effective switched capacitance** `C_eff` — charge per output
//!   transition is `Q = C_eff · V_DD`,
//! - **leakage current** — the state-independent floor (T2 perturbs this),
//! - **area** — used by the placer and for the A2 area-percentage row of
//!   Table I.
//!
//! Values are representative of published 180 nm standard-cell kits; the
//! detectors depend only on their *relative* magnitudes (a DFF switches
//! more charge than an inverter, etc.), which these preserve.

use crate::cell::CellKind;
#[cfg(test)]
use crate::cell::ALL_KINDS;

/// Per-kind electrical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellElectrical {
    /// Effective switched capacitance per output transition, in femtofarads.
    pub c_eff_ff: f64,
    /// Leakage current, in nanoamperes.
    pub leakage_na: f64,
    /// Cell area in square micrometres.
    pub area_um2: f64,
}

/// A characterized standard-cell library.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    vdd_v: f64,
    /// Indexed in `ALL_KINDS` order.
    cells: Vec<(CellKind, CellElectrical)>,
    /// Nominal gate delay used to stagger switching by level, seconds.
    gate_delay_s: f64,
}

impl Library {
    /// The generic 180 nm-class library used throughout the reproduction.
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_netlist::library::Library;
    /// use emtrust_netlist::cell::CellKind;
    ///
    /// let lib = Library::generic_180nm();
    /// assert_eq!(lib.vdd_v(), 1.8);
    /// // A flip-flop switches more charge than an inverter.
    /// assert!(lib.electrical(CellKind::Dff).c_eff_ff
    ///     > lib.electrical(CellKind::Inv).c_eff_ff);
    /// ```
    pub fn generic_180nm() -> Self {
        use CellKind::*;
        let table = [
            (
                Buf,
                CellElectrical {
                    c_eff_ff: 6.0,
                    leakage_na: 0.08,
                    area_um2: 13.3,
                },
            ),
            (
                Inv,
                CellElectrical {
                    c_eff_ff: 4.0,
                    leakage_na: 0.05,
                    area_um2: 6.7,
                },
            ),
            (
                And2,
                CellElectrical {
                    c_eff_ff: 7.5,
                    leakage_na: 0.10,
                    area_um2: 13.3,
                },
            ),
            (
                Nand2,
                CellElectrical {
                    c_eff_ff: 6.0,
                    leakage_na: 0.09,
                    area_um2: 10.0,
                },
            ),
            (
                Or2,
                CellElectrical {
                    c_eff_ff: 7.5,
                    leakage_na: 0.10,
                    area_um2: 13.3,
                },
            ),
            (
                Nor2,
                CellElectrical {
                    c_eff_ff: 6.0,
                    leakage_na: 0.09,
                    area_um2: 10.0,
                },
            ),
            (
                Xor2,
                CellElectrical {
                    c_eff_ff: 10.0,
                    leakage_na: 0.14,
                    area_um2: 20.0,
                },
            ),
            (
                Xnor2,
                CellElectrical {
                    c_eff_ff: 10.0,
                    leakage_na: 0.14,
                    area_um2: 20.0,
                },
            ),
            (
                Mux2,
                CellElectrical {
                    c_eff_ff: 9.0,
                    leakage_na: 0.13,
                    area_um2: 20.0,
                },
            ),
            (
                Dff,
                CellElectrical {
                    c_eff_ff: 22.0,
                    leakage_na: 0.35,
                    area_um2: 50.0,
                },
            ),
            (
                PadDriver,
                CellElectrical {
                    c_eff_ff: 1000.0,
                    leakage_na: 4.0,
                    area_um2: 160.0,
                },
            ),
        ];
        Self {
            name: "generic180".into(),
            vdd_v: 1.8,
            cells: table.to_vec(),
            gate_delay_s: 150e-12,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage in volts.
    pub fn vdd_v(&self) -> f64 {
        self.vdd_v
    }

    /// Nominal gate delay in seconds (used to stagger switching by level).
    pub fn gate_delay_s(&self) -> f64 {
        self.gate_delay_s
    }

    /// Electrical parameters of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the library does not characterize `kind` (the generic
    /// library characterizes every kind).
    pub fn electrical(&self, kind: CellKind) -> CellElectrical {
        self.cells
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| *e)
            .unwrap_or_else(|| panic!("library {} lacks cell kind {kind:?}", self.name))
    }

    /// Charge switched per output transition of `kind`, in coulombs.
    pub fn charge_per_transition_c(&self, kind: CellKind) -> f64 {
        self.electrical(kind).c_eff_ff * 1e-15 * self.vdd_v
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::generic_180nm()
    }
}

/// Total area of a netlist under a library, in square micrometres.
pub fn netlist_area_um2(netlist: &crate::graph::Netlist, library: &Library) -> f64 {
    netlist
        .cells()
        .map(|(_, c)| library.electrical(c.kind()).area_um2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    #[test]
    fn generic_library_characterizes_all_kinds() {
        let lib = Library::generic_180nm();
        for kind in ALL_KINDS {
            let e = lib.electrical(kind);
            assert!(e.c_eff_ff > 0.0);
            assert!(e.leakage_na > 0.0);
            assert!(e.area_um2 > 0.0);
        }
    }

    #[test]
    fn charge_per_transition_is_q_equals_cv() {
        let lib = Library::generic_180nm();
        let q = lib.charge_per_transition_c(CellKind::Inv);
        assert!((q - 4.0e-15 * 1.8).abs() < 1e-20);
    }

    #[test]
    fn dff_dominates_simple_gates() {
        let lib = Library::generic_180nm();
        let dff = lib.electrical(CellKind::Dff);
        for kind in [CellKind::Inv, CellKind::Nand2, CellKind::Xor2] {
            assert!(dff.c_eff_ff > lib.electrical(kind).c_eff_ff);
            assert!(dff.area_um2 > lib.electrical(kind).area_um2);
        }
    }

    #[test]
    fn default_is_generic_180nm() {
        assert_eq!(Library::default(), Library::generic_180nm());
    }

    #[test]
    fn netlist_area_sums_cells() {
        let lib = Library::generic_180nm();
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.not(a);
        let _ = n.dff(b);
        let area = netlist_area_um2(&n, &lib);
        let expect =
            lib.electrical(CellKind::Inv).area_um2 + lib.electrical(CellKind::Dff).area_um2;
        assert!((area - expect).abs() < 1e-12);
    }

    #[test]
    fn gate_delay_is_positive_and_sub_nanosecond() {
        let lib = Library::generic_180nm();
        assert!(lib.gate_delay_s() > 0.0);
        assert!(lib.gate_delay_s() < 1e-9);
    }
}
