//! Combinational synthesis: truth table → reduced ordered BDD → MUX2 netlist.
//!
//! The paper's AES netlist comes out of a vendor synthesis flow; this module
//! is the from-scratch substitute. A multi-output boolean function given as
//! a truth table is converted into a reduced ordered binary decision diagram
//! (with node sharing across outputs), and each BDD node is emitted as one
//! 2:1 multiplexer. The AES S-box (8 → 8) synthesizes to a few hundred
//! muxes this way — comparable to a mapped standard-cell S-box and, more
//! importantly, it *switches* like real logic, which is what the EM model
//! consumes.
//!
//! Variable order is fixed: the most-significant input is tested first.

use crate::graph::{NetId, Netlist};
use crate::NetlistError;
use std::collections::HashMap;

/// A multi-output truth table over `n_inputs` boolean variables.
///
/// Entry `idx` (with bit `i` of `idx` holding input `i`) maps to an output
/// word whose bit `j` is output `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    n_inputs: usize,
    n_outputs: usize,
    /// `2^n_inputs` output words.
    words: Vec<u64>,
}

impl TruthTable {
    /// Builds a table from an explicit word list (`words[idx]` = outputs at
    /// input pattern `idx`).
    ///
    /// # Errors
    ///
    /// - [`NetlistError::BadTruthTable`] if `n_inputs > 16`,
    ///   `n_outputs == 0`, `n_outputs > 64`, or `words.len() != 2^n_inputs`.
    pub fn from_words(
        n_inputs: usize,
        n_outputs: usize,
        words: &[u64],
    ) -> Result<Self, NetlistError> {
        if n_inputs > 16 {
            return Err(NetlistError::BadTruthTable {
                what: "more than 16 inputs is unsupported",
            });
        }
        if n_outputs == 0 || n_outputs > 64 {
            return Err(NetlistError::BadTruthTable {
                what: "output count must be in 1..=64",
            });
        }
        if words.len() != 1usize << n_inputs {
            return Err(NetlistError::BadTruthTable {
                what: "word count must be 2^n_inputs",
            });
        }
        Ok(Self {
            n_inputs,
            n_outputs,
            words: words.to_vec(),
        })
    }

    /// Builds a table by evaluating `f` on every input pattern.
    ///
    /// # Errors
    ///
    /// Same shape constraints as [`TruthTable::from_words`].
    pub fn from_fn(
        n_inputs: usize,
        n_outputs: usize,
        mut f: impl FnMut(usize) -> u64,
    ) -> Result<Self, NetlistError> {
        if n_inputs > 16 {
            return Err(NetlistError::BadTruthTable {
                what: "more than 16 inputs is unsupported",
            });
        }
        let words: Vec<u64> = (0..1usize << n_inputs).map(&mut f).collect();
        Self::from_words(n_inputs, n_outputs, &words)
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output bits.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Output word at input pattern `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2^n_inputs`.
    pub fn word(&self, idx: usize) -> u64 {
        self.words[idx]
    }
}

/// Reference to a BDD node or terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ref {
    Zero,
    One,
    Node(u32),
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Input variable tested at this node.
    var: u16,
    lo: Ref,
    hi: Ref,
}

/// A reduced ordered BDD built from a [`TruthTable`], ready to be emitted
/// as a MUX2 netlist.
#[derive(Debug, Clone)]
pub struct BddSynthesizer {
    n_inputs: usize,
    nodes: Vec<Node>,
    roots: Vec<Ref>,
}

impl BddSynthesizer {
    /// Builds the shared ROBDD for every output of `table`.
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_netlist::synth::{BddSynthesizer, TruthTable};
    ///
    /// // 2-input XOR.
    /// let tt = TruthTable::from_fn(2, 1, |i| ((i & 1) ^ (i >> 1)) as u64)?;
    /// let bdd = BddSynthesizer::from_truth_table(&tt);
    /// assert_eq!(bdd.eval(0b01), 1);
    /// assert_eq!(bdd.eval(0b11), 0);
    /// # Ok::<(), emtrust_netlist::NetlistError>(())
    /// ```
    pub fn from_truth_table(table: &TruthTable) -> Self {
        let mut builder = Builder {
            n_inputs: table.n_inputs,
            nodes: Vec::new(),
            unique: HashMap::new(),
            memo: HashMap::new(),
        };
        let size = 1usize << table.n_inputs;
        let roots = (0..table.n_outputs)
            .map(|bit| {
                let bits: Vec<bool> = (0..size).map(|i| table.words[i] >> bit & 1 != 0).collect();
                builder.build(&bits)
            })
            .collect();
        Self {
            n_inputs: table.n_inputs,
            nodes: builder.nodes,
            roots,
        }
    }

    /// Number of internal BDD nodes (equals the MUX2 count after emission).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input variables.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.roots.len()
    }

    /// Evaluates the BDD on input pattern `idx` (bit `i` = input `i`),
    /// returning the output word.
    pub fn eval(&self, idx: usize) -> u64 {
        let mut out = 0u64;
        for (bit, &root) in self.roots.iter().enumerate() {
            let mut r = root;
            loop {
                match r {
                    Ref::Zero => break,
                    Ref::One => {
                        out |= 1 << bit;
                        break;
                    }
                    Ref::Node(n) => {
                        let node = self.nodes[n as usize];
                        r = if idx >> node.var & 1 != 0 {
                            node.hi
                        } else {
                            node.lo
                        };
                    }
                }
            }
        }
        out
    }

    /// Emits the BDD into `netlist` as MUX2 cells, one per node, selected
    /// by the provided `inputs` (LSB-first). Returns the output nets
    /// (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `inputs.len()` differs
    /// from the table's input count.
    pub fn emit(
        &self,
        netlist: &mut Netlist,
        inputs: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        if inputs.len() != self.n_inputs {
            return Err(NetlistError::ArityMismatch {
                kind: crate::cell::CellKind::Mux2,
                expected: self.n_inputs,
                actual: inputs.len(),
            });
        }
        // Nodes were created children-first, so a single pass suffices.
        let mut node_nets: Vec<NetId> = Vec::with_capacity(self.nodes.len());
        let resolve = |r: Ref, nets: &[NetId], nl: &Netlist| -> NetId {
            match r {
                Ref::Zero => nl.const0(),
                Ref::One => nl.const1(),
                Ref::Node(n) => nets[n as usize],
            }
        };
        for node in &self.nodes {
            let d0 = resolve(node.lo, &node_nets, netlist);
            let d1 = resolve(node.hi, &node_nets, netlist);
            let sel = inputs[node.var as usize];
            node_nets.push(netlist.mux2(d0, d1, sel));
        }
        Ok(self
            .roots
            .iter()
            .map(|&r| resolve(r, &node_nets, netlist))
            .collect())
    }
}

/// Convenience: synthesizes `table` directly into `netlist`.
///
/// # Errors
///
/// Propagates the shape errors of [`BddSynthesizer::emit`].
pub fn synthesize(
    netlist: &mut Netlist,
    inputs: &[NetId],
    table: &TruthTable,
) -> Result<Vec<NetId>, NetlistError> {
    BddSynthesizer::from_truth_table(table).emit(netlist, inputs)
}

struct Builder {
    n_inputs: usize,
    nodes: Vec<Node>,
    /// Hash-consing table: (var, lo, hi) → node.
    unique: HashMap<(u16, Ref, Ref), u32>,
    /// Subtable memo: packed bits → node built for that subfunction.
    memo: HashMap<Vec<u8>, Ref>,
}

impl Builder {
    fn build(&mut self, bits: &[bool]) -> Ref {
        debug_assert!(bits.len().is_power_of_two());
        if bits.iter().all(|&b| !b) {
            return Ref::Zero;
        }
        if bits.iter().all(|&b| b) {
            return Ref::One;
        }
        let key = pack_bits(bits);
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        // Split on the most significant remaining variable.
        let half = bits.len() / 2;
        let lo = self.build(&bits[..half]);
        let hi = self.build(&bits[half..]);
        let r = if lo == hi {
            lo
        } else {
            // var index: a table of 2^k entries splits on variable k-1.
            let var = (bits.len().trailing_zeros() - 1) as u16;
            debug_assert!((var as usize) < self.n_inputs);
            match self.unique.get(&(var, lo, hi)) {
                Some(&n) => Ref::Node(n),
                None => {
                    let n = self.nodes.len() as u32;
                    self.nodes.push(Node { var, lo, hi });
                    self.unique.insert((var, lo, hi), n);
                    Ref::Node(n)
                }
            }
        };
        self.memo.insert(key, r);
        r
    }
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    // Prefix with the length so different levels cannot collide.
    let mut out = Vec::with_capacity(bits.len() / 8 + 9);
    out.extend_from_slice(&(bits.len() as u64).to_le_bytes());
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NetSource, Netlist};
    use proptest::prelude::*;

    /// Test-only recursive evaluator over a purely combinational netlist.
    fn eval_net(netlist: &Netlist, net: NetId, input_values: &[(NetId, bool)]) -> bool {
        match netlist.net_source(net) {
            NetSource::Const(b) => *b,
            NetSource::Input => input_values
                .iter()
                .find(|(n, _)| *n == net)
                .map(|(_, v)| *v)
                .expect("input value supplied"),
            NetSource::Cell(c) => {
                let cell = netlist.cell(*c);
                let ins: Vec<bool> = cell
                    .inputs()
                    .iter()
                    .map(|&i| eval_net(netlist, i, input_values))
                    .collect();
                cell.kind().eval(&ins)
            }
            NetSource::Undriven => panic!("undriven net"),
        }
    }

    #[test]
    fn xor_bdd_has_expected_shape() {
        let tt = TruthTable::from_fn(2, 1, |i| ((i & 1) ^ (i >> 1 & 1)) as u64).unwrap();
        let bdd = BddSynthesizer::from_truth_table(&tt);
        // XOR of 2 variables needs exactly 3 BDD nodes.
        assert_eq!(bdd.node_count(), 3);
        for i in 0..4 {
            assert_eq!(bdd.eval(i), tt.word(i));
        }
    }

    #[test]
    fn constant_functions_emit_no_nodes() {
        let tt = TruthTable::from_fn(3, 2, |_| 0b01).unwrap();
        let bdd = BddSynthesizer::from_truth_table(&tt);
        assert_eq!(bdd.node_count(), 0);
        let mut n = Netlist::new("t");
        let ins = n.input_bus("x", 3);
        let outs = bdd.emit(&mut n, &ins).unwrap();
        assert_eq!(outs[0], n.const1());
        assert_eq!(outs[1], n.const0());
        assert_eq!(n.cell_count(), 0);
    }

    #[test]
    fn identity_output_shares_input_variable_node() {
        // out0 = x0, out1 = x0 — both roots must share one node.
        let tt = TruthTable::from_fn(2, 2, |i| {
            let b = (i & 1) as u64;
            b | (b << 1)
        })
        .unwrap();
        let bdd = BddSynthesizer::from_truth_table(&tt);
        assert_eq!(bdd.node_count(), 1);
    }

    #[test]
    fn emitted_netlist_matches_table_exhaustively() {
        // A structured 4→3 function.
        let tt = TruthTable::from_fn(4, 3, |i| {
            let a = i & 1 != 0;
            let b = i >> 1 & 1 != 0;
            let c = i >> 2 & 1 != 0;
            let d = i >> 3 & 1 != 0;
            let o0 = a ^ b ^ c;
            let o1 = (a & b) | (c & d);
            let o2 = !(a | d);
            (o0 as u64) | (o1 as u64) << 1 | (o2 as u64) << 2
        })
        .unwrap();
        let mut netlist = Netlist::new("t");
        let inputs = netlist.input_bus("x", 4);
        let outputs = synthesize(&mut netlist, &inputs, &tt).unwrap();
        assert!(netlist.validate().is_ok());
        for idx in 0..16usize {
            let assignment: Vec<(NetId, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, idx >> i & 1 != 0))
                .collect();
            let mut word = 0u64;
            for (bit, &o) in outputs.iter().enumerate() {
                if eval_net(&netlist, o, &assignment) {
                    word |= 1 << bit;
                }
            }
            assert_eq!(word, tt.word(idx), "input {idx:#06b}");
        }
    }

    #[test]
    fn aes_sbox_synthesizes_compactly() {
        // The AES S-box's first 16 entries are enough to check shape here;
        // the full exhaustive check lives in the aes crate. Use a random
        // dense permutation-like table instead.
        let tt = TruthTable::from_fn(8, 8, |i| {
            (i.wrapping_mul(197).wrapping_add(31) & 0xff) as u64
        })
        .unwrap();
        let bdd = BddSynthesizer::from_truth_table(&tt);
        assert!(
            bdd.node_count() > 50,
            "dense function should need many nodes"
        );
        assert!(
            bdd.node_count() < 600,
            "sharing should keep an 8x8 function under 600 nodes, got {}",
            bdd.node_count()
        );
        for i in 0..256 {
            assert_eq!(bdd.eval(i), tt.word(i));
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(TruthTable::from_words(2, 1, &[0, 1, 0]).is_err());
        assert!(TruthTable::from_words(2, 0, &[0; 4]).is_err());
        assert!(TruthTable::from_words(17, 1, &[]).is_err());
        assert!(TruthTable::from_words(2, 65, &[0; 4]).is_err());
        let tt = TruthTable::from_fn(3, 1, |i| (i & 1) as u64).unwrap();
        let bdd = BddSynthesizer::from_truth_table(&tt);
        let mut n = Netlist::new("t");
        let ins = n.input_bus("x", 2);
        assert!(bdd.emit(&mut n, &ins).is_err());
    }

    #[test]
    fn accessors_report_shape() {
        let tt = TruthTable::from_fn(3, 2, |i| i as u64 & 0b11).unwrap();
        assert_eq!(tt.n_inputs(), 3);
        assert_eq!(tt.n_outputs(), 2);
        let bdd = BddSynthesizer::from_truth_table(&tt);
        assert_eq!(bdd.n_inputs(), 3);
        assert_eq!(bdd.n_outputs(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_tables_roundtrip_through_bdd(
            words in proptest::collection::vec(0u64..16, 32..=32)
        ) {
            let tt = TruthTable::from_words(5, 4, &words).unwrap();
            let bdd = BddSynthesizer::from_truth_table(&tt);
            for i in 0..32 {
                prop_assert_eq!(bdd.eval(i), tt.word(i));
            }
        }

        #[test]
        fn random_tables_roundtrip_through_netlist(
            words in proptest::collection::vec(0u64..8, 16..=16)
        ) {
            let tt = TruthTable::from_words(4, 3, &words).unwrap();
            let mut netlist = Netlist::new("t");
            let inputs = netlist.input_bus("x", 4);
            let outputs = synthesize(&mut netlist, &inputs, &tt).unwrap();
            for idx in 0..16usize {
                let assignment: Vec<(NetId, bool)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| (n, idx >> i & 1 != 0))
                    .collect();
                let mut word = 0u64;
                for (bit, &o) in outputs.iter().enumerate() {
                    if eval_net(&netlist, o, &assignment) {
                        word |= 1 << bit;
                    }
                }
                prop_assert_eq!(word, tt.word(idx));
            }
        }
    }
}
