//! The gate vocabulary and its boolean semantics.
//!
//! The kinds mirror a minimal 180 nm standard-cell library: the basic
//! two-input gates, an inverter/buffer pair, a 2:1 mux (the synthesizer's
//! output vocabulary) and a D flip-flop. This is deliberately small — the
//! EM side channel cares about *switching events*, not about rich cell
//! variety.

/// A standard-cell kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellKind {
    /// Non-inverting buffer (also models clock-tree buffers).
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input NAND.
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `[d0, d1, sel]`, output `sel ? d1 : d0`.
    Mux2,
    /// Rising-edge D flip-flop; input is `[d]`, output is `q`.
    Dff,
    /// Pad/antenna driver: buffer semantics, but switching a large
    /// off-core load (bond pad, antenna wire). Orders of magnitude more
    /// charge per transition than a core cell — the kind Trojan T1's
    /// radio output stage is built from.
    PadDriver,
}

/// All cell kinds, in a stable order (useful for tabulating statistics).
pub const ALL_KINDS: [CellKind; 11] = [
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::Nand2,
    CellKind::Or2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Dff,
    CellKind::PadDriver,
];

impl CellKind {
    /// Number of input pins the kind requires.
    pub const fn arity(self) -> usize {
        match self {
            CellKind::Buf | CellKind::Inv | CellKind::Dff | CellKind::PadDriver => 1,
            CellKind::Mux2 => 3,
            _ => 2,
        }
    }

    /// Whether the cell is sequential (state-holding).
    pub const fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Combinational boolean function of the kind.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` or if called on a
    /// sequential kind ([`CellKind::Dff`] has no combinational function).
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_netlist::cell::CellKind;
    ///
    /// assert!(CellKind::Xor2.eval(&[true, false]));
    /// assert!(!CellKind::Xor2.eval(&[true, true]));
    /// assert!(CellKind::Mux2.eval(&[false, true, true])); // sel=1 picks d1
    /// ```
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "cell {self:?} takes {} inputs",
            self.arity()
        );
        match self {
            CellKind::Buf | CellKind::PadDriver => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Dff => panic!("Dff has no combinational function"),
        }
    }

    /// The library cell name, in the flavor of a 180 nm vendor kit.
    pub const fn library_name(self) -> &'static str {
        match self {
            CellKind::Buf => "BUFX2",
            CellKind::Inv => "INVX1",
            CellKind::And2 => "AND2X1",
            CellKind::Nand2 => "NAND2X1",
            CellKind::Or2 => "OR2X1",
            CellKind::Nor2 => "NOR2X1",
            CellKind::Xor2 => "XOR2X1",
            CellKind::Xnor2 => "XNOR2X1",
            CellKind::Mux2 => "MX2X1",
            CellKind::Dff => "DFFX1",
            CellKind::PadDriver => "PADDRVX8",
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.library_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        for kind in ALL_KINDS {
            if kind.is_sequential() {
                continue;
            }
            // eval must accept exactly `arity` inputs without panicking.
            let inputs = vec![false; kind.arity()];
            let _ = kind.eval(&inputs);
        }
    }

    #[test]
    fn exhaustive_two_input_truth_tables() {
        let cases = [
            (CellKind::And2, [false, false, false, true]),
            (CellKind::Nand2, [true, true, true, false]),
            (CellKind::Or2, [false, true, true, true]),
            (CellKind::Nor2, [true, false, false, false]),
            (CellKind::Xor2, [false, true, true, false]),
            (CellKind::Xnor2, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(&[a, b]), e, "{kind:?}({a},{b})");
            }
        }
    }

    #[test]
    fn inverter_and_buffer() {
        assert!(CellKind::Inv.eval(&[false]));
        assert!(!CellKind::Inv.eval(&[true]));
        assert!(CellKind::Buf.eval(&[true]));
        assert!(!CellKind::Buf.eval(&[false]));
    }

    #[test]
    fn mux_selects() {
        // inputs = [d0, d1, sel]
        assert!(!CellKind::Mux2.eval(&[false, true, false]));
        assert!(CellKind::Mux2.eval(&[false, true, true]));
        assert!(CellKind::Mux2.eval(&[true, false, false]));
        assert!(!CellKind::Mux2.eval(&[true, false, true]));
    }

    #[test]
    fn only_dff_is_sequential() {
        for kind in ALL_KINDS {
            assert_eq!(kind.is_sequential(), matches!(kind, CellKind::Dff));
        }
    }

    #[test]
    #[should_panic(expected = "no combinational function")]
    fn dff_eval_panics() {
        CellKind::Dff.eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn wrong_arity_panics() {
        CellKind::And2.eval(&[true]);
    }

    #[test]
    fn library_names_are_unique() {
        let mut names: Vec<&str> = ALL_KINDS.iter().map(|k| k.library_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_KINDS.len());
    }
}
