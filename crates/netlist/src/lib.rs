//! # emtrust-netlist
//!
//! Gate-level netlist substrate for the `emtrust` reproduction of
//! *"Runtime Trust Evaluation and Hardware Trojan Detection Using On-Chip
//! EM Sensors"* (DAC 2020).
//!
//! The paper's device under test is a synthesized 180 nm AES-128 netlist
//! carrying four hardware Trojans. This crate provides everything needed to
//! build and reason about such netlists without a vendor flow:
//!
//! - [`cell`] — the gate vocabulary ([`cell::CellKind`]) and its boolean
//!   semantics,
//! - [`library`] — a 180 nm-class electrical characterization (effective
//!   capacitance, leakage, area) per gate, consumed by the power model,
//! - [`graph`] — the [`graph::Netlist`] itself: nets, cells, ports, module
//!   tags, and a builder-style construction API,
//! - [`level`] — topological levelization (combinational depth per cell,
//!   cycle detection); the depth staggers switching times in the power
//!   model,
//! - [`stats`] — gate-count statistics per module (regenerates paper
//!   Table I),
//! - [`synth`] — a from-scratch combinational synthesizer (truth table →
//!   reduced ordered BDD → MUX2 netlist) used to emit the AES S-box,
//! - [`verilog`] — structural Verilog export of generated netlists.
//!
//! # Examples
//!
//! Build a tiny majority gate and count its cells:
//!
//! ```
//! use emtrust_netlist::graph::Netlist;
//! use emtrust_netlist::cell::CellKind;
//!
//! let mut n = Netlist::new("majority");
//! let a = n.input("a");
//! let b = n.input("b");
//! let c = n.input("c");
//! let ab = n.and2(a, b);
//! let bc = n.and2(b, c);
//! let ca = n.and2(c, a);
//! let t = n.or2(ab, bc);
//! let m = n.or2(t, ca);
//! n.mark_output("m", m);
//! assert_eq!(n.cell_count(), 5);
//! assert_eq!(n.count_kind(CellKind::And2), 3);
//! ```

pub mod cell;
pub mod graph;
pub mod level;
pub mod library;
pub mod stats;
pub mod synth;
pub mod verilog;

pub use cell::CellKind;
pub use graph::{CellId, ModuleId, NetId, Netlist};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analyzing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was given the wrong number of input nets.
    ArityMismatch {
        /// The gate kind.
        kind: CellKind,
        /// Inputs the kind requires.
        expected: usize,
        /// Inputs actually supplied.
        actual: usize,
    },
    /// A net id does not exist in this netlist.
    UnknownNet {
        /// The offending id (raw index).
        net: u32,
    },
    /// A net used as a cell input has no driver.
    UndrivenNet {
        /// The offending id (raw index).
        net: u32,
        /// Net name if one was assigned.
        name: Option<String>,
    },
    /// The combinational logic contains a cycle (levelization failed).
    CombinationalCycle {
        /// A cell known to participate in the cycle (raw index).
        cell: u32,
    },
    /// A truth table had an inconsistent or unsupported shape.
    BadTruthTable {
        /// Human-readable description of the violation.
        what: &'static str,
    },
    /// A module path or primary port name was reused.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                kind,
                expected,
                actual,
            } => write!(
                f,
                "gate {kind:?} takes {expected} inputs but {actual} were supplied"
            ),
            NetlistError::UnknownNet { net } => write!(f, "net #{net} does not exist"),
            NetlistError::UndrivenNet { net, name } => match name {
                Some(n) => write!(f, "net #{net} ({n}) has no driver"),
                None => write!(f, "net #{net} has no driver"),
            },
            NetlistError::CombinationalCycle { cell } => {
                write!(f, "combinational cycle through cell #{cell}")
            }
            NetlistError::BadTruthTable { what } => write!(f, "bad truth table: {what}"),
            NetlistError::DuplicateName { name } => {
                write!(f, "name {name:?} is already in use")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors = [
            NetlistError::ArityMismatch {
                kind: CellKind::And2,
                expected: 2,
                actual: 3,
            },
            NetlistError::UnknownNet { net: 7 },
            NetlistError::UndrivenNet {
                net: 3,
                name: Some("x".into()),
            },
            NetlistError::UndrivenNet { net: 3, name: None },
            NetlistError::CombinationalCycle { cell: 1 },
            NetlistError::BadTruthTable { what: "empty" },
            NetlistError::DuplicateName { name: "clk".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
