//! Topological levelization of the combinational logic.
//!
//! Two consumers rely on levels:
//!
//! - the cycle-based simulator evaluates cells in level order (one pass per
//!   clock cycle),
//! - the power model staggers switching times by depth: a cell at level `d`
//!   switches at `t ≈ t_clk + d·τ_gate`, which gives the aggregate current
//!   waveform its realistic within-cycle profile — and that profile is what
//!   the EM detectors observe.
//!
//! Flip-flop outputs, primary inputs and constants are level-0 sources;
//! each combinational cell sits one past its deepest input.

use crate::graph::{CellId, NetId, NetSource, Netlist};
use crate::NetlistError;

/// Result of levelizing a netlist.
#[derive(Debug, Clone)]
pub struct Levels {
    /// Level of each cell, indexed by [`CellId::index`]. Flip-flops are
    /// level 0.
    cell_levels: Vec<u32>,
    /// Combinational cells in evaluation (topological) order.
    order: Vec<CellId>,
    /// Maximum level of any cell.
    max_level: u32,
}

impl Levels {
    /// Level of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn level_of(&self, cell: CellId) -> u32 {
        self.cell_levels[cell.index()]
    }

    /// Combinational cells in a valid evaluation order (flip-flops
    /// excluded).
    pub fn eval_order(&self) -> &[CellId] {
        &self.order
    }

    /// The critical combinational depth.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Per-cell levels, indexed by [`CellId::index`].
    pub fn cell_levels(&self) -> &[u32] {
        &self.cell_levels
    }
}

/// Levelizes `netlist`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if combinational logic
/// feeds back on itself without passing through a flip-flop.
pub fn levelize(netlist: &Netlist) -> Result<Levels, NetlistError> {
    let n_cells = netlist.cell_count();
    let mut cell_levels = vec![0u32; n_cells];
    // Kahn's algorithm over combinational cells only.
    let mut indegree = vec![0u32; n_cells];
    // fanout[c] = combinational cells that read c's output.
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n_cells];

    let level_of_net = |net: NetId, levels: &[u32], nl: &Netlist| -> u32 {
        match nl.net_source(net) {
            NetSource::Cell(c) => {
                if nl.cell(*c).kind().is_sequential() {
                    0
                } else {
                    levels[c.index()] + 1
                }
            }
            _ => 0,
        }
    };

    for (id, cell) in netlist.cells() {
        if cell.kind().is_sequential() {
            continue;
        }
        for &input in cell.inputs() {
            if let NetSource::Cell(src) = netlist.net_source(input) {
                if !netlist.cell(*src).kind().is_sequential() {
                    indegree[id.index()] += 1;
                    fanout[src.index()].push(id.0);
                }
            }
        }
    }

    let mut queue: Vec<CellId> = netlist
        .cells()
        .filter(|(id, c)| !c.kind().is_sequential() && indegree[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut order = Vec::with_capacity(n_cells);
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        let cell = netlist.cell(id);
        let lvl = cell
            .inputs()
            .iter()
            .map(|&i| level_of_net(i, &cell_levels, netlist))
            .max()
            .unwrap_or(0);
        cell_levels[id.index()] = lvl;
        order.push(id);
        for &f in &fanout[id.index()] {
            indegree[f as usize] -= 1;
            if indegree[f as usize] == 0 {
                queue.push(CellId(f));
            }
        }
    }

    let combinational_total = netlist
        .cells()
        .filter(|(_, c)| !c.kind().is_sequential())
        .count();
    if order.len() != combinational_total {
        // Some combinational cell never reached indegree 0: a cycle.
        let stuck = netlist
            .cells()
            .find(|(id, c)| !c.kind().is_sequential() && indegree[id.index()] > 0)
            .map(|(id, _)| id.0)
            .unwrap_or(0);
        return Err(NetlistError::CombinationalCycle { cell: stuck });
    }

    let max_level = cell_levels.iter().copied().max().unwrap_or(0);
    Ok(Levels {
        cell_levels,
        order,
        max_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    #[test]
    fn chain_has_increasing_levels() {
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let x1 = n.not(a);
        let x2 = n.not(x1);
        let x3 = n.not(x2);
        n.mark_output("y", x3);
        let levels = levelize(&n).unwrap();
        assert_eq!(levels.max_level(), 2);
        let order = levels.eval_order();
        assert_eq!(order.len(), 3);
        // Evaluation order must respect dependencies.
        let pos = |c: CellId| order.iter().position(|&x| x == c).unwrap();
        assert!(pos(order[0]) < pos(order[2]));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut n = Netlist::new("toggle");
        let (q, d) = n.dff_deferred();
        let nq = n.not(q);
        n.connect_dff_d(d, nq);
        let levels = levelize(&n).unwrap();
        // The inverter reads a flop output → level 0.
        assert_eq!(levels.max_level(), 0);
        assert_eq!(levels.eval_order().len(), 1);
    }

    #[test]
    fn pure_combinational_cycle_is_detected() {
        // Build not(not(x)) and then rewire the first inverter's input to
        // the second inverter's output: a two-gate combinational loop.
        let mut n = Netlist::new("loop");
        let a = n.input("a");
        let x1 = n.not(a);
        let x2 = n.not(x1);
        let first_inv = match n.net_source(x1) {
            crate::graph::NetSource::Cell(c) => *c,
            _ => unreachable!(),
        };
        n.rewire_input(first_inv, 0, x2).unwrap();
        assert!(matches!(
            levelize(&n),
            Err(NetlistError::CombinationalCycle { .. })
        ));
        assert!(n.validate().is_err());
    }

    #[test]
    fn empty_netlist_levelizes() {
        let n = Netlist::new("empty");
        let levels = levelize(&n).unwrap();
        assert_eq!(levels.max_level(), 0);
        assert!(levels.eval_order().is_empty());
    }

    #[test]
    fn diamond_levels() {
        let mut n = Netlist::new("diamond");
        let a = n.input("a");
        let l = n.not(a);
        let r = n.buf(a);
        let j = n.and2(l, r);
        n.mark_output("j", j);
        let levels = levelize(&n).unwrap();
        let join_cell = match n.net_source(j) {
            crate::graph::NetSource::Cell(c) => *c,
            _ => unreachable!(),
        };
        assert_eq!(levels.level_of(join_cell), 1);
        assert_eq!(levels.max_level(), 1);
    }

    #[test]
    fn levels_vector_matches_cell_count() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.not(a);
        let _ = n.dff(b);
        let levels = levelize(&n).unwrap();
        assert_eq!(levels.cell_levels().len(), 2);
    }
}
