//! Span profiling: folds the registry's dot-joined span distributions
//! into an accumulated call tree with self/total time and call counts,
//! plus a flamegraph-compatible folded-stacks text sink.
//!
//! `collect.measure.emf`-style paths become a trie; each node's *total*
//! time is the sum its span guard recorded, and its *self* time is the
//! total minus the totals of its direct children (clamped at zero —
//! concurrent child spans on pool workers can legitimately exceed the
//! parent's wall time). Hot-spot analysis that used to mean spelunking
//! JSONL span events is one [`SpanProfile::from_snapshot`] call.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// One node of the accumulated span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Leaf name of this span (`emf` in `collect.measure.emf`).
    pub name: String,
    /// Full dot-joined path.
    pub path: String,
    /// Times this span completed (0 for purely structural nodes that
    /// only appear as a prefix of deeper paths).
    pub count: u64,
    /// Total nanoseconds recorded under this path.
    pub total_ns: f64,
    /// Nanoseconds not attributed to any child span (≥ 0).
    pub self_ns: f64,
    /// Child spans, ordered by name.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &str, path: String) -> Self {
        Self {
            name: name.to_string(),
            path,
            count: 0,
            total_ns: 0.0,
            self_ns: 0.0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut SpanNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        let path = if self.path.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.path)
        };
        self.children.push(SpanNode::new(name, path));
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        let i = self
            .children
            .iter()
            .position(|c| c.name == name)
            .unwrap_or(0);
        &mut self.children[i]
    }

    fn finalize(&mut self) {
        // Bottom-up: children must finalize first so structural nodes
        // (prefixes that never completed as spans themselves) roll up
        // fully-computed child totals.
        for c in &mut self.children {
            c.finalize();
        }
        let child_total: f64 = self.children.iter().map(|c| c.total_ns).sum();
        if self.count == 0 && self.total_ns == 0.0 {
            // Structural node: inherits its children's time, self stays 0.
            self.total_ns = child_total;
        }
        self.self_ns = (self.total_ns - child_total).max(0.0);
    }
}

/// The accumulated span-tree profile of one [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanProfile {
    roots: Vec<SpanNode>,
}

impl SpanProfile {
    /// Builds the profile from a snapshot's span distributions.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut virtual_root = SpanNode::new("", String::new());
        for (path, h) in &snapshot.spans {
            let mut node = &mut virtual_root;
            for part in path.split('.') {
                node = node.child_mut(part);
            }
            node.count += h.count;
            node.total_ns += h.sum;
        }
        virtual_root.finalize();
        Self {
            roots: virtual_root.children,
        }
    }

    /// Top-level spans (each thread's outermost guards), ordered by name.
    pub fn roots(&self) -> &[SpanNode] {
        &self.roots
    }

    /// Every node in the tree, depth-first.
    pub fn nodes(&self) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        let mut stack: Vec<&SpanNode> = self.roots.iter().rev().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(n.children.iter().rev());
        }
        out
    }

    /// The `n` nodes with the largest self time, descending.
    pub fn hottest(&self, n: usize) -> Vec<&SpanNode> {
        let mut nodes = self.nodes();
        nodes.sort_by(|a, b| {
            b.self_ns
                .partial_cmp(&a.self_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        nodes.truncate(n);
        nodes
    }

    /// The node at a dot-joined `path`, if present.
    pub fn node(&self, path: &str) -> Option<&SpanNode> {
        self.nodes().into_iter().find(|n| n.path == path)
    }

    /// Flamegraph-compatible folded stacks: one
    /// `root;child;leaf <self_ns>` line per node with nonzero self
    /// time, semicolon-joined, ready for `flamegraph.pl` /
    /// `inferno-flamegraph`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for node in self.nodes() {
            if node.self_ns <= 0.0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{} {}",
                node.path.replace('.', ";"),
                node.self_ns.round() as u64
            );
        }
        out
    }

    /// A human-readable indented rendering (name, calls, total, self).
    pub fn render(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, out: &mut String) {
            let _ = writeln!(
                out,
                "{:indent$}{} calls={} total={:.0}ns self={:.0}ns",
                "",
                node.name,
                node.count,
                node.total_ns,
                node.self_ns,
                indent = depth * 2
            );
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// `(p50, p95, p99)` duration quantiles of the span distribution at
    /// `path`, straight from the snapshot's bucket counts.
    pub fn quantiles(snapshot: &Snapshot, path: &str) -> Option<(f64, f64, f64)> {
        let h = snapshot.spans.get(path)?;
        Some((h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::registry::InMemoryRecorder;

    fn snapshot() -> Snapshot {
        let r = InMemoryRecorder::new();
        r.span_complete("collect", 0, 1000);
        r.span_complete("collect.measure", 0, 600);
        r.span_complete("collect.measure.emf", 0, 250);
        r.span_complete("collect.measure.emf", 0, 150);
        r.span_complete("fit", 0, 300);
        r.snapshot()
    }

    #[test]
    fn tree_attributes_self_time_to_parents() {
        let p = SpanProfile::from_snapshot(&snapshot());
        assert_eq!(p.roots().len(), 2);
        let collect = p.node("collect").expect("collect");
        assert_eq!(collect.count, 1);
        assert_eq!(collect.total_ns, 1000.0);
        assert_eq!(collect.self_ns, 400.0);
        let measure = p.node("collect.measure").expect("measure");
        assert_eq!(measure.self_ns, 200.0);
        let emf = p.node("collect.measure.emf").expect("emf");
        assert_eq!(emf.count, 2);
        assert_eq!(emf.self_ns, 400.0);
        let fit = p.node("fit").expect("fit");
        assert_eq!(fit.self_ns, 300.0);
    }

    #[test]
    fn missing_parent_paths_become_structural_nodes() {
        let r = InMemoryRecorder::new();
        // A worker-side span whose parent guard never completed on this
        // registry: the prefix exists only structurally.
        r.span_complete("pool.worker.chunk", 0, 500);
        let p = SpanProfile::from_snapshot(&r.snapshot());
        let pool = p.node("pool").expect("pool");
        assert_eq!(pool.count, 0);
        assert_eq!(pool.total_ns, 500.0);
        assert_eq!(pool.self_ns, 0.0);
        assert_eq!(p.node("pool.worker.chunk").expect("leaf").self_ns, 500.0);
    }

    #[test]
    fn concurrent_children_exceeding_parent_clamp_self_to_zero() {
        let r = InMemoryRecorder::new();
        r.span_complete("batch", 0, 100);
        // Two workers each recorded 80ns under the batch: child total
        // (160) exceeds the parent's wall time.
        r.span_complete("batch.worker", 0, 80);
        r.span_complete("batch.worker", 0, 80);
        let p = SpanProfile::from_snapshot(&r.snapshot());
        assert_eq!(p.node("batch").expect("batch").self_ns, 0.0);
    }

    #[test]
    fn folded_stacks_are_flamegraph_compatible() {
        let p = SpanProfile::from_snapshot(&snapshot());
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"collect 400"));
        assert!(lines.contains(&"collect;measure 200"));
        assert!(lines.contains(&"collect;measure;emf 400"));
        assert!(lines.contains(&"fit 300"));
        // Every line is `stack space integer`.
        for l in &lines {
            let (stack, n) = l.rsplit_once(' ').expect("two fields");
            assert!(!stack.is_empty());
            assert!(n.parse::<u64>().is_ok(), "bad count in {l}");
        }
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn hottest_ranks_by_self_time() {
        let p = SpanProfile::from_snapshot(&snapshot());
        let hot = p.hottest(2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].self_ns >= hot[1].self_ns);
        assert_eq!(hot[0].self_ns, 400.0);
    }

    #[test]
    fn render_indents_by_depth() {
        let p = SpanProfile::from_snapshot(&snapshot());
        let text = p.render();
        assert!(text.contains("collect calls=1"));
        assert!(text.contains("\n  measure calls=1"));
        assert!(text.contains("\n    emf calls=2"));
    }
}
