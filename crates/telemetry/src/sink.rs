//! Export sinks: Prometheus text exposition and JSONL event export.
//!
//! Both sinks render from point-in-time copies ([`Snapshot`] /
//! [`Event`]s), so exporting never blocks the pipeline.

use crate::labels::{escape_help_text, LabelSet};
use crate::recorder::FieldValue;
use crate::registry::{Event, HistogramSnapshot, Snapshot};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_]`, prefixed with `emtrust_`).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("emtrust_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` for JSON (`NaN`/`±∞` become `null`).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes the `# HELP` / `# TYPE` header for a family exactly once —
/// distinct dotted names can mangle to the same exposition name, and
/// plain + labeled series of one family share a single header.
fn family_header(out: &mut String, typed: &mut BTreeSet<String>, n: &str, name: &str, kind: &str) {
    if typed.insert(n.to_string()) {
        let _ = writeln!(out, "# HELP {n} emtrust metric {}", escape_help_text(name));
        let _ = writeln!(out, "# TYPE {n} {kind}");
    }
}

/// Writes one histogram's `_bucket`/`+Inf`/`_sum`/`_count` series, with
/// optional label pairs merged ahead of `le`.
fn write_histogram(out: &mut String, n: &str, labels: &LabelSet, h: &HistogramSnapshot) {
    let rendered = labels.render();
    let lead = if rendered.is_empty() {
        String::new()
    } else {
        format!("{rendered},")
    };
    let braced = if rendered.is_empty() {
        String::new()
    } else {
        format!("{{{rendered}}}")
    };
    let mut cumulative = 0u64;
    for (le, count) in &h.buckets {
        cumulative += count;
        let _ = writeln!(out, "{n}_bucket{{{lead}le=\"{le:e}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{n}_bucket{{{lead}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{n}_sum{braced} {}", h.sum);
    let _ = writeln!(out, "{n}_count{braced} {}", h.count);
}

/// Writes the p50/p95/p99 quantile snapshot of one histogram as a
/// `quantile`-labeled gauge family `{n}_quantile`.
fn write_quantiles(
    out: &mut String,
    typed: &mut BTreeSet<String>,
    n: &str,
    name: &str,
    labels: &LabelSet,
    h: &HistogramSnapshot,
) {
    if h.count == 0 {
        return;
    }
    let qn = format!("{n}_quantile");
    family_header(out, typed, &qn, name, "gauge");
    for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        let series = labels.with("quantile", label);
        let _ = writeln!(out, "{qn}{{{}}} {}", series.render(), h.quantile(q));
    }
}

/// Renders a [`Snapshot`] in the Prometheus text exposition format:
/// counters and gauges (plain and labeled series share one family
/// header), histograms with cumulative `le` buckets plus `_sum` /
/// `_count` and a p50/p95/p99 `_quantile` gauge family, and span
/// distributions as `…_span_ns` histograms. `# TYPE` is emitted once
/// per family, label values and help text are escaped per the text
/// format spec, and the output always ends with a newline.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed = BTreeSet::new();

    let counter_names: BTreeSet<&String> = snapshot
        .counters
        .keys()
        .chain(snapshot.labeled_counters.keys())
        .collect();
    for name in counter_names {
        let n = prometheus_name(name);
        family_header(&mut out, &mut typed, &n, name, "counter");
        if let Some(value) = snapshot.counters.get(name) {
            let _ = writeln!(out, "{n} {value}");
        }
        for (labels, value) in snapshot.labeled_counters.get(name).into_iter().flatten() {
            let _ = writeln!(out, "{n}{{{}}} {value}", labels.render());
        }
    }

    let gauge_names: BTreeSet<&String> = snapshot
        .gauges
        .keys()
        .chain(snapshot.labeled_gauges.keys())
        .collect();
    for name in gauge_names {
        let n = prometheus_name(name);
        family_header(&mut out, &mut typed, &n, name, "gauge");
        if let Some(value) = snapshot.gauges.get(name) {
            let _ = writeln!(out, "{n} {value}");
        }
        for (labels, value) in snapshot.labeled_gauges.get(name).into_iter().flatten() {
            let _ = writeln!(out, "{n}{{{}}} {value}", labels.render());
        }
    }

    let histogram_names: BTreeSet<&String> = snapshot
        .histograms
        .keys()
        .chain(snapshot.labeled_histograms.keys())
        .collect();
    let empty = LabelSet::new();
    for name in histogram_names {
        let n = prometheus_name(name);
        family_header(&mut out, &mut typed, &n, name, "histogram");
        if let Some(h) = snapshot.histograms.get(name) {
            write_histogram(&mut out, &n, &empty, h);
            write_quantiles(&mut out, &mut typed, &n, name, &empty, h);
        }
        for (labels, h) in snapshot.labeled_histograms.get(name).into_iter().flatten() {
            write_histogram(&mut out, &n, labels, h);
            write_quantiles(&mut out, &mut typed, &n, name, labels, h);
        }
    }

    for (name, h) in &snapshot.spans {
        let qualified = format!("span_ns_{name}");
        let n = prometheus_name(&qualified);
        family_header(&mut out, &mut typed, &n, &qualified, "histogram");
        write_histogram(&mut out, &n, &empty, h);
        write_quantiles(&mut out, &mut typed, &n, &qualified, &empty, h);
    }

    // Registry self-observability: bounded-buffer drop counts.
    for (name, value) in [
        ("telemetry.series_overflowed", snapshot.series_overflowed),
        ("telemetry.events_dropped", snapshot.events_dropped),
        ("telemetry.decisions_dropped", snapshot.decisions_dropped),
    ] {
        let n = prometheus_name(name);
        family_header(&mut out, &mut typed, &n, name, "counter");
        let _ = writeln!(out, "{n} {value}");
    }

    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

fn field_json(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(u) => u.to_string(),
        FieldValue::F64(f) => json_number(*f),
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn event_json(event: &Event) -> String {
    let mut out = format!(
        "{{\"ts_ns\":{},\"kind\":\"{}\"",
        event.ts_ns,
        json_escape(&event.kind)
    );
    for (k, v) in &event.fields {
        let _ = write!(out, ",\"{}\":{}", json_escape(k), field_json(v));
    }
    out.push('}');
    out
}

/// Renders an event log as a JSONL document (one event per line).
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::registry::InMemoryRecorder;

    #[test]
    fn prometheus_text_contains_all_metric_kinds() {
        let r = InMemoryRecorder::new();
        r.counter("monitor.traces", 7);
        r.gauge("fingerprint.threshold", 0.0151);
        r.observe("monitor.distance", 0.08);
        r.span_complete("collect.measure", 0, 1500);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE emtrust_monitor_traces counter"));
        assert!(text.contains("emtrust_monitor_traces 7"));
        assert!(text.contains("# TYPE emtrust_fingerprint_threshold gauge"));
        assert!(text.contains("# TYPE emtrust_monitor_distance histogram"));
        assert!(text.contains("emtrust_monitor_distance_count 1"));
        assert!(text.contains("emtrust_span_ns_collect_measure_sum 1500"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("# HELP emtrust_monitor_traces emtrust metric monitor.traces"));
        assert!(text.contains("emtrust_monitor_distance_quantile{quantile=\"0.99\"}"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn type_lines_are_emitted_once_per_family() {
        let r = InMemoryRecorder::new();
        // Distinct dotted names that mangle to the same exposition name.
        r.counter("monitor.traces", 1);
        r.counter("monitor_traces", 2);
        // Plain + labeled series of one family.
        r.counter_with(
            "monitor.traces",
            &LabelSet::from_pairs([("chip_id", "c0")]),
            3,
        );
        let text = prometheus_text(&r.snapshot());
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE emtrust_monitor_traces "))
            .count();
        assert_eq!(type_lines, 1, "{text}");
        assert!(text.contains("emtrust_monitor_traces{chip_id=\"c0\"} 3"));
    }

    #[test]
    fn labeled_histograms_expose_buckets_sums_and_quantiles() {
        let r = InMemoryRecorder::new();
        let tile = LabelSet::from_pairs([("tile", "r0c1")]);
        for v in [1.0, 3.0, 200.0] {
            r.observe_with("tile.margin", &tile, v);
        }
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("emtrust_tile_margin_bucket{tile=\"r0c1\",le=\"+Inf\"} 3"));
        assert!(text.contains("emtrust_tile_margin_sum{tile=\"r0c1\"} 204"));
        assert!(text.contains("emtrust_tile_margin_count{tile=\"r0c1\"} 3"));
        assert!(text.contains("emtrust_tile_margin_quantile{quantile=\"0.5\",tile=\"r0c1\"}"));
        // Cumulative bucket counts are monotone.
        let cum: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("emtrust_tile_margin_bucket"))
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .collect();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "{cum:?}");
    }

    #[test]
    fn label_values_and_help_text_are_escaped() {
        let r = InMemoryRecorder::new();
        r.counter("weird\nname", 1);
        r.counter_with(
            "fleet.traces",
            &LabelSet::from_pairs([("path", "a\"b\\c\nd")]),
            1,
        );
        let text = prometheus_text(&r.snapshot());
        // The mangled name sanitizes the newline; help text escapes it.
        assert!(text.contains("# HELP emtrust_weird_name emtrust metric weird\\nname"));
        assert!(text.contains("{path=\"a\\\"b\\\\c\\nd\"} 1"));
        // The hostile label value stays on exactly one exposition line.
        assert_eq!(text.lines().filter(|l| l.contains("path=")).count(), 1);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_line() {
        let r = InMemoryRecorder::new();
        r.event(
            "alarm",
            &[
                ("correlation_id", FieldValue::U64(3)),
                ("distance", FieldValue::F64(0.5)),
                ("kind", FieldValue::Str("time\"domain".into())),
            ],
        );
        let jsonl = events_jsonl(&r.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"correlation_id\":3"));
        assert!(lines[0].contains("\\\"domain"));
    }

    #[test]
    fn json_helpers_handle_edge_cases() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.5");
    }
}
