//! Export sinks: Prometheus text exposition and JSONL event export.
//!
//! Both sinks render from point-in-time copies ([`Snapshot`] /
//! [`Event`]s), so exporting never blocks the pipeline.

use crate::recorder::FieldValue;
use crate::registry::{Event, Snapshot};
use std::fmt::Write as _;

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_]`, prefixed with `emtrust_`).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("emtrust_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` for JSON (`NaN`/`±∞` become `null`).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a [`Snapshot`] in the Prometheus text exposition format
/// (counters, gauges, and histograms with cumulative `le` buckets;
/// span distributions appear as `…_span_ns` histograms).
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
    }
    for (prefix, map) in [("", &snapshot.histograms), ("span_ns_", &snapshot.spans)] {
        for (name, h) in map {
            let n = prometheus_name(&format!("{prefix}{name}"));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (le, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{le:e}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
    }
    out
}

fn field_json(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(u) => u.to_string(),
        FieldValue::F64(f) => json_number(*f),
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn event_json(event: &Event) -> String {
    let mut out = format!(
        "{{\"ts_ns\":{},\"kind\":\"{}\"",
        event.ts_ns,
        json_escape(&event.kind)
    );
    for (k, v) in &event.fields {
        let _ = write!(out, ",\"{}\":{}", json_escape(k), field_json(v));
    }
    out.push('}');
    out
}

/// Renders an event log as a JSONL document (one event per line).
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::registry::InMemoryRecorder;

    #[test]
    fn prometheus_text_contains_all_metric_kinds() {
        let r = InMemoryRecorder::new();
        r.counter("monitor.traces", 7);
        r.gauge("fingerprint.threshold", 0.0151);
        r.observe("monitor.distance", 0.08);
        r.span_complete("collect.measure", 0, 1500);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE emtrust_monitor_traces counter"));
        assert!(text.contains("emtrust_monitor_traces 7"));
        assert!(text.contains("# TYPE emtrust_fingerprint_threshold gauge"));
        assert!(text.contains("# TYPE emtrust_monitor_distance histogram"));
        assert!(text.contains("emtrust_monitor_distance_count 1"));
        assert!(text.contains("emtrust_span_ns_collect_measure_sum 1500"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_line() {
        let r = InMemoryRecorder::new();
        r.event(
            "alarm",
            &[
                ("correlation_id", FieldValue::U64(3)),
                ("distance", FieldValue::F64(0.5)),
                ("kind", FieldValue::Str("time\"domain".into())),
            ],
        );
        let jsonl = events_jsonl(&r.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"correlation_id\":3"));
        assert!(lines[0].contains("\\\"domain"));
    }

    #[test]
    fn json_helpers_handle_edge_cases() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.5");
    }
}
