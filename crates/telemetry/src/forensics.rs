//! Decision forensics: one structured record per scored observation,
//! plus the alarm flight recorder that freezes a pre/post window of
//! records around every alarm.
//!
//! The pipeline emits a [`DecisionRecord`] for every trace or window it
//! scores (and every one it rejects), capturing the sanitizer verdict,
//! each detector's statistic / threshold / margin, the fused outcome,
//! the health state (and any transition the observation caused), and —
//! when a sensor array is active — per-tile margins. Records serialize
//! to JSONL through the same hand-rolled JSON helpers as the event sink,
//! so a fleet operator can replay exactly what the monitor saw.
//!
//! The [`FlightRecorder`] keeps a bounded ring of recent records; when a
//! record carries an alarm correlation id it freezes the ring (the
//! *pre*-trigger context), then keeps appending until the configured
//! *post*-trigger depth is reached, yielding a [`FlightWindow`] linked to
//! the alarm by correlation id.

use crate::labels::LabelSet;
use crate::ring::RingBuffer;
use crate::sink::{json_escape, json_number};
use std::fmt::Write as _;

/// One detector's contribution to a decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorDecision {
    /// Detector name (`euclidean`, `spectral_window`, …).
    pub detector: String,
    /// The scored statistic (distance, anomaly count, …).
    pub statistic: f64,
    /// The threshold the statistic was compared against.
    pub threshold: f64,
    /// Relative margin `(statistic − threshold) / |threshold|` (the raw
    /// statistic when the threshold is 0, matching the array heat-map
    /// convention); positive means the detector fired, negative is
    /// clean headroom.
    pub margin: f64,
    /// Whether this detector voted "Trojan".
    pub suspected: bool,
}

impl DetectorDecision {
    /// Builds a decision, deriving the relative margin from the
    /// statistic and threshold (the raw statistic when the threshold is
    /// 0 — a count-style detector like the spectral window scorer fires
    /// on any nonzero statistic).
    pub fn new(
        detector: impl Into<String>,
        statistic: f64,
        threshold: f64,
        suspected: bool,
    ) -> Self {
        let margin = if threshold.abs() > f64::EPSILON {
            (statistic - threshold) / threshold.abs()
        } else {
            statistic
        };
        Self {
            detector: detector.into(),
            statistic,
            threshold,
            margin,
            suspected,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"detector\":\"{}\",\"statistic\":{},\"threshold\":{},\"margin\":{},\"suspected\":{}}}",
            json_escape(&self.detector),
            json_number(self.statistic),
            json_number(self.threshold),
            json_number(self.margin),
            self.suspected
        )
    }
}

/// One array tile's margin for an array-level decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TileMargin {
    /// Tile row in the array grid.
    pub row: usize,
    /// Tile column in the array grid.
    pub col: usize,
    /// Mean relative alarm margin over the campaign (0 = silent).
    pub margin: f64,
    /// Fraction of suspect traces that alarmed on this tile.
    pub alarm_rate: f64,
}

impl TileMargin {
    fn to_json(&self) -> String {
        format!(
            "{{\"row\":{},\"col\":{},\"margin\":{},\"alarm_rate\":{}}}",
            self.row,
            self.col,
            json_number(self.margin),
            json_number(self.alarm_rate)
        )
    }
}

/// A cheap O(n) summary of the observation's feature samples — enough
/// to eyeball what the sensor saw without storing the raw trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameDigest {
    /// Number of samples summarized.
    pub samples: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Root-mean-square of the samples.
    pub rms: f64,
    /// Largest absolute sample.
    pub peak: f64,
}

impl FrameDigest {
    /// Summarizes a sample slice (all-zero digest for an empty slice).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                samples: 0,
                mean: 0.0,
                rms: 0.0,
                peak: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut peak = 0.0f64;
        for &s in samples {
            sum += s;
            sum_sq += s * s;
            peak = peak.max(s.abs());
        }
        Self {
            samples: samples.len() as u64,
            mean: sum / n,
            rms: (sum_sq / n).sqrt(),
            peak,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"samples\":{},\"mean\":{},\"rms\":{},\"peak\":{}}}",
            self.samples,
            json_number(self.mean),
            json_number(self.rms),
            json_number(self.peak)
        )
    }
}

/// One explainable verdict: everything the pipeline knew when it scored
/// (or rejected) a single observation.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Observation domain: `trace`, `window` or `array`.
    pub domain: String,
    /// Monotonic observation index within its domain, when known.
    pub index: Option<u64>,
    /// Sanitizer verdict label: `clean`, `degraded` or `rejected`.
    pub verdict: String,
    /// Sanitizer rejection reason, for rejected observations.
    pub reject_reason: Option<String>,
    /// Labels identifying the emitting pipeline (`chip_id`, `tile`, …).
    pub labels: LabelSet,
    /// Per-detector statistics, thresholds and margins.
    pub detectors: Vec<DetectorDecision>,
    /// Whether fusion raised an alarm on this observation.
    pub fused_alarm: bool,
    /// The alarm's correlation id, when one was raised.
    pub correlation_id: Option<u64>,
    /// Sensor-health state after this observation was absorbed.
    pub health: String,
    /// `(from, to)` health transition this observation caused, if any.
    pub health_transition: Option<(String, String)>,
    /// Calibration state of a self-calibrating pipeline when this
    /// observation settled (`calibrating` or `armed`); `None` for
    /// golden-fitted pipelines, keeping their records byte-identical.
    pub calibration: Option<String>,
    /// Per-tile margins, for array-level decisions.
    pub tiles: Vec<TileMargin>,
    /// Digest of the feature samples the detectors scored.
    pub digest: Option<FrameDigest>,
}

impl DecisionRecord {
    /// A record skeleton for `domain` with a clean verdict and no
    /// detector evidence; construction sites fill in the rest.
    pub fn new(domain: impl Into<String>) -> Self {
        Self {
            domain: domain.into(),
            index: None,
            verdict: "clean".to_string(),
            reject_reason: None,
            labels: LabelSet::new(),
            detectors: Vec::new(),
            fused_alarm: false,
            correlation_id: None,
            health: "healthy".to_string(),
            health_transition: None,
            calibration: None,
            tiles: Vec::new(),
            digest: None,
        }
    }

    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"domain\":\"{}\",\"verdict\":\"{}\"",
            json_escape(&self.domain),
            json_escape(&self.verdict)
        );
        if let Some(i) = self.index {
            let _ = write!(out, ",\"index\":{i}");
        }
        if let Some(r) = &self.reject_reason {
            let _ = write!(out, ",\"reject_reason\":\"{}\"", json_escape(r));
        }
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in self.labels.pairs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
        }
        out.push_str(",\"detectors\":[");
        for (i, d) in self.detectors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        let _ = write!(out, ",\"fused_alarm\":{}", self.fused_alarm);
        if let Some(cid) = self.correlation_id {
            let _ = write!(out, ",\"correlation_id\":{cid}");
        }
        let _ = write!(out, ",\"health\":\"{}\"", json_escape(&self.health));
        if let Some((from, to)) = &self.health_transition {
            let _ = write!(
                out,
                ",\"health_transition\":{{\"from\":\"{}\",\"to\":\"{}\"}}",
                json_escape(from),
                json_escape(to)
            );
        }
        if let Some(c) = &self.calibration {
            let _ = write!(out, ",\"calibration\":\"{}\"", json_escape(c));
        }
        if !self.tiles.is_empty() {
            out.push_str(",\"tiles\":[");
            for (i, t) in self.tiles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_json());
            }
            out.push(']');
        }
        if let Some(d) = &self.digest {
            let _ = write!(out, ",\"digest\":{}", d.to_json());
        }
        out.push('}');
        out
    }
}

/// Renders a decision log as a JSONL document (one record per line,
/// trailing newline when non-empty).
pub fn decisions_jsonl(records: &[DecisionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Flight-recorder geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorderConfig {
    /// Records kept *before* a trigger (the frozen pre-context).
    pub pre: usize,
    /// Records captured *after* a trigger before the window seals.
    pub post: usize,
    /// Bound on sealed windows kept; further triggers are counted but
    /// dropped.
    pub max_windows: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        Self {
            pre: 8,
            post: 4,
            max_windows: 16,
        }
    }
}

/// Forensics configuration for a detection pipeline: flight-recorder
/// geometry plus the bound on the pipeline's own decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsConfig {
    /// Flight-recorder pre/post/window geometry.
    pub flight: FlightRecorderConfig,
    /// Bound on decision records the pipeline retains (drop-new).
    pub max_decisions: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        Self {
            flight: FlightRecorderConfig::default(),
            max_decisions: 4096,
        }
    }
}

/// A sealed pre/post window around one alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightWindow {
    /// The alarm's correlation id (links to the pipeline's alarm log).
    pub correlation_id: u64,
    /// Records in observation order: pre-context, the trigger, then
    /// post-context.
    pub records: Vec<DecisionRecord>,
    /// Index of the triggering record within `records`.
    pub trigger: usize,
}

impl FlightWindow {
    /// The triggering record, if the window is well-formed.
    pub fn trigger_record(&self) -> Option<&DecisionRecord> {
        self.records.get(self.trigger)
    }
}

struct PendingWindow {
    correlation_id: u64,
    records: Vec<DecisionRecord>,
    trigger: usize,
    remaining_post: usize,
}

/// Bounded pre/post-trigger capture of [`DecisionRecord`]s around each
/// alarm.
pub struct FlightRecorder {
    config: FlightRecorderConfig,
    ring: RingBuffer<DecisionRecord>,
    pending: Vec<PendingWindow>,
    windows: Vec<FlightWindow>,
    windows_dropped: u64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("ring_len", &self.ring.len())
            .field("pending", &self.pending.len())
            .field("windows", &self.windows.len())
            .field("windows_dropped", &self.windows_dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the given geometry.
    pub fn new(config: FlightRecorderConfig) -> Self {
        let ring = RingBuffer::new(config.pre.max(1));
        Self {
            config,
            ring,
            pending: Vec::new(),
            windows: Vec::new(),
            windows_dropped: 0,
        }
    }

    /// Feeds one record through the recorder. Opens a window when the
    /// record carries an alarm correlation id; extends and seals any
    /// windows still collecting post-trigger context.
    pub fn record(&mut self, record: &DecisionRecord) {
        // Extend windows opened by earlier triggers.
        let mut i = 0;
        while i < self.pending.len() {
            let p = &mut self.pending[i];
            p.records.push(record.clone());
            p.remaining_post -= 1;
            if p.remaining_post == 0 {
                let p = self.pending.swap_remove(i);
                self.seal(p);
            } else {
                i += 1;
            }
        }
        // A fused alarm opens a new window: frozen ring + the trigger.
        if let (true, Some(cid)) = (record.fused_alarm, record.correlation_id) {
            let mut records = self.ring.to_vec();
            let trigger = records.len();
            records.push(record.clone());
            let pending = PendingWindow {
                correlation_id: cid,
                records,
                trigger,
                remaining_post: self.config.post,
            };
            if pending.remaining_post == 0 {
                self.seal(pending);
            } else {
                self.pending.push(pending);
            }
        }
        self.ring.push(record.clone());
    }

    fn seal(&mut self, p: PendingWindow) {
        if self.windows.len() >= self.config.max_windows.max(1) {
            self.windows_dropped += 1;
            return;
        }
        self.windows.push(FlightWindow {
            correlation_id: p.correlation_id,
            records: p.records,
            trigger: p.trigger,
        });
    }

    /// Seals every window still waiting for post-trigger records (end
    /// of run / before export).
    pub fn flush(&mut self) {
        for p in std::mem::take(&mut self.pending) {
            self.seal(p);
        }
    }

    /// Sealed windows, in trigger order.
    pub fn windows(&self) -> &[FlightWindow] {
        &self.windows
    }

    /// The sealed window for `correlation_id`, if kept.
    pub fn window_for(&self, correlation_id: u64) -> Option<&FlightWindow> {
        self.windows
            .iter()
            .find(|w| w.correlation_id == correlation_id)
    }

    /// Windows dropped at the `max_windows` bound.
    pub fn windows_dropped(&self) -> u64 {
        self.windows_dropped
    }

    /// The recorder's geometry.
    pub fn config(&self) -> &FlightRecorderConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: u64) -> DecisionRecord {
        DecisionRecord {
            index: Some(index),
            ..DecisionRecord::new("trace")
        }
    }

    fn alarm_rec(index: u64, cid: u64) -> DecisionRecord {
        DecisionRecord {
            index: Some(index),
            fused_alarm: true,
            correlation_id: Some(cid),
            verdict: "clean".to_string(),
            ..DecisionRecord::new("trace")
        }
    }

    #[test]
    fn window_freezes_pre_and_post_context_around_the_trigger() {
        let mut fr = FlightRecorder::new(FlightRecorderConfig {
            pre: 3,
            post: 2,
            max_windows: 4,
        });
        for i in 0..5 {
            fr.record(&rec(i));
        }
        fr.record(&alarm_rec(5, 99));
        assert!(fr.windows().is_empty(), "window must wait for post context");
        fr.record(&rec(6));
        fr.record(&rec(7));
        let w = fr.window_for(99).expect("sealed window");
        let indices: Vec<u64> = w.records.iter().filter_map(|r| r.index).collect();
        assert_eq!(indices, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(w.trigger, 3);
        let trigger = w.trigger_record().expect("trigger record");
        assert_eq!(trigger.correlation_id, Some(99));
        assert!(trigger.fused_alarm);
    }

    #[test]
    fn flush_seals_windows_short_of_post_context() {
        let mut fr = FlightRecorder::new(FlightRecorderConfig {
            pre: 2,
            post: 8,
            max_windows: 4,
        });
        fr.record(&rec(0));
        fr.record(&alarm_rec(1, 7));
        fr.record(&rec(2));
        assert!(fr.windows().is_empty());
        fr.flush();
        let w = fr.window_for(7).expect("flushed window");
        let indices: Vec<u64> = w.records.iter().filter_map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(w.trigger, 1);
    }

    #[test]
    fn overlapping_triggers_each_get_a_window() {
        let mut fr = FlightRecorder::new(FlightRecorderConfig {
            pre: 2,
            post: 2,
            max_windows: 8,
        });
        fr.record(&alarm_rec(0, 1));
        fr.record(&alarm_rec(1, 2));
        fr.record(&rec(2));
        fr.record(&rec(3));
        assert_eq!(fr.windows().len(), 2);
        assert!(fr.window_for(1).is_some());
        assert!(fr.window_for(2).is_some());
        // The first window saw the second trigger as post-context.
        let first = fr.window_for(1).unwrap();
        assert_eq!(first.records.len(), 3);
    }

    #[test]
    fn window_count_is_bounded() {
        let mut fr = FlightRecorder::new(FlightRecorderConfig {
            pre: 1,
            post: 0,
            max_windows: 2,
        });
        for i in 0..5 {
            fr.record(&alarm_rec(i, i + 1));
        }
        assert_eq!(fr.windows().len(), 2);
        assert_eq!(fr.windows_dropped(), 3);
    }

    #[test]
    fn record_serializes_every_populated_field() {
        let mut r = DecisionRecord::new("window");
        r.index = Some(4);
        r.verdict = "degraded".to_string();
        r.labels = LabelSet::from_pairs([("chip_id", "c0")]);
        r.detectors
            .push(DetectorDecision::new("spectral_window", 3.0, 2.0, true));
        r.fused_alarm = true;
        r.correlation_id = Some(11);
        r.health = "degraded".to_string();
        r.health_transition = Some(("healthy".to_string(), "degraded".to_string()));
        r.calibration = Some("calibrating".to_string());
        r.tiles.push(TileMargin {
            row: 1,
            col: 0,
            margin: 0.5,
            alarm_rate: 0.25,
        });
        r.digest = Some(FrameDigest::of(&[3.0, -4.0]));
        let json = r.to_json();
        for needle in [
            "\"domain\":\"window\"",
            "\"index\":4",
            "\"verdict\":\"degraded\"",
            "\"chip_id\":\"c0\"",
            "\"detector\":\"spectral_window\"",
            "\"margin\":0.5",
            "\"fused_alarm\":true",
            "\"correlation_id\":11",
            "\"health_transition\":{\"from\":\"healthy\",\"to\":\"degraded\"}",
            "\"calibration\":\"calibrating\"",
            "\"tiles\":[{\"row\":1,\"col\":0",
            "\"digest\":{\"samples\":2",
            "\"peak\":4",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let jsonl = decisions_jsonl(&[r.clone(), r]);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn detector_margin_is_relative_and_zero_safe() {
        let d = DetectorDecision::new("euclidean", 3.0, 2.0, true);
        assert!((d.margin - 0.5).abs() < 1e-12);
        let clean = DetectorDecision::new("euclidean", 1.0, 2.0, false);
        assert!((clean.margin + 0.5).abs() < 1e-12);
        // Zero threshold: the raw statistic is the margin (count-style
        // detectors fire on any nonzero statistic).
        let degenerate = DetectorDecision::new("x", 1.0, 0.0, true);
        assert_eq!(degenerate.margin, 1.0);
    }

    #[test]
    fn frame_digest_summarizes_samples() {
        let d = FrameDigest::of(&[3.0, -4.0]);
        assert_eq!(d.samples, 2);
        assert_eq!(d.peak, 4.0);
        assert!((d.mean + 0.5).abs() < 1e-12);
        assert!((d.rms - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(FrameDigest::of(&[]).samples, 0);
    }
}
