//! The in-memory metrics registry: the recorder tests assert against and
//! the source every sink snapshots from.
//!
//! Hot-path updates are lock-free: each metric is an atomic cell (or a
//! bank of atomic buckets for distributions). The registry maps only pay
//! a read-lock on lookup and a write-lock the first time a name is seen.

use crate::clock::{Clock, MonotonicClock};
use crate::forensics::DecisionRecord;
use crate::labels::LabelSet;
use crate::recorder::{FieldValue, Recorder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of power-of-two distribution buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Offset applied to the base-2 exponent when bucketing, so values from
/// `2^-32` up to `2^31` land in distinct buckets.
const EXPONENT_OFFSET: i64 = 32;

/// Upper bound (exclusive) of bucket `i`: `2^(i − 31)`.
fn bucket_upper_bound(i: usize) -> f64 {
    2f64.powi(i as i32 - (EXPONENT_OFFSET as i32 - 1))
}

fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        // Zero, negatives and NaN all collapse into the lowest bucket.
        return 0;
    }
    // `as i64` saturates for ±∞, so the saturating add keeps every
    // pathological input inside the bucket range.
    let e = (value.log2().floor() as i64).saturating_add(EXPONENT_OFFSET);
    e.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Atomically adds `delta` to an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(current) + delta;
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// Atomically folds `value` into an `f64` min/max cell.
fn atomic_f64_fold(cell: &AtomicU64, value: f64, pick: fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let folded = pick(f64::from_bits(current), value);
        if folded.to_bits() == current {
            return;
        }
        match cell.compare_exchange_weak(
            current,
            folded.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A lock-free distribution: count, sum, min, max and 64 power-of-two
/// buckets, all atomics.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample.
    pub fn record(&self, value: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, value);
        atomic_f64_fold(&self.min_bits, value, f64::min);
        atomic_f64_fold(&self.max_bits, value, f64::max);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+∞` when empty).
    pub min: f64,
    /// Largest sample (`−∞` when empty).
    pub max: f64,
    /// `(upper_bound, count)` for every non-empty power-of-two bucket,
    /// ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the cumulative
    /// bucket counts: the upper bound of the first bucket whose
    /// cumulative count reaches `q · count`, clamped into the observed
    /// `[min, max]` range so power-of-two bucket edges never report a
    /// value outside what was actually recorded. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (upper, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One structured event (a completed span, an alarm, a run marker).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock reading when the event was recorded.
    pub ts_ns: u64,
    /// Event kind (`span`, `alarm`, …).
    pub kind: String,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(String, FieldValue)>,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed-span duration distributions (nanoseconds) by span path.
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Labeled counter series: family name → label set → value.
    pub labeled_counters: BTreeMap<String, BTreeMap<LabelSet, u64>>,
    /// Labeled gauge series: family name → label set → value.
    pub labeled_gauges: BTreeMap<String, BTreeMap<LabelSet, f64>>,
    /// Labeled distributions: family name → label set → distribution.
    pub labeled_histograms: BTreeMap<String, BTreeMap<LabelSet, HistogramSnapshot>>,
    /// Updates routed to a family's overflow bucket because the
    /// per-family series cap was reached.
    pub series_overflowed: u64,
    /// Events dropped because the bounded event log was full.
    pub events_dropped: u64,
    /// Decision records dropped because the bounded decision log was
    /// full.
    pub decisions_dropped: u64,
}

/// One labeled metric family: a capped map from label set to atomic
/// cell. Lookups pay a read-lock; the write-lock is only taken the
/// first time a label set is seen.
#[derive(Debug, Default)]
struct LabeledFamily<V> {
    series: RwLock<BTreeMap<LabelSet, Arc<V>>>,
}

impl<V: Default> LabeledFamily<V> {
    fn cell(&self, labels: &LabelSet, cap: usize, overflowed: &AtomicU64) -> Arc<V> {
        if let Some(c) = self
            .series
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(labels)
        {
            return Arc::clone(c);
        }
        let mut w = self
            .series
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(c) = w.get(labels) {
            return Arc::clone(c);
        }
        // At the cardinality cap, previously-unseen label sets share the
        // reserved overflow bucket instead of growing the map.
        if w.len() >= cap && !labels.is_overflow() {
            overflowed.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(w.entry(LabelSet::overflow()).or_default());
        }
        Arc::clone(w.entry(labels.clone()).or_default())
    }

    fn snapshot<T>(&self, read: impl Fn(&V) -> T) -> BTreeMap<LabelSet, T> {
        self.series
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), read(v)))
            .collect()
    }
}

/// The bundled [`Recorder`]: everything lands in process memory, ready
/// for [`Snapshot`]-based assertions and for the Prometheus/JSONL sinks.
#[derive(Debug)]
pub struct InMemoryRecorder {
    clock: Box<dyn Clock>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    spans: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    labeled_counters: RwLock<BTreeMap<String, Arc<LabeledFamily<AtomicU64>>>>,
    labeled_gauges: RwLock<BTreeMap<String, Arc<LabeledFamily<AtomicU64>>>>,
    labeled_histograms: RwLock<BTreeMap<String, Arc<LabeledFamily<AtomicHistogram>>>>,
    series_overflowed: AtomicU64,
    series_cap: usize,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    event_capacity: usize,
    decisions: Mutex<Vec<DecisionRecord>>,
    decisions_dropped: AtomicU64,
    decision_capacity: usize,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Default bound on the in-memory event log.
    pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

    /// Default bound on distinct label sets per labeled metric family
    /// (the overflow bucket rides on top of the cap).
    pub const DEFAULT_SERIES_CAP: usize = 128;

    /// Default bound on the in-memory decision log.
    pub const DEFAULT_DECISION_CAPACITY: usize = 65_536;

    /// Creates a registry stamped by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// Creates a registry stamped by an injected clock — pass a
    /// [`crate::clock::ManualClock`] to make recorded values
    /// deterministic.
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self {
            clock,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            labeled_counters: RwLock::new(BTreeMap::new()),
            labeled_gauges: RwLock::new(BTreeMap::new()),
            labeled_histograms: RwLock::new(BTreeMap::new()),
            series_overflowed: AtomicU64::new(0),
            series_cap: Self::DEFAULT_SERIES_CAP,
            events: Mutex::new(Vec::new()),
            events_dropped: AtomicU64::new(0),
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
            decisions: Mutex::new(Vec::new()),
            decisions_dropped: AtomicU64::new(0),
            decision_capacity: Self::DEFAULT_DECISION_CAPACITY,
        }
    }

    /// Overrides the event-log bound.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Overrides the per-family labeled-series cap (clamped ≥ 1).
    pub fn with_series_cap(mut self, cap: usize) -> Self {
        self.series_cap = cap.max(1);
        self
    }

    /// Overrides the decision-log bound.
    pub fn with_decision_capacity(mut self, capacity: usize) -> Self {
        self.decision_capacity = capacity;
        self
    }

    fn cell<V: Default>(map: &RwLock<BTreeMap<String, Arc<V>>>, name: &str) -> Arc<V> {
        if let Some(c) = map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut w = map.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    fn push_event(&self, ts_ns: u64, kind: &str, fields: Vec<(String, FieldValue)>) {
        let mut log = self
            .events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if log.len() >= self.event_capacity {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        log.push(Event {
            ts_ns,
            kind: kind.to_string(),
            fields,
        });
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = self
            .spans
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let labeled_counters = self
            .labeled_counters
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, f)| (k.clone(), f.snapshot(|c| c.load(Ordering::Relaxed))))
            .collect();
        let labeled_gauges = self
            .labeled_gauges
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, f)| {
                (
                    k.clone(),
                    f.snapshot(|c| f64::from_bits(c.load(Ordering::Relaxed))),
                )
            })
            .collect();
        let labeled_histograms = self
            .labeled_histograms
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, f)| (k.clone(), f.snapshot(AtomicHistogram::snapshot)))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            labeled_counters,
            labeled_gauges,
            labeled_histograms,
            series_overflowed: self.series_overflowed.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            decisions_dropped: self.decisions_dropped.load(Ordering::Relaxed),
        }
    }

    /// A copy of the event log, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// A copy of the decision log, oldest first.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.decisions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// The per-family labeled-series cap.
    pub fn series_cap(&self) -> usize {
        self.series_cap
    }

    fn labeled<V: Default>(
        map: &RwLock<BTreeMap<String, Arc<LabeledFamily<V>>>>,
        name: &str,
    ) -> Arc<LabeledFamily<V>> {
        if let Some(f) = map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
        {
            return Arc::clone(f);
        }
        let mut w = map.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(w.entry(name.to_string()).or_default())
    }
}

impl Recorder for InMemoryRecorder {
    fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    fn counter(&self, name: &str, delta: u64) {
        Self::cell(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, name: &str, value: f64) {
        Self::cell(&self.histograms, name).record(value);
    }

    fn span_complete(&self, path: &str, start_ns: u64, elapsed_ns: u64) {
        Self::cell(&self.spans, path).record(elapsed_ns as f64);
        self.push_event(
            start_ns,
            "span",
            vec![
                ("path".to_string(), FieldValue::Str(path.to_string())),
                ("elapsed_ns".to_string(), FieldValue::U64(elapsed_ns)),
            ],
        );
    }

    fn event(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        let ts = self.clock.now_ns();
        self.push_event(
            ts,
            kind,
            fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        );
    }

    fn counter_with(&self, name: &str, labels: &LabelSet, delta: u64) {
        Self::labeled(&self.labeled_counters, name)
            .cell(labels, self.series_cap, &self.series_overflowed)
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_with(&self, name: &str, labels: &LabelSet, value: f64) {
        Self::labeled(&self.labeled_gauges, name)
            .cell(labels, self.series_cap, &self.series_overflowed)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe_with(&self, name: &str, labels: &LabelSet, value: f64) {
        Self::labeled(&self.labeled_histograms, name)
            .cell(labels, self.series_cap, &self.series_overflowed)
            .record(value);
    }

    fn decision(&self, record: &DecisionRecord) {
        let mut log = self
            .decisions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if log.len() >= self.decision_capacity {
            self.decisions_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        log.push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let r = InMemoryRecorder::new();
        r.counter("traces", 3);
        r.counter("traces", 2);
        r.gauge("threshold", 0.015);
        r.gauge("threshold", 0.017);
        r.observe("distance", 0.5);
        r.observe("distance", 2.0);
        let s = r.snapshot();
        assert_eq!(s.counters["traces"], 5);
        assert_eq!(s.gauges["threshold"], 0.017);
        let h = &s.histograms["distance"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2.5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 2.0);
        assert_eq!(h.mean(), 1.25);
    }

    #[test]
    fn bucket_indexing_separates_magnitudes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert!(bucket_index(1e-3) < bucket_index(1.0));
        assert!(bucket_index(1.0) < bucket_index(1e6));
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        // Bucket upper bounds bracket the sample.
        let v = 1234.5;
        let i = bucket_index(v);
        assert!(v < bucket_upper_bound(i));
        assert!(v >= bucket_upper_bound(i) / 2.0);
    }

    #[test]
    fn spans_record_into_path_distributions_and_events() {
        let r = InMemoryRecorder::with_clock(Box::new(ManualClock::new(100)));
        r.span_complete("collect.measure", 0, 400);
        r.span_complete("collect.measure", 400, 200);
        let s = r.snapshot();
        assert_eq!(s.spans["collect.measure"].count, 2);
        assert_eq!(s.spans["collect.measure"].sum, 600.0);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "span");
    }

    #[test]
    fn event_log_is_bounded() {
        let r = InMemoryRecorder::new().with_event_capacity(2);
        r.event("a", &[]);
        r.event("b", &[]);
        r.event("c", &[]);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.snapshot().events_dropped, 1);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let r = std::sync::Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1000 {
                        r.counter("n", 1);
                        r.observe("v", i as f64);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["n"], 4000);
        assert_eq!(snap.histograms["v"].count, 4000);
    }

    #[test]
    fn bucket_edges_land_deterministically() {
        // A value exactly on a power-of-two edge must always land in the
        // bucket whose *lower* bound it is: bucket i covers
        // [2^(i−32), 2^(i−31)), half-open.
        for k in [-8i32, -1, 0, 1, 3, 10, 20] {
            let edge = 2f64.powi(k);
            let i = bucket_index(edge);
            assert_eq!(
                i,
                (k as i64 + EXPONENT_OFFSET) as usize,
                "edge 2^{k} drifted"
            );
            // The edge is *inside* bucket i, not the last value of i−1.
            assert!(edge >= bucket_upper_bound(i) / 2.0);
            assert!(edge < bucket_upper_bound(i));
            // The value just below the edge lands one bucket down; the
            // value just above stays put.
            assert_eq!(bucket_index(edge * (1.0 - 1e-12)), i - 1);
            assert_eq!(bucket_index(edge * (1.0 + 1e-12)), i);
        }
        // Repeated classification of the same edge value never flickers.
        let probes: Vec<usize> = (0..1000).map(|_| bucket_index(1.0)).collect();
        assert!(probes.iter().all(|&i| i == EXPONENT_OFFSET as usize));
    }

    #[test]
    fn snapshot_under_concurrent_records_loses_no_counts() {
        use std::sync::atomic::AtomicBool;
        let r = std::sync::Arc::new(InMemoryRecorder::new());
        let done = AtomicBool::new(false);
        let writers = 4usize;
        let per_writer = 5000usize;
        std::thread::scope(|s| {
            for w in 0..writers {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..per_writer {
                        // Hit bucket edges on purpose.
                        r.observe("edge", 2f64.powi((i % 8) as i32 - 4 + (w as i32 % 2)));
                    }
                });
            }
            // Snapshot continuously while the writers hammer: every
            // snapshot must be internally monotone (count never exceeds
            // the bucket total by more than in-flight writers) and never
            // panic.
            let mut last_count = 0u64;
            while !done.load(Ordering::Relaxed) {
                if let Some(h) = r.snapshot().histograms.get("edge") {
                    assert!(h.count >= last_count, "count went backwards");
                    last_count = h.count;
                }
                if last_count >= (writers * per_writer) as u64 {
                    done.store(true, Ordering::Relaxed);
                }
            }
        });
        // Quiescent snapshot: nothing lost, buckets sum to the count.
        let h = r.snapshot().histograms["edge"].clone();
        assert_eq!(h.count, (writers * per_writer) as u64);
        let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, h.count);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = AtomicHistogram::default();
        for i in 1..=100u32 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = (s.quantile(0.50), s.quantile(0.95), s.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Power-of-two buckets: the answer is an upper bound within 2×.
        assert!((32.0..=64.0).contains(&p50), "p50={p50}");
        assert!((95.0..=100.0).contains(&p99), "p99={p99}");
        assert_eq!(AtomicHistogram::default().snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn labeled_series_cap_routes_excess_to_the_overflow_bucket() {
        let r = InMemoryRecorder::new().with_series_cap(4);
        for i in 0..100 {
            let labels = LabelSet::from_pairs([("chip_id", format!("c{i}"))]);
            r.counter_with("fleet.traces", &labels, 1);
        }
        let snap = r.snapshot();
        let family = &snap.labeled_counters["fleet.traces"];
        // 4 real series + the shared overflow bucket.
        assert_eq!(family.len(), 5);
        assert_eq!(family[&LabelSet::overflow()], 96);
        assert_eq!(snap.series_overflowed, 96);
        // Existing series keep updating in place at the cap.
        r.counter_with(
            "fleet.traces",
            &LabelSet::from_pairs([("chip_id", "c0")]),
            10,
        );
        let snap = r.snapshot();
        assert_eq!(
            snap.labeled_counters["fleet.traces"][&LabelSet::from_pairs([("chip_id", "c0")])],
            11
        );
    }

    #[test]
    fn labeled_gauges_and_histograms_round_trip() {
        let r = InMemoryRecorder::new();
        let tile = LabelSet::from_pairs([("tile", "r0c0")]);
        r.gauge_with("tile.threshold", &tile, 0.25);
        r.gauge_with("tile.threshold", &tile, 0.5);
        r.observe_with("tile.margin", &tile, 1.0);
        r.observe_with("tile.margin", &tile, 3.0);
        let snap = r.snapshot();
        assert_eq!(snap.labeled_gauges["tile.threshold"][&tile], 0.5);
        let h = &snap.labeled_histograms["tile.margin"][&tile];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(snap.series_overflowed, 0);
    }

    #[test]
    fn decision_log_is_bounded() {
        let r = InMemoryRecorder::new().with_decision_capacity(2);
        for _ in 0..3 {
            r.decision(&DecisionRecord::new("trace"));
        }
        assert_eq!(r.decisions().len(), 2);
        assert_eq!(r.snapshot().decisions_dropped, 1);
    }
}
