//! The in-memory metrics registry: the recorder tests assert against and
//! the source every sink snapshots from.
//!
//! Hot-path updates are lock-free: each metric is an atomic cell (or a
//! bank of atomic buckets for distributions). The registry maps only pay
//! a read-lock on lookup and a write-lock the first time a name is seen.

use crate::clock::{Clock, MonotonicClock};
use crate::recorder::{FieldValue, Recorder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of power-of-two distribution buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Offset applied to the base-2 exponent when bucketing, so values from
/// `2^-32` up to `2^31` land in distinct buckets.
const EXPONENT_OFFSET: i64 = 32;

/// Upper bound (exclusive) of bucket `i`: `2^(i − 31)`.
fn bucket_upper_bound(i: usize) -> f64 {
    2f64.powi(i as i32 - (EXPONENT_OFFSET as i32 - 1))
}

fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        // Zero, negatives and NaN all collapse into the lowest bucket.
        return 0;
    }
    // `as i64` saturates for ±∞, so the saturating add keeps every
    // pathological input inside the bucket range.
    let e = (value.log2().floor() as i64).saturating_add(EXPONENT_OFFSET);
    e.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Atomically adds `delta` to an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(current) + delta;
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// Atomically folds `value` into an `f64` min/max cell.
fn atomic_f64_fold(cell: &AtomicU64, value: f64, pick: fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let folded = pick(f64::from_bits(current), value);
        if folded.to_bits() == current {
            return;
        }
        match cell.compare_exchange_weak(
            current,
            folded.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A lock-free distribution: count, sum, min, max and 64 power-of-two
/// buckets, all atomics.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample.
    pub fn record(&self, value: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, value);
        atomic_f64_fold(&self.min_bits, value, f64::min);
        atomic_f64_fold(&self.max_bits, value, f64::max);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+∞` when empty).
    pub min: f64,
    /// Largest sample (`−∞` when empty).
    pub max: f64,
    /// `(upper_bound, count)` for every non-empty power-of-two bucket,
    /// ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One structured event (a completed span, an alarm, a run marker).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock reading when the event was recorded.
    pub ts_ns: u64,
    /// Event kind (`span`, `alarm`, …).
    pub kind: String,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(String, FieldValue)>,
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed-span duration distributions (nanoseconds) by span path.
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Events dropped because the bounded event log was full.
    pub events_dropped: u64,
}

/// The bundled [`Recorder`]: everything lands in process memory, ready
/// for [`Snapshot`]-based assertions and for the Prometheus/JSONL sinks.
#[derive(Debug)]
pub struct InMemoryRecorder {
    clock: Box<dyn Clock>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    spans: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    event_capacity: usize,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    /// Default bound on the in-memory event log.
    pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

    /// Creates a registry stamped by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// Creates a registry stamped by an injected clock — pass a
    /// [`crate::clock::ManualClock`] to make recorded values
    /// deterministic.
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self {
            clock,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            spans: RwLock::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            events_dropped: AtomicU64::new(0),
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Overrides the event-log bound.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    fn cell<V: Default>(map: &RwLock<BTreeMap<String, Arc<V>>>, name: &str) -> Arc<V> {
        if let Some(c) = map
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut w = map.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    fn push_event(&self, ts_ns: u64, kind: &str, fields: Vec<(String, FieldValue)>) {
        let mut log = self
            .events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if log.len() >= self.event_capacity {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        log.push(Event {
            ts_ns,
            kind: kind.to_string(),
            fields,
        });
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = self
            .spans
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
        }
    }

    /// A copy of the event log, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

impl Recorder for InMemoryRecorder {
    fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    fn counter(&self, name: &str, delta: u64) {
        Self::cell(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, name: &str, value: f64) {
        Self::cell(&self.histograms, name).record(value);
    }

    fn span_complete(&self, path: &str, start_ns: u64, elapsed_ns: u64) {
        Self::cell(&self.spans, path).record(elapsed_ns as f64);
        self.push_event(
            start_ns,
            "span",
            vec![
                ("path".to_string(), FieldValue::Str(path.to_string())),
                ("elapsed_ns".to_string(), FieldValue::U64(elapsed_ns)),
            ],
        );
    }

    fn event(&self, kind: &str, fields: &[(&str, FieldValue)]) {
        let ts = self.clock.now_ns();
        self.push_event(
            ts,
            kind,
            fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let r = InMemoryRecorder::new();
        r.counter("traces", 3);
        r.counter("traces", 2);
        r.gauge("threshold", 0.015);
        r.gauge("threshold", 0.017);
        r.observe("distance", 0.5);
        r.observe("distance", 2.0);
        let s = r.snapshot();
        assert_eq!(s.counters["traces"], 5);
        assert_eq!(s.gauges["threshold"], 0.017);
        let h = &s.histograms["distance"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2.5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 2.0);
        assert_eq!(h.mean(), 1.25);
    }

    #[test]
    fn bucket_indexing_separates_magnitudes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert!(bucket_index(1e-3) < bucket_index(1.0));
        assert!(bucket_index(1.0) < bucket_index(1e6));
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        // Bucket upper bounds bracket the sample.
        let v = 1234.5;
        let i = bucket_index(v);
        assert!(v < bucket_upper_bound(i));
        assert!(v >= bucket_upper_bound(i) / 2.0);
    }

    #[test]
    fn spans_record_into_path_distributions_and_events() {
        let r = InMemoryRecorder::with_clock(Box::new(ManualClock::new(100)));
        r.span_complete("collect.measure", 0, 400);
        r.span_complete("collect.measure", 400, 200);
        let s = r.snapshot();
        assert_eq!(s.spans["collect.measure"].count, 2);
        assert_eq!(s.spans["collect.measure"].sum, 600.0);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "span");
    }

    #[test]
    fn event_log_is_bounded() {
        let r = InMemoryRecorder::new().with_event_capacity(2);
        r.event("a", &[]);
        r.event("b", &[]);
        r.event("c", &[]);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.snapshot().events_dropped, 1);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let r = std::sync::Arc::new(InMemoryRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1000 {
                        r.counter("n", 1);
                        r.observe("v", i as f64);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["n"], 4000);
        assert_eq!(snap.histograms["v"].count, 4000);
    }
}
