//! The [`Recorder`] trait and the zero-cost [`NullRecorder`] default.

use crate::clock::{Clock, ManualClock};
use crate::forensics::DecisionRecord;
use crate::labels::LabelSet;

/// A typed value attached to a structured event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer payload (indices, ids, counts).
    U64(u64),
    /// Floating-point payload (distances, magnitudes, seconds).
    F64(f64),
    /// Text payload (stage names, alarm kinds).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// A telemetry backend: receives counters, gauges, distribution samples,
/// completed timing spans, and structured events from the pipeline.
///
/// Implementations must be cheap and non-blocking on the metric paths —
/// the pipeline calls them from its hot loops and from pool worker
/// threads concurrently. The bundled [`InMemoryRecorder`] keeps every
/// primitive lock-free (atomics) once a metric name is registered.
///
/// [`InMemoryRecorder`]: crate::registry::InMemoryRecorder
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// The time source spans and events are stamped with.
    fn clock(&self) -> &dyn Clock;

    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one sample of the distribution `name`.
    fn observe(&self, name: &str, value: f64);

    /// Records a completed timing span. `path` is the dot-joined
    /// hierarchical span path (e.g. `collect.measure.emf`).
    fn span_complete(&self, path: &str, start_ns: u64, elapsed_ns: u64);

    /// Records a structured event (alarms, run markers). The default
    /// implementation drops it.
    fn event(&self, _kind: &str, _fields: &[(&str, FieldValue)]) {}

    /// Adds `delta` to the counter `name` within the series identified
    /// by `labels`. The default implementation folds the update into
    /// the unlabeled counter, so backends that predate labels keep
    /// aggregate totals correct.
    fn counter_with(&self, name: &str, _labels: &LabelSet, delta: u64) {
        self.counter(name, delta);
    }

    /// Sets the gauge `name` for the series identified by `labels`.
    /// Defaults to the unlabeled gauge.
    fn gauge_with(&self, name: &str, _labels: &LabelSet, value: f64) {
        self.gauge(name, value);
    }

    /// Records one sample of the distribution `name` for the series
    /// identified by `labels`. Defaults to the unlabeled distribution.
    fn observe_with(&self, name: &str, _labels: &LabelSet, value: f64) {
        self.observe(name, value);
    }

    /// Records one decision-forensics record. The default
    /// implementation drops it.
    fn decision(&self, _record: &DecisionRecord) {}
}

/// The default recorder: discards everything.
///
/// Pipeline instrumentation is gated on [`crate::is_enabled`] before any
/// recorder method is reached, so with no recorder installed the whole
/// telemetry layer costs one relaxed atomic load per instrumentation
/// point.
#[derive(Debug, Default)]
pub struct NullRecorder {
    clock: ManualClock,
}

impl NullRecorder {
    /// Creates a null recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for NullRecorder {
    fn clock(&self) -> &dyn Clock {
        &self.clock
    }

    fn counter(&self, _name: &str, _delta: u64) {}

    fn gauge(&self, _name: &str, _value: f64) {}

    fn observe(&self, _name: &str, _value: f64) {}

    fn span_complete(&self, _path: &str, _start_ns: u64, _elapsed_ns: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_accepts_everything_silently() {
        let r = NullRecorder::new();
        r.counter("c", 1);
        r.gauge("g", 2.0);
        r.observe("h", 3.0);
        r.span_complete("a.b", 0, 10);
        r.event("e", &[("k", FieldValue::U64(1))]);
        let labels = LabelSet::from_pairs([("chip_id", "c0")]);
        r.counter_with("c", &labels, 1);
        r.gauge_with("g", &labels, 2.0);
        r.observe_with("h", &labels, 3.0);
        r.decision(&DecisionRecord::new("trace"));
        let _ = r.clock().now_ns();
    }

    #[test]
    fn field_values_convert_from_primitives() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
