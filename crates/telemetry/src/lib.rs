#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-telemetry
//!
//! Structured spans, metrics and alarm-forensics primitives for the
//! `emtrust` runtime trust-evaluation pipeline — the observability layer
//! the paper's "monitor keeps reading the EM sensor output" loop needs
//! once it runs as a service.
//!
//! The crate is dependency-free and organised around one question per
//! module:
//!
//! - [`recorder`] — the [`Recorder`] trait every backend implements, and
//!   the zero-cost [`NullRecorder`] default;
//! - [`registry`] — [`InMemoryRecorder`], lock-free atomic counters /
//!   gauges / histograms plus a bounded structured-event log;
//! - [`clock`] — the injectable [`Clock`]; [`ManualClock`] keeps recorded
//!   runs deterministic (no [`std::time::Instant`] ever reaches a
//!   recorded value);
//! - [`sink`] — Prometheus text exposition and JSONL event export;
//! - [`ring`] — the overwrite-oldest [`RingBuffer`] behind alarm
//!   forensics.
//!
//! ## Global recorder
//!
//! Pipeline stages record through a process-global handle so telemetry
//! needs no plumbing through every configuration struct:
//!
//! ```
//! use emtrust_telemetry as telemetry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(telemetry::InMemoryRecorder::new());
//! telemetry::install(registry.clone());
//! {
//!     let _span = telemetry::span("fit");
//!     telemetry::counter("traces", 32);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["traces"], 32);
//! assert_eq!(snap.spans["fit"].count, 1);
//! telemetry::uninstall();
//! ```
//!
//! With no recorder installed every instrumentation point costs one
//! relaxed atomic load — the `NullRecorder` configuration benchmarked by
//! `exp_telemetry` (overhead budget: < 2 % on the full Table-1 sweep).
//!
//! Span paths are hierarchical per thread: nested [`span`] guards join
//! their names with dots (`collect.measure.emf`). Worker threads start
//! fresh stacks, so pool-side spans root at the worker's first span.

pub mod clock;
pub mod forensics;
pub mod labels;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod sink;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use forensics::{
    decisions_jsonl, DecisionRecord, DetectorDecision, FlightRecorder, FlightRecorderConfig,
    FlightWindow, ForensicsConfig, FrameDigest, TileMargin,
};
pub use labels::LabelSet;
pub use profile::{SpanNode, SpanProfile};
pub use recorder::{FieldValue, NullRecorder, Recorder};
pub use registry::{Event, HistogramSnapshot, InMemoryRecorder, Snapshot};
pub use ring::RingBuffer;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static CORRELATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Installs `recorder` as the process-global telemetry backend.
pub fn install(recorder: Arc<dyn Recorder>) {
    *GLOBAL
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global recorder, restoring the zero-cost null default.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *GLOBAL
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
}

/// Whether a recorder is installed. One relaxed atomic load — the guard
/// every instrumentation point checks first.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<dyn Recorder>> {
    if !is_enabled() {
        return None;
    }
    GLOBAL
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone()
}

/// Runs `f` with the installed recorder, or not at all.
#[inline]
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if let Some(r) = current() {
        f(&*r);
    }
}

/// Adds `delta` to the counter `name` on the installed recorder.
#[inline]
pub fn counter(name: &str, delta: u64) {
    with_recorder(|r| r.counter(name, delta));
}

/// Sets the gauge `name` on the installed recorder.
#[inline]
pub fn gauge(name: &str, value: f64) {
    with_recorder(|r| r.gauge(name, value));
}

/// Records one distribution sample on the installed recorder.
#[inline]
pub fn observe(name: &str, value: f64) {
    with_recorder(|r| r.observe(name, value));
}

/// Records a structured event on the installed recorder.
#[inline]
pub fn event(kind: &str, fields: &[(&str, FieldValue)]) {
    with_recorder(|r| r.event(kind, fields));
}

/// Adds `delta` to the labeled counter series on the installed recorder.
#[inline]
pub fn counter_with(name: &str, labels: &LabelSet, delta: u64) {
    with_recorder(|r| r.counter_with(name, labels, delta));
}

/// Sets the labeled gauge series on the installed recorder.
#[inline]
pub fn gauge_with(name: &str, labels: &LabelSet, value: f64) {
    with_recorder(|r| r.gauge_with(name, labels, value));
}

/// Records one labeled distribution sample on the installed recorder.
#[inline]
pub fn observe_with(name: &str, labels: &LabelSet, value: f64) {
    with_recorder(|r| r.observe_with(name, labels, value));
}

/// Records one decision-forensics record on the installed recorder.
#[inline]
pub fn decision(record: &DecisionRecord) {
    with_recorder(|r| r.decision(record));
}

/// Times `f` with the recorder's clock and records the elapsed
/// nanoseconds as a sample of the distribution `name`. Unlike [`span`],
/// the name may be dynamic (per-worker pool timings) and does not join
/// the hierarchical span stack. Runs `f` untimed when disabled.
#[inline]
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    match current() {
        Some(r) => {
            let t0 = r.clock().now_ns();
            let out = f();
            let elapsed = r.clock().now_ns().saturating_sub(t0);
            r.observe(name, elapsed as f64);
            out
        }
        None => f(),
    }
}

/// An active hierarchical timing span; completes (records its duration
/// under its dot-joined path) when dropped.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct SpanGuard(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    recorder: Arc<dyn Recorder>,
    start_ns: u64,
    depth: usize,
}

/// Opens a timing span named `name`, nested under any span already open
/// on this thread. No-op (and allocation-free) when telemetry is
/// disabled.
pub fn span(name: &'static str) -> SpanGuard {
    match current() {
        Some(recorder) => {
            let start_ns = recorder.clock().now_ns();
            let depth = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                stack.push(name);
                stack.len()
            });
            SpanGuard(Some(SpanInner {
                recorder,
                start_ns,
                depth,
            }))
        }
        None => SpanGuard(None),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Tolerate guards dropped out of order: truncate to this
                // guard's depth, then pop its own name.
                stack.truncate(inner.depth);
                let path = stack.join(".");
                stack.pop();
                path
            });
            let elapsed = inner
                .recorder
                .clock()
                .now_ns()
                .saturating_sub(inner.start_ns);
            inner.recorder.span_complete(&path, inner.start_ns, elapsed);
        }
    }
}

/// Draws the next alarm correlation id: process-unique and strictly
/// monotonic, starting at 1. Ids are forensic metadata — two runs of the
/// same workload agree on every alarm *except* its correlation id, which
/// is why [`Alarm` equality] in `emtrust` ignores it.
///
/// [`Alarm` equality]: https://docs.rs/emtrust
pub fn next_correlation_id() -> u64 {
    CORRELATION.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The global recorder is process state: tests that install one are
    /// serialized through this lock.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_helpers_are_no_ops() {
        let _guard = lock();
        uninstall();
        assert!(!is_enabled());
        counter("x", 1);
        gauge("x", 1.0);
        observe("x", 1.0);
        event("x", &[]);
        let _s = span("x");
        assert_eq!(time("x", || 41 + 1), 42);
    }

    #[test]
    fn install_routes_helpers_to_the_registry() {
        let _guard = lock();
        let reg = Arc::new(InMemoryRecorder::with_clock(Box::new(ManualClock::new(50))));
        install(reg.clone());
        counter("c", 2);
        gauge("g", 3.5);
        observe("h", 7.0);
        let got = time("timed", || 5);
        assert_eq!(got, 5);
        event("mark", &[("i", FieldValue::U64(9))]);
        uninstall();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 2);
        assert_eq!(snap.gauges["g"], 3.5);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["timed"].count, 1);
        assert_eq!(snap.histograms["timed"].sum, 50.0);
        assert_eq!(reg.events().len(), 1);
    }

    #[test]
    fn nested_spans_join_their_paths() {
        let _guard = lock();
        let reg = Arc::new(InMemoryRecorder::with_clock(Box::new(ManualClock::new(10))));
        install(reg.clone());
        {
            let _outer = span("collect");
            {
                let _inner = span("measure");
            }
            {
                let _inner = span("measure");
            }
        }
        uninstall();
        let snap = reg.snapshot();
        assert_eq!(snap.spans["collect"].count, 1);
        assert_eq!(snap.spans["collect.measure"].count, 2);
    }

    #[test]
    fn spans_on_other_threads_root_fresh_stacks() {
        let _guard = lock();
        let reg = Arc::new(InMemoryRecorder::new());
        install(reg.clone());
        {
            let _outer = span("outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _worker = span("worker");
                });
            });
        }
        uninstall();
        let snap = reg.snapshot();
        assert!(snap.spans.contains_key("worker"));
        assert!(snap.spans.contains_key("outer"));
        assert!(!snap.spans.contains_key("outer.worker"));
    }

    #[test]
    fn correlation_ids_are_unique_and_monotonic() {
        let a = next_correlation_id();
        let b = next_correlation_id();
        let c = next_correlation_id();
        assert!(a < b && b < c);
    }

    #[test]
    fn labeled_helpers_route_to_the_registry() {
        let _guard = lock();
        let reg = Arc::new(InMemoryRecorder::new());
        install(reg.clone());
        let labels = LabelSet::from_pairs([("chip_id", "c3"), ("tile", "r1c0")]);
        counter_with("fleet.traces", &labels, 2);
        gauge_with("fleet.threshold", &labels, 0.5);
        observe_with("fleet.margin", &labels, 1.5);
        let mut rec = DecisionRecord::new("trace");
        rec.labels = labels.clone();
        decision(&rec);
        uninstall();
        let snap = reg.snapshot();
        assert_eq!(snap.labeled_counters["fleet.traces"][&labels], 2);
        assert_eq!(snap.labeled_gauges["fleet.threshold"][&labels], 0.5);
        assert_eq!(snap.labeled_histograms["fleet.margin"][&labels].count, 1);
        assert_eq!(reg.decisions().len(), 1);
        assert_eq!(reg.decisions()[0].labels, labels);
        // Disabled: the same helpers are no-ops.
        counter_with("fleet.traces", &labels, 7);
        decision(&rec);
        assert_eq!(reg.snapshot().labeled_counters["fleet.traces"][&labels], 2);
    }

    #[test]
    fn span_stack_stays_balanced_across_a_caught_panic() {
        let _guard = lock();
        let reg = Arc::new(InMemoryRecorder::with_clock(Box::new(ManualClock::new(10))));
        install(reg.clone());
        {
            let _outer = span("outer");
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _inner = span("doomed");
                panic!("boom");
            }));
            assert!(caught.is_err());
            // The panicking guard unwound and popped itself: a new span
            // opened now must nest under `outer` alone, not under the
            // dead `doomed` frame.
            {
                let _after = span("after");
            }
        }
        uninstall();
        let snap = reg.snapshot();
        assert_eq!(snap.spans["outer.doomed"].count, 1, "{:?}", snap.spans);
        assert_eq!(snap.spans["outer.after"].count, 1, "{:?}", snap.spans);
        assert!(!snap.spans.contains_key("outer.doomed.after"));
    }
}
