//! Injectable time sources for the telemetry layer.
//!
//! Every duration a recorder stores is computed from a [`Clock`], never
//! from a raw [`std::time::Instant`] in pipeline code. Production runs
//! use [`MonotonicClock`]; deterministic runs (the determinism test
//! suite, recorded replays) inject a [`ManualClock`] whose readings are a
//! pure function of how many times it has been read — so two identical
//! serial runs record identical telemetry, bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch. Must be monotone
    /// non-decreasing per clock instance.
    fn now_ns(&self) -> u64;
}

/// Wall-clock-backed monotonic time (the production default).
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock: every reading advances an internal counter by a
/// fixed step, so the `n`-th read always returns `n × step_ns` regardless
/// of when it happens. With a serial pipeline this makes recorded span
/// durations reproducible across runs.
#[derive(Debug)]
pub struct ManualClock {
    ticks: AtomicU64,
    step_ns: u64,
}

impl ManualClock {
    /// Creates a clock advancing `step_ns` nanoseconds per reading.
    pub fn new(step_ns: u64) -> Self {
        Self {
            ticks: AtomicU64::new(0),
            step_ns,
        }
    }

    /// Readings taken so far.
    pub fn readings(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Default for ManualClock {
    /// One microsecond per reading.
    fn default() -> Self {
        Self::new(1_000)
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ticks
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(self.step_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_a_pure_function_of_read_count() {
        let c = ManualClock::new(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
        assert_eq!(c.readings(), 3);
        let d = ManualClock::new(10);
        assert_eq!(d.now_ns(), 0, "fresh clock replays the same sequence");
    }
}
