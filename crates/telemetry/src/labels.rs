//! Bounded label sets for dimensional metrics.
//!
//! A [`LabelSet`] is a small, sorted, deduplicated list of
//! `key = value` pairs (`chip_id`, `tile`, `detector`, `fault_kind`, …)
//! attached to a metric series. Two bounds keep a fleet of chips from
//! blowing up the registry:
//!
//! - **pair bound** — a set holds at most [`LabelSet::MAX_PAIRS`] pairs;
//!   extra pairs are dropped (first `MAX_PAIRS` in key order win);
//! - **cardinality bound** — each metric *family* (one name) holds at
//!   most a configured number of distinct label sets; once the cap is
//!   reached, previously-unseen sets route to the reserved
//!   [`LabelSet::overflow`] bucket so hot paths never allocate without
//!   bound (see `InMemoryRecorder::with_series_cap`).
//!
//! The canonical rendering (`a="x",b="y"` — sorted keys, Prometheus
//! label-value escaping) doubles as the registry key, so logically equal
//! sets always hit the same series.

use std::fmt;

/// The reserved label key marking the cardinality-overflow bucket.
pub const OVERFLOW_KEY: &str = "overflow";

/// A small, sorted, bounded set of `key = value` label pairs.
///
/// Construction sites keep pairs sorted by key and deduplicated
/// (last-written value wins), so equality, ordering and rendering are
/// all canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet {
    pairs: Vec<(String, String)>,
}

impl LabelSet {
    /// Hard bound on pairs per set; inserts beyond it are ignored.
    pub const MAX_PAIRS: usize = 8;

    /// The empty label set (renders as no labels at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from `(key, value)` pairs; sorts, deduplicates
    /// (last value for a repeated key wins) and truncates to
    /// [`Self::MAX_PAIRS`].
    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        let mut set = Self::new();
        for (k, v) in pairs {
            set.insert(k.into(), v.into());
        }
        set
    }

    /// The reserved overflow bucket: `{overflow="true"}`. Families at
    /// their cardinality cap route unseen label sets here.
    pub fn overflow() -> Self {
        Self::from_pairs([(OVERFLOW_KEY, "true")])
    }

    /// Whether this is the reserved overflow bucket.
    pub fn is_overflow(&self) -> bool {
        self.pairs.len() == 1 && self.pairs[0].0 == OVERFLOW_KEY
    }

    /// Returns a copy with `key = value` set (replacing any existing
    /// value for `key`). The builder-style spelling for hot paths that
    /// extend a base set.
    pub fn with(&self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let mut out = self.clone();
        out.insert(key.into(), value.into());
        out
    }

    fn insert(&mut self, key: String, value: String) {
        match self.pairs.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => {
                if self.pairs.len() < Self::MAX_PAIRS {
                    self.pairs.insert(i, (key, value));
                }
            }
        }
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// Number of pairs held.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The sorted `(key, value)` pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Canonical Prometheus-style rendering of the pairs *without*
    /// braces: `a="x",b="y"` (empty string for the empty set). Label
    /// values are escaped per the Prometheus text format (`\\`, `\"`,
    /// `\n`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.render())
    }
}

/// Escapes a Prometheus label value: backslash, double quote and
/// line feed must be escaped per the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes Prometheus `# HELP` text: backslash and line feed only
/// (quotes are legal in help text).
pub fn escape_help_text(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_sorted_and_deduplicated() {
        let a = LabelSet::from_pairs([("tile", "r0c1"), ("chip_id", "c7"), ("tile", "r2c0")]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("tile"), Some("r2c0"));
        assert_eq!(a.render(), "chip_id=\"c7\",tile=\"r2c0\"");
        // Insertion order must not matter.
        let b = LabelSet::new().with("tile", "r2c0").with("chip_id", "c7");
        assert_eq!(a, b);
    }

    #[test]
    fn pair_count_is_bounded() {
        let mut set = LabelSet::new();
        for i in 0..32 {
            set = set.with(format!("k{i:02}"), "v");
        }
        assert_eq!(set.len(), LabelSet::MAX_PAIRS);
        // Existing keys still update in place at the bound.
        let updated = set.with("k00", "w");
        assert_eq!(updated.get("k00"), Some("w"));
        assert_eq!(updated.len(), LabelSet::MAX_PAIRS);
    }

    #[test]
    fn overflow_bucket_is_recognizable() {
        assert!(LabelSet::overflow().is_overflow());
        assert!(!LabelSet::new().is_overflow());
        assert!(!LabelSet::from_pairs([("overflow", "true"), ("x", "1")]).is_overflow());
        assert_eq!(LabelSet::overflow().render(), "overflow=\"true\"");
    }

    #[test]
    fn rendering_escapes_label_values() {
        let set = LabelSet::from_pairs([("k", "a\"b\\c\nd")]);
        assert_eq!(set.render(), "k=\"a\\\"b\\\\c\\nd\"");
        assert_eq!(set.to_string(), "{k=\"a\\\"b\\\\c\\nd\"}");
        assert_eq!(escape_help_text("a\\b\nc\"d"), "a\\\\b\\nc\"d");
    }

    #[test]
    fn empty_set_renders_empty() {
        assert_eq!(LabelSet::new().render(), "");
        assert_eq!(LabelSet::new().to_string(), "{}");
        assert!(LabelSet::new().is_empty());
    }
}
