//! A fixed-capacity overwrite-oldest ring buffer — the storage behind the
//! trust monitor's alarm forensics (last `N` distances / spectral spots
//! preceding an alarm).

/// A bounded ring: pushing beyond capacity overwrites the oldest entry.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    head: usize,
}

impl<T: Clone> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` entries (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// Appends an entry, evicting the oldest once full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Entries currently held, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest_first() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.to_vec(), vec![1, 2]);
        r.push(3);
        r.push(4);
        r.push(5);
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_vec(), vec![3, 4, 5]);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(7);
        r.push(8);
        assert_eq!(r.to_vec(), vec![8]);
    }

    #[test]
    fn wraparound_keeps_strict_oldest_first_order() {
        let mut r = RingBuffer::new(4);
        // Push far past capacity so head wraps several times, checking
        // the order at every step.
        for i in 0..25u32 {
            r.push(i);
            let got = r.to_vec();
            let lo = (i + 1).saturating_sub(4);
            let expect: Vec<u32> = (lo..=i).collect();
            assert_eq!(got, expect, "after push {i}");
            assert_eq!(r.len(), expect.len());
        }
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn capacity_one_always_holds_the_latest() {
        let mut r = RingBuffer::new(1);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 1);
        for i in 0..10 {
            r.push(i);
            assert_eq!(r.to_vec(), vec![i]);
            assert_eq!(r.len(), 1);
        }
        r.clear();
        assert!(r.is_empty());
        r.push(42);
        assert_eq!(r.to_vec(), vec![42]);
    }

    #[test]
    fn zero_capacity_behaves_exactly_like_capacity_one() {
        let mut zero = RingBuffer::new(0);
        let mut one = RingBuffer::new(1);
        assert_eq!(zero.capacity(), one.capacity());
        for i in 0..5 {
            zero.push(i);
            one.push(i);
            assert_eq!(zero.to_vec(), one.to_vec());
        }
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut r = RingBuffer::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        r.push(9);
        assert_eq!(r.to_vec(), vec![9]);
    }
}
