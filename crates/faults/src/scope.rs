//! A fault-injecting wrapper around the oscilloscope front-end: the
//! digitizer itself misbehaves, after the analog chain did its
//! (faithful) job.

use crate::plan::FaultPlan;
use emtrust_em::emf::VoltageTrace;
use emtrust_silicon::{Channel, Oscilloscope};

/// An [`Oscilloscope`] whose acquisitions replay under a [`FaultPlan`].
///
/// The wrapped scope acquires normally (bandwidth, noise, quantization),
/// then the plan corrupts the digitized record — the order a real
/// readout fault manifests in.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyScope {
    inner: Oscilloscope,
    plan: FaultPlan,
    channel: Channel,
}

impl FaultyScope {
    /// Wraps `scope` so acquisitions on `channel` replay under `plan`.
    pub fn new(scope: Oscilloscope, plan: FaultPlan, channel: Channel) -> Self {
        Self {
            inner: scope,
            plan,
            channel,
        }
    }

    /// The wrapped front-end.
    pub fn inner(&self) -> &Oscilloscope {
        &self.inner
    }

    /// The fault schedule in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Acquires `input` through the wrapped scope, then applies every
    /// fault the plan schedules for `(trace_index, attempt)` on this
    /// channel. Bit-identical for fixed seeds.
    pub fn acquire(
        &self,
        input: &VoltageTrace,
        seed: u64,
        trace_index: u64,
        attempt: u32,
    ) -> VoltageTrace {
        let mut trace = self.inner.acquire(input, seed);
        let fs = trace.sample_rate_hz();
        self.plan.apply(
            trace_index,
            attempt,
            Some(self.channel),
            trace.samples_mut(),
            fs,
        );
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultKind;

    fn tone() -> VoltageTrace {
        VoltageTrace::new(
            (0..1024)
                .map(|i| 5e-5 * (2.0 * std::f64::consts::PI * 10e6 * i as f64 / 640e6).sin())
                .collect(),
            640e6,
        )
    }

    #[test]
    fn faulty_scope_corrupts_after_acquisition() {
        let plan = FaultPlan::single(1, FaultKind::Flatline, 1.0);
        let faulty = FaultyScope::new(Oscilloscope::onchip_channel(), plan, Channel::OnChipSensor);
        let clean = faulty.inner().acquire(&tone(), 9);
        let got = faulty.acquire(&tone(), 9, 0, 0);
        assert_ne!(clean.samples(), got.samples());
        assert!(got.samples().windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn faulty_scope_replays_bit_identically() {
        let plan = FaultPlan::single(2, FaultKind::GlitchBurst, 0.7);
        let faulty = FaultyScope::new(
            Oscilloscope::external_channel(),
            plan,
            Channel::ExternalProbe,
        );
        let a = faulty.acquire(&tone(), 4, 3, 1);
        let b = faulty.acquire(&tone(), 4, 3, 1);
        assert!(a
            .samples()
            .iter()
            .zip(b.samples())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
