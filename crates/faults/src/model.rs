//! The fault taxonomy: one deterministic corruption model per failure
//! mode a deployed EM-sensor channel can exhibit.
//!
//! Every model takes a single `intensity` knob in `(0, 1]` and a seeded
//! RNG; the mapping from intensity to physical parameters (clip level,
//! burst count, drift slope, …) is fixed here so sweeps are comparable
//! across experiments. All models preserve trace length — a real
//! digitizer always returns its programmed record length; what degrades
//! is the *content*.

use rand::rngs::StdRng;
use rand::Rng;

/// A sensor/measurement fault family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Runs of samples replaced by zero — a FIFO underrun or dropped
    /// transfer window between digitizer and analysis module.
    Dropout,
    /// Symmetric clipping at a fraction of the trace's own peak — an ADC
    /// driven past full scale (gain misconfiguration, supply droop).
    Saturation,
    /// One bit of the ADC magnitude code stuck at `1` — a latched
    /// comparator or a shorted data line in the converter.
    StuckBits,
    /// Short high-amplitude bursts — ESD events, relay chatter, or
    /// coupling from a neighbouring aggressor net.
    GlitchBurst,
    /// Multiplicative gain ramp across the trace — amplifier bias drift
    /// or thermal runaway in the analog front-end.
    GainDrift,
    /// Per-sample timing jitter — sampling-clock phase noise or a
    /// desynchronized trigger.
    ClockJitter,
    /// The sensor holds one value from some onset onward — a dead
    /// channel (broken bond wire, powered-down front-end).
    Flatline,
    /// Scattered NaN/±Inf samples — corrupted transfers or uninitialized
    /// DMA memory on the readout path.
    NanCorruption,
}

impl FaultKind {
    /// Every fault family, in taxonomy order (the `exp_faults` sweep
    /// order).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Dropout,
        FaultKind::Saturation,
        FaultKind::StuckBits,
        FaultKind::GlitchBurst,
        FaultKind::GainDrift,
        FaultKind::ClockJitter,
        FaultKind::Flatline,
        FaultKind::NanCorruption,
    ];

    /// Stable snake_case label (JSON artifacts, telemetry fields).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::Saturation => "saturation",
            FaultKind::StuckBits => "stuck_bits",
            FaultKind::GlitchBurst => "glitch_burst",
            FaultKind::GainDrift => "gain_drift",
            FaultKind::ClockJitter => "clock_jitter",
            FaultKind::Flatline => "flatline",
            FaultKind::NanCorruption => "nan_corruption",
        }
    }

    /// Whether a retry of the acquisition can plausibly clear the fault
    /// when it strikes probabilistically (transient), as opposed to a
    /// hardware condition that persists across re-acquisitions.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FaultKind::Dropout | FaultKind::GlitchBurst | FaultKind::NanCorruption
        )
    }

    /// Corrupts `samples` in place at the given `intensity` (clamped to
    /// `(0, 1]`), drawing every random decision from `rng`.
    pub(crate) fn apply(&self, samples: &mut [f64], intensity: f64, rng: &mut StdRng) {
        let len = samples.len();
        if len == 0 {
            return;
        }
        let intensity = intensity.clamp(1e-3, 1.0);
        let peak = samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        match self {
            FaultKind::Dropout => {
                // Burst length scales with intensity; at the default 0.5
                // one burst spans 1/16 of the record.
                let run = ((len as f64 * intensity / 8.0) as usize).max(4);
                let bursts = 1 + (intensity * 3.0) as usize;
                for _ in 0..bursts {
                    let start = rng.gen_range(0..len);
                    let end = (start + run).min(len);
                    for s in &mut samples[start..end] {
                        *s = 0.0;
                    }
                }
            }
            FaultKind::Saturation => {
                if peak == 0.0 {
                    return;
                }
                let clip = peak * (1.0 - 0.9 * intensity);
                for s in samples.iter_mut() {
                    *s = s.clamp(-clip, clip);
                }
            }
            FaultKind::StuckBits => {
                if peak == 0.0 {
                    return;
                }
                // 12-bit converter model: 11 magnitude bits plus sign.
                // Intensity selects which magnitude bit latches high.
                let bit = 4 + (intensity * 6.0).round() as u32;
                let lsb = peak / 2048.0;
                for s in samples.iter_mut() {
                    let code = ((s.abs() / lsb).round() as u64).min(2047) | (1 << bit);
                    *s = s.signum() * code as f64 * lsb;
                }
            }
            FaultKind::GlitchBurst => {
                let amp = if peak == 0.0 { 1.0 } else { peak } * (2.0 + 10.0 * intensity);
                let bursts = 1 + (intensity * 3.0) as usize;
                for _ in 0..bursts {
                    let start = rng.gen_range(0..len);
                    let width = 1 + rng.gen_range(0..3usize);
                    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    let end = (start + width).min(len);
                    for s in &mut samples[start..end] {
                        *s = sign * amp;
                    }
                }
            }
            FaultKind::GainDrift => {
                let drift = 5.0 * intensity;
                let denom = (len - 1).max(1) as f64;
                for (i, s) in samples.iter_mut().enumerate() {
                    *s *= 1.0 + drift * (i as f64 / denom);
                }
            }
            FaultKind::ClockJitter => {
                let max_shift = 3.0 * intensity;
                let original = samples.to_vec();
                for (i, s) in samples.iter_mut().enumerate() {
                    let shift = rng.gen_range(-max_shift..=max_shift).round() as i64;
                    let j = (i as i64 + shift).clamp(0, len as i64 - 1) as usize;
                    *s = original[j];
                }
            }
            FaultKind::Flatline => {
                let onset_frac = (1.0 - (0.3 + 0.7 * intensity)).max(0.0);
                let onset = ((len as f64 * onset_frac) as usize).min(len - 1);
                let held = samples[onset];
                for s in &mut samples[onset..] {
                    *s = held;
                }
            }
            FaultKind::NanCorruption => {
                let hits = 1 + (intensity * 9.0) as usize;
                for k in 0..hits {
                    let pos = rng.gen_range(0..len);
                    samples[pos] = match k % 3 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => f64::NEG_INFINITY,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> Vec<f64> {
        (0..512).map(|i| (i as f64 * 0.13).sin()).collect()
    }

    fn apply(kind: FaultKind, intensity: f64, seed: u64) -> Vec<f64> {
        let mut s = base();
        kind.apply(&mut s, intensity, &mut StdRng::seed_from_u64(seed));
        s
    }

    #[test]
    fn every_kind_changes_the_trace_and_preserves_length() {
        for kind in FaultKind::ALL {
            let out = apply(kind, 0.5, 1);
            assert_eq!(out.len(), 512, "{kind:?}");
            assert_ne!(out, base(), "{kind:?} must corrupt");
        }
    }

    #[test]
    fn application_is_deterministic_per_seed() {
        for kind in FaultKind::ALL {
            let a = apply(kind, 0.5, 9);
            let b = apply(kind, 0.5, 9);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{kind:?} must replay bit-identically"
            );
        }
    }

    #[test]
    fn saturation_pins_consecutive_samples_at_the_clip_level() {
        let out = apply(FaultKind::Saturation, 0.5, 1);
        let peak = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let pinned = out.iter().filter(|&&x| x.abs() == peak).count();
        assert!(pinned > 10, "clipping must pin many samples, got {pinned}");
    }

    #[test]
    fn stuck_bit_keeps_samples_away_from_zero() {
        let out = apply(FaultKind::StuckBits, 0.5, 1);
        let peak = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let floor = out.iter().fold(f64::INFINITY, |m, &x| m.min(x.abs()));
        assert!(floor > 0.01 * peak, "stuck high bit forbids small codes");
    }

    #[test]
    fn flatline_holds_one_value_to_the_end() {
        let out = apply(FaultKind::Flatline, 1.0, 1);
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn nan_corruption_introduces_non_finite_samples() {
        let out = apply(FaultKind::NanCorruption, 0.5, 1);
        assert!(out.iter().any(|x| !x.is_finite()));
    }

    #[test]
    fn gain_drift_amplifies_the_tail_more_than_the_head() {
        let out = apply(FaultKind::GainDrift, 0.5, 1);
        let clean = base();
        let head: f64 = out[..64]
            .iter()
            .zip(&clean[..64])
            .map(|(a, b)| (a - b).abs())
            .sum();
        let tail: f64 = out[448..]
            .iter()
            .zip(&clean[448..])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(tail > 5.0 * head, "head {head} tail {tail}");
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn empty_traces_are_ignored() {
        for kind in FaultKind::ALL {
            let mut empty: Vec<f64> = Vec::new();
            kind.apply(&mut empty, 0.5, &mut StdRng::seed_from_u64(0));
            assert!(empty.is_empty());
        }
    }
}
