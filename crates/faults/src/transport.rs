//! Transport-level fault models: what the network between a fleet of
//! chips and the ingestion service does to *batches*, as opposed to what
//! a broken sensor does to *samples* (see [`crate::model`]).
//!
//! A fleet front end receives trace batches tagged with a `chip_id`. The
//! transport in between can drop a batch, deliver it twice, deliver two
//! batches out of order, hold one back long enough to blow a deadline
//! budget, or corrupt the identifying metadata so the batch arrives under
//! the wrong chip. [`TransportPlan`] schedules those events with the same
//! determinism contract as [`crate::FaultPlan`]: every realization is a
//! pure function of `(plan seed, entry index, chip key, batch index,
//! attempt)`, so an end-to-end chaos run replays bit-identically and a
//! redelivery (`attempt > 0`) re-rolls transient events without touching
//! any other batch's fate.
//!
//! The plan does not move bytes itself — the ingestion driver asks it
//! what happens to a batch and acts on the returned
//! [`TransportDisposition`]:
//!
//! ```
//! use emtrust_faults::transport::{TransportFaultKind, TransportFaultSpec, TransportPlan};
//!
//! let plan = TransportPlan::new(9)
//!     .with(TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0).with_probability(0.5));
//! let d = plan.disposition(42, 0, 0);
//! // Replay is bit-identical.
//! assert_eq!(d, plan.disposition(42, 0, 0));
//! // Either the batch vanished or it arrives exactly once, untouched.
//! assert!(d.deliveries == 0 || d.deliveries == 1);
//! ```

use emtrust_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The transport fault families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportFaultKind {
    /// The batch never arrives (`deliveries = 0`).
    BatchDrop,
    /// The batch arrives twice (`deliveries = 2`) — at-least-once
    /// transports redeliver on a lost ack.
    BatchDuplicate,
    /// The batch arrives after its successor: the driver swaps it with
    /// the chip's next batch (`reorder_with_next`).
    BatchReorder,
    /// The batch is held back in flight; `delay_us` is charged against
    /// the ingestion deadline budget.
    BatchDelay,
    /// The `chip_id` metadata is corrupted in flight: the batch arrives
    /// attributed to a ghost chip derived from `corrupt_chip_salt`.
    ChipIdCorruption,
}

impl TransportFaultKind {
    /// Every fault family, in a stable sweep order.
    pub const ALL: [TransportFaultKind; 5] = [
        TransportFaultKind::BatchDrop,
        TransportFaultKind::BatchDuplicate,
        TransportFaultKind::BatchReorder,
        TransportFaultKind::BatchDelay,
        TransportFaultKind::ChipIdCorruption,
    ];

    /// Stable snake_case label (telemetry fields, JSON artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            TransportFaultKind::BatchDrop => "batch_drop",
            TransportFaultKind::BatchDuplicate => "batch_duplicate",
            TransportFaultKind::BatchReorder => "batch_reorder",
            TransportFaultKind::BatchDelay => "batch_delay",
            TransportFaultKind::ChipIdCorruption => "chip_id_corruption",
        }
    }
}

/// One scheduled transport fault: a [`TransportFaultKind`] at an
/// intensity, optionally gated to a chip-key window, a batch-index
/// window, and a strike probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaultSpec {
    /// The fault family.
    pub kind: TransportFaultKind,
    /// Severity knob in `(0, 1]`. For [`TransportFaultKind::BatchDelay`]
    /// it scales the drawn delay up to [`MAX_DELAY_US`]; the other
    /// families are all-or-nothing and ignore it beyond gating `> 0`.
    pub intensity: f64,
    /// Probability that the fault strikes a given
    /// `(chip, batch, attempt)`. `1.0` models a persistent path
    /// condition; `< 1.0` a transient one a redelivery can clear.
    pub probability: f64,
    /// Half-open `[start, end)` window over the chip key (`None` =
    /// every chip). Keys are whatever the driver hashes chip ids to.
    pub chips: Option<(u64, u64)>,
    /// Half-open `[start, end)` window over the per-chip batch index
    /// (`None` = every batch).
    pub batches: Option<(u64, u64)>,
}

/// Upper bound of the delay draw at intensity 1.0, in microseconds.
pub const MAX_DELAY_US: u64 = 50_000;

impl TransportFaultSpec {
    /// A persistent, always-on fault on every chip and batch.
    pub fn new(kind: TransportFaultKind, intensity: f64) -> Self {
        Self {
            kind,
            intensity,
            probability: 1.0,
            chips: None,
            batches: None,
        }
    }

    /// Sets the per-`(chip, batch, attempt)` strike probability.
    pub fn with_probability(mut self, probability: f64) -> Self {
        self.probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Restricts the fault to the half-open chip-key window
    /// `[start, end)`.
    pub fn chips(mut self, start: u64, end: u64) -> Self {
        self.chips = Some((start, end));
        self
    }

    /// Restricts the fault to the half-open per-chip batch-index window
    /// `[start, end)`.
    pub fn batches(mut self, start: u64, end: u64) -> Self {
        self.batches = Some((start, end));
        self
    }
}

/// What the transport did to one batch — the composed effect of every
/// entry that struck, for the driver to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportDisposition {
    /// How many copies arrive: `0` (dropped), `1` (normal) or `2`
    /// (duplicated). A drop composed with a duplicate is still a drop —
    /// the batch that never left cannot be redelivered.
    pub deliveries: u32,
    /// Total in-flight delay to charge against the deadline budget.
    pub delay_us: u64,
    /// The batch arrives after the chip's next batch; the driver swaps
    /// their ingestion order.
    pub reorder_with_next: bool,
    /// The `chip_id` arrives corrupted; the salt deterministically names
    /// the ghost chip the batch is misattributed to.
    pub corrupt_chip_salt: Option<u64>,
    /// Indices of the plan entries that struck, packed as a bitmask in
    /// entry order (plans are short; 64 entries is far beyond any sweep).
    pub struck_mask: u64,
}

impl TransportDisposition {
    /// The disposition of an untouched batch.
    pub fn clean() -> Self {
        Self {
            deliveries: 1,
            delay_us: 0,
            reorder_with_next: false,
            corrupt_chip_salt: None,
            struck_mask: 0,
        }
    }

    /// Whether any fault struck this batch.
    pub fn is_clean(&self) -> bool {
        self.struck_mask == 0
    }
}

/// A composed, seeded transport-fault schedule (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportPlan {
    seed: u64,
    entries: Vec<TransportFaultSpec>,
}

impl TransportPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            entries: Vec::new(),
        }
    }

    /// A plan with a single always-on fault (the sweep shape).
    pub fn single(seed: u64, kind: TransportFaultKind, intensity: f64) -> Self {
        Self::new(seed).with(TransportFaultSpec::new(kind, intensity))
    }

    /// Adds a scheduled fault.
    pub fn with(mut self, spec: TransportFaultSpec) -> Self {
        self.entries.push(spec);
        self
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults.
    pub fn entries(&self) -> &[TransportFaultSpec] {
        &self.entries
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves what the transport does to batch `batch_index` of chip
    /// `chip_key` on delivery `attempt` — a pure function of the plan
    /// seed and those keys. Entries compose in order; see
    /// [`TransportDisposition`] for the composition rules.
    pub fn disposition(
        &self,
        chip_key: u64,
        batch_index: u64,
        attempt: u32,
    ) -> TransportDisposition {
        let mut d = TransportDisposition::clean();
        let mut dropped = false;
        let mut duplicated = false;
        for (e, spec) in self.entries.iter().enumerate() {
            if spec.intensity <= 0.0 {
                continue;
            }
            if let Some((lo, hi)) = spec.chips {
                if chip_key < lo || chip_key >= hi {
                    continue;
                }
            }
            if let Some((lo, hi)) = spec.batches {
                if batch_index < lo || batch_index >= hi {
                    continue;
                }
            }
            let mut rng =
                StdRng::seed_from_u64(mix(self.seed, e as u64, chip_key, batch_index, attempt));
            if spec.probability < 1.0 && !rng.gen_bool(spec.probability) {
                continue;
            }
            match spec.kind {
                TransportFaultKind::BatchDrop => dropped = true,
                TransportFaultKind::BatchDuplicate => duplicated = true,
                TransportFaultKind::BatchReorder => d.reorder_with_next = true,
                TransportFaultKind::BatchDelay => {
                    let ceiling = (spec.intensity.clamp(0.0, 1.0) * MAX_DELAY_US as f64) as u64;
                    let drawn = rng.gen_range(0..=ceiling.max(1));
                    d.delay_us = d.delay_us.saturating_add(drawn);
                }
                TransportFaultKind::ChipIdCorruption => {
                    d.corrupt_chip_salt = Some(rng.gen::<u64>() | 1);
                }
            }
            if e < 64 {
                d.struck_mask |= 1 << e;
            }
        }
        d.deliveries = if dropped {
            0
        } else if duplicated {
            2
        } else {
            1
        };
        if !d.is_clean() {
            telemetry::counter("faults.transport_struck", 1);
        }
        d
    }
}

/// SplitMix64-style key mixing over the five-part realization key,
/// mirroring [`crate::plan`]'s mixer with an extra chip term.
fn mix(seed: u64, entry: u64, chip: u64, batch: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ (entry.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (chip.wrapping_add(1)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (batch.wrapping_add(1)).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ (u64::from(attempt).wrapping_add(1)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_clean() {
        let plan = TransportPlan::new(1);
        let d = plan.disposition(0, 0, 0);
        assert_eq!(d, TransportDisposition::clean());
        assert!(d.is_clean());
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = TransportFaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            [
                "batch_drop",
                "batch_duplicate",
                "batch_reorder",
                "batch_delay",
                "chip_id_corruption"
            ]
        );
    }

    #[test]
    fn chip_and_batch_windows_gate() {
        let plan = TransportPlan::new(2).with(
            TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0)
                .chips(10, 20)
                .batches(3, 5),
        );
        assert_eq!(plan.disposition(15, 3, 0).deliveries, 0);
        assert_eq!(plan.disposition(15, 2, 0).deliveries, 1);
        assert_eq!(plan.disposition(15, 5, 0).deliveries, 1);
        assert_eq!(plan.disposition(9, 3, 0).deliveries, 1);
        assert_eq!(plan.disposition(20, 4, 0).deliveries, 1);
    }

    #[test]
    fn drop_beats_duplicate() {
        let plan = TransportPlan::new(3)
            .with(TransportFaultSpec::new(
                TransportFaultKind::BatchDuplicate,
                1.0,
            ))
            .with(TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0));
        let d = plan.disposition(1, 1, 0);
        assert_eq!(d.deliveries, 0);
        assert_eq!(d.struck_mask, 0b11);
    }

    #[test]
    fn delay_scales_with_intensity_and_accumulates() {
        let strong = TransportPlan::single(4, TransportFaultKind::BatchDelay, 1.0);
        let weak = TransportPlan::single(4, TransportFaultKind::BatchDelay, 0.1);
        let max_strong = (0..100)
            .map(|b| strong.disposition(0, b, 0).delay_us)
            .max()
            .unwrap();
        let max_weak = (0..100)
            .map(|b| weak.disposition(0, b, 0).delay_us)
            .max()
            .unwrap();
        assert!(max_strong <= MAX_DELAY_US);
        assert!(max_weak <= MAX_DELAY_US / 10 + 1);
        assert!(max_strong > max_weak);
        let stacked = TransportPlan::new(4)
            .with(TransportFaultSpec::new(TransportFaultKind::BatchDelay, 1.0))
            .with(TransportFaultSpec::new(TransportFaultKind::BatchDelay, 1.0));
        let d = stacked.disposition(0, 7, 0);
        assert!(d.delay_us >= strong.disposition(0, 7, 0).delay_us);
    }

    #[test]
    fn corruption_salt_is_deterministic_and_nonzero() {
        let plan = TransportPlan::single(5, TransportFaultKind::ChipIdCorruption, 1.0);
        let a = plan.disposition(7, 0, 0).corrupt_chip_salt;
        let b = plan.disposition(7, 0, 0).corrupt_chip_salt;
        assert_eq!(a, b);
        assert!(a.is_some_and(|s| s != 0));
        // Different chips draw different ghosts (with overwhelming odds).
        assert_ne!(a, plan.disposition(8, 0, 0).corrupt_chip_salt);
    }

    #[test]
    fn probability_and_attempt_model_transient_faults() {
        let plan = TransportPlan::new(6).with(
            TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0).with_probability(0.4),
        );
        let drops = (0..200u64)
            .filter(|&b| plan.disposition(0, b, 0).deliveries == 0)
            .count();
        assert!((40..160).contains(&drops), "drop count {drops}");
        // A redelivery re-rolls the strike for the same batch.
        let outcome = |attempt| plan.disposition(0, 7, attempt).deliveries == 0;
        assert!((0..32).any(|a| outcome(a) != outcome(0)));
    }

    #[test]
    fn replay_is_bit_identical_across_a_mixed_plan() {
        let plan = TransportPlan::new(11)
            .with(TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0).with_probability(0.2))
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchDuplicate, 1.0)
                    .with_probability(0.2),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchReorder, 1.0)
                    .with_probability(0.2),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::BatchDelay, 0.7).with_probability(0.5),
            )
            .with(
                TransportFaultSpec::new(TransportFaultKind::ChipIdCorruption, 1.0)
                    .with_probability(0.1),
            );
        for chip in 0..8u64 {
            for batch in 0..32u64 {
                assert_eq!(
                    plan.disposition(chip, batch, 0),
                    plan.disposition(chip, batch, 0)
                );
            }
        }
    }
}
