//! # emtrust-faults
//!
//! Deterministic, seeded sensor-fault injection for the `emtrust`
//! runtime trust-evaluation framework (re-exported as `emtrust::faults`).
//!
//! The paper's framework is explicitly *post-deployment*: the on-chip EM
//! sensor and the data-analysis module must keep evaluating trust for the
//! chip's whole lifetime, which means the analysis side has to survive a
//! saturated ADC, a dropped sample window, or a dead sensor channel
//! without panicking and without silently inflating Euclidean distances
//! into false alarms. This crate supplies the *adversary* side of that
//! robustness story: a taxonomy of measurement faults ([`FaultKind`]),
//! each parameterized by a single `intensity` knob, composed into a
//! [`FaultPlan`] schedule that wraps trace acquisition so any experiment
//! replays under injected faults **bit-identically** for a fixed seed.
//!
//! Fault realizations are pure functions of
//! `(plan seed, entry index, trace index, attempt)` — never of wall
//! clock, worker identity, or global state — so a chaos run is exactly
//! as reproducible as a clean one. The `attempt` key models
//! re-acquisition: transient faults (probability < 1) re-roll per retry,
//! persistent ones keep striking.
//!
//! # Examples
//!
//! Inject ADC saturation into one trace of a two-trace campaign and
//! replay it bit-identically:
//!
//! ```
//! use emtrust_faults::{FaultKind, FaultPlan, FaultSpec};
//!
//! let plan = FaultPlan::new(7).with(FaultSpec::new(FaultKind::Saturation, 0.5).traces(1, 2));
//! let clean: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
//!
//! let mut t0 = clean.clone();
//! let mut t1 = clean.clone();
//! assert!(plan.apply(0, 0, None, &mut t0, 640e6).is_empty()); // not scheduled
//! assert_eq!(plan.apply(1, 0, None, &mut t1, 640e6).len(), 1); // clipped
//! assert_eq!(t0, clean);
//! assert_ne!(t1, clean);
//!
//! // Same seed, same keys: bit-identical replay.
//! let mut replay = clean.clone();
//! plan.apply(1, 0, None, &mut replay, 640e6);
//! assert_eq!(replay, t1);
//! ```

#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

pub mod model;
pub mod plan;
pub mod scope;
pub mod transport;

pub use model::FaultKind;
pub use plan::{FaultPlan, FaultSpec};
pub use scope::FaultyScope;
pub use transport::{TransportDisposition, TransportFaultKind, TransportFaultSpec, TransportPlan};
