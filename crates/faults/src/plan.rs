//! The fault schedule: which faults strike which traces, on which
//! channel, with what probability — all derived from one seed.

use crate::model::FaultKind;
use emtrust_silicon::Channel;
use emtrust_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault: a [`FaultKind`] at an intensity, optionally
/// gated to a trace-index window, a measurement channel, and a strike
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault family.
    pub kind: FaultKind,
    /// Severity knob in `(0, 1]` (see [`FaultKind`] for the per-family
    /// mapping to physical parameters).
    pub intensity: f64,
    /// Probability that the fault strikes a given `(trace, attempt)`.
    /// `1.0` models a persistent hardware condition; `< 1.0` a transient
    /// one that a retry can clear.
    pub probability: f64,
    /// Restrict the fault to one measurement channel (`None` = both).
    pub channel: Option<Channel>,
    /// Half-open `[start, end)` trace-index window (`None` = every
    /// trace).
    pub traces: Option<(u64, u64)>,
}

impl FaultSpec {
    /// A persistent, always-on fault on every trace and channel.
    pub fn new(kind: FaultKind, intensity: f64) -> Self {
        Self {
            kind,
            intensity,
            probability: 1.0,
            channel: None,
            traces: None,
        }
    }

    /// Sets the per-`(trace, attempt)` strike probability.
    pub fn with_probability(mut self, probability: f64) -> Self {
        self.probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Restricts the fault to one measurement channel.
    pub fn on_channel(mut self, channel: Channel) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Restricts the fault to the half-open trace-index window
    /// `[start, end)`.
    pub fn traces(mut self, start: u64, end: u64) -> Self {
        self.traces = Some((start, end));
        self
    }
}

/// A composed, seeded fault schedule.
///
/// `apply` corrupts one trace in place and is a pure function of
/// `(plan seed, entry index, trace index, attempt, channel)` — replaying
/// a campaign under the same plan is bit-identical, and a re-acquisition
/// (`attempt > 0`) re-rolls transient strikes without disturbing any
/// other trace's realization.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            entries: Vec::new(),
        }
    }

    /// A plan with a single always-on fault (the `exp_faults` sweep
    /// shape).
    pub fn single(seed: u64, kind: FaultKind, intensity: f64) -> Self {
        Self::new(seed).with(FaultSpec::new(kind, intensity))
    }

    /// Adds a scheduled fault.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.entries.push(spec);
        self
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults.
    pub fn entries(&self) -> &[FaultSpec] {
        &self.entries
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies every scheduled fault that gates onto
    /// `(trace_index, attempt, channel)` to `samples` in place, in entry
    /// order. Returns the indices of the entries that struck.
    ///
    /// `channel = None` means "channel-agnostic acquisition": only
    /// entries without a channel gate strike.
    pub fn apply(
        &self,
        trace_index: u64,
        attempt: u32,
        channel: Option<Channel>,
        samples: &mut [f64],
        _sample_rate_hz: f64,
    ) -> Vec<usize> {
        let mut struck = Vec::new();
        for (e, spec) in self.entries.iter().enumerate() {
            if let Some((lo, hi)) = spec.traces {
                if trace_index < lo || trace_index >= hi {
                    continue;
                }
            }
            match (spec.channel, channel) {
                (None, _) => {}
                (Some(want), Some(have)) if want == have => {}
                _ => continue,
            }
            let mut rng = StdRng::seed_from_u64(mix(self.seed, e as u64, trace_index, attempt));
            if spec.probability < 1.0 && !rng.gen_bool(spec.probability) {
                continue;
            }
            spec.kind.apply(samples, spec.intensity, &mut rng);
            struck.push(e);
        }
        if !struck.is_empty() {
            telemetry::counter("faults.injected", struck.len() as u64);
        }
        struck
    }
}

/// SplitMix64-style key mixing: decorrelates the per-realization RNG
/// streams of neighbouring entries, traces and attempts.
fn mix(seed: u64, entry: u64, trace: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ (entry.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (trace.wrapping_add(1)).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ (u64::from(attempt).wrapping_add(1)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<f64> {
        (0..256).map(|i| (i as f64 * 0.21).sin()).collect()
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::new(1);
        let mut s = base();
        assert!(plan.apply(0, 0, None, &mut s, 1.0).is_empty());
        assert_eq!(s, base());
    }

    #[test]
    fn trace_window_gates_application() {
        let plan = FaultPlan::new(1).with(FaultSpec::new(FaultKind::Flatline, 1.0).traces(2, 4));
        for (idx, hits) in [(0, 0), (1, 0), (2, 1), (3, 1), (4, 0)] {
            let mut s = base();
            assert_eq!(
                plan.apply(idx, 0, None, &mut s, 1.0).len(),
                hits,
                "trace {idx}"
            );
        }
    }

    #[test]
    fn channel_gates_application() {
        let plan = FaultPlan::new(1)
            .with(FaultSpec::new(FaultKind::Flatline, 1.0).on_channel(Channel::OnChipSensor));
        let mut s = base();
        assert_eq!(
            plan.apply(0, 0, Some(Channel::OnChipSensor), &mut s, 1.0)
                .len(),
            1
        );
        let mut s = base();
        assert!(plan
            .apply(0, 0, Some(Channel::ExternalProbe), &mut s, 1.0)
            .is_empty());
        // A channel-gated entry never strikes a channel-agnostic caller.
        let mut s = base();
        assert!(plan.apply(0, 0, None, &mut s, 1.0).is_empty());
    }

    #[test]
    fn probability_and_attempt_key_model_transient_faults() {
        let plan = FaultPlan::new(3)
            .with(FaultSpec::new(FaultKind::GlitchBurst, 1.0).with_probability(0.4));
        let strikes: usize = (0..200u64)
            .map(|i| {
                let mut s = base();
                plan.apply(i, 0, None, &mut s, 1.0).len()
            })
            .sum();
        assert!((40..160).contains(&strikes), "strike count {strikes}");
        // A retry (attempt bump) re-rolls the strike for the same trace.
        let outcome = |attempt| {
            let mut s = base();
            !plan.apply(7, attempt, None, &mut s, 1.0).is_empty()
        };
        let differs = (0..32).any(|a| outcome(a) != outcome(0));
        assert!(differs, "attempts must draw independent strikes");
    }

    #[test]
    fn replay_is_bit_identical() {
        let plan = FaultPlan::new(11)
            .with(FaultSpec::new(FaultKind::GlitchBurst, 0.8))
            .with(FaultSpec::new(FaultKind::ClockJitter, 0.6))
            .with(FaultSpec::new(FaultKind::Dropout, 0.4));
        let run = || {
            let mut s = base();
            plan.apply(5, 1, Some(Channel::OnChipSensor), &mut s, 1.0);
            s
        };
        let (a, b) = (run(), run());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn entries_compose_in_order() {
        let plan = FaultPlan::new(1)
            .with(FaultSpec::new(FaultKind::GainDrift, 0.5))
            .with(FaultSpec::new(FaultKind::Saturation, 0.5));
        let mut s = base();
        assert_eq!(plan.apply(0, 0, None, &mut s, 1.0), vec![0, 1]);
    }
}
