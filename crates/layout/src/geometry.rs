//! Planar geometry primitives in micrometres.

/// A point in the die plane (micrometres, origin at the die's south-west
/// corner).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in µm.
    pub x: f64,
    /// Y coordinate in µm.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A straight wire segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length.
    pub fn length(self) -> f64 {
        self.a.distance_to(self.b)
    }

    /// Midpoint.
    pub fn midpoint(self) -> Point {
        Point::new((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)
    }
}

/// An axis-aligned rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// South-west corner.
    pub min: Point,
    /// North-east corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing the order.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle centred at `c` with the given half-extents.
    pub fn centered(c: Point, half_w: f64, half_h: f64) -> Self {
        Self::new(
            Point::new(c.x - half_w, c.y - half_h),
            Point::new(c.x + half_w, c.y + half_h),
        )
    }

    /// Width along X.
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along Y.
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in µm².
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    pub fn center(self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Euclidean distance from `p` to the rectangle (zero inside or on
    /// the boundary).
    pub fn distance_to(self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(p.x - self.max.x).max(0.0);
        let dy = (self.min.y - p.y).max(p.y - self.max.y).max(0.0);
        dx.hypot(dy)
    }

    /// The four boundary segments, counter-clockwise from the SW corner.
    pub fn boundary(self) -> [Segment; 4] {
        let sw = self.min;
        let se = Point::new(self.max.x, self.min.y);
        let ne = self.max;
        let nw = Point::new(self.min.x, self.max.y);
        [
            Segment::new(sw, se),
            Segment::new(se, ne),
            Segment::new(ne, nw),
            Segment::new(nw, sw),
        ]
    }
}

/// Total length of a polyline given as consecutive segments.
pub fn polyline_length(segments: &[Segment]) -> f64 {
    segments.iter().map(|s| s.length()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        assert!((Point::new(0.0, 0.0).distance_to(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_length_and_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(5.0, 0.0));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, 5.0), Point::new(1.0, 2.0));
        assert_eq!(r.min, Point::new(1.0, 2.0));
        assert_eq!(r.max, Point::new(5.0, 5.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 12.0);
    }

    #[test]
    fn rect_contains_boundary_and_interior() {
        let r = Rect::centered(Point::new(0.0, 0.0), 1.0, 1.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(1.1, 0.0)));
    }

    #[test]
    fn rect_distance_is_zero_inside_and_euclidean_outside() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(r.distance_to(Point::new(1.0, 0.5)), 0.0);
        assert_eq!(r.distance_to(Point::new(2.0, 1.0)), 0.0);
        assert!((r.distance_to(Point::new(4.0, 0.5)) - 2.0).abs() < 1e-12);
        assert!((r.distance_to(Point::new(5.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rect_boundary_is_closed_and_ccw() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let b = r.boundary();
        // Consecutive segments connect.
        for i in 0..4 {
            assert_eq!(b[i].b, b[(i + 1) % 4].a);
        }
        assert!((polyline_length(&b) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn centered_rect_is_symmetric() {
        let r = Rect::centered(Point::new(10.0, 20.0), 3.0, 4.0);
        assert_eq!(r.center(), Point::new(10.0, 20.0));
        assert_eq!(r.width(), 6.0);
        assert_eq!(r.height(), 8.0);
    }
}
