//! The external EM probe (paper §III-C, Fig. 2(a)).
//!
//! The paper X-rays a LANGER RF probe: "several metal coils with the same
//! diameter at the top end of the probe". The model is a stack of
//! identical circular turns centred over the die at package standoff
//! height — "the external probe is set 100 µm above the circuit, and the
//! parameter is set with reference to the real thickness of packaging of
//! the chip" (§IV-B).

use crate::floorplan::Die;
use crate::geometry::Point;
use crate::LayoutError;

/// Standoff height of the external probe above the transistor plane
/// (package thickness), in µm.
pub const PACKAGE_STANDOFF_UM: f64 = 100.0;

/// A LANGER-style external EM probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternalProbe {
    center: Point,
    radius_um: f64,
    turns: usize,
    z_um: f64,
}

impl ExternalProbe {
    /// The default probe for `die`: centred over it, 6 identical turns at
    /// package standoff height. The coil radius follows a LANGER RF-U
    /// class tip (≈2.5 mm diameter) — much larger than the die, which is
    /// precisely why the probe has no spatial selectivity.
    pub fn over_die(die: Die) -> Self {
        Self {
            center: die.center(),
            radius_um: (2.5 * die.width_um().max(die.height_um())).max(1250.0),
            turns: 6,
            z_um: PACKAGE_STANDOFF_UM,
        }
    }

    /// Sets the standoff height (µm) — the ablation knob for
    /// probe-distance studies.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `z_um <= 0`.
    pub fn with_standoff(mut self, z_um: f64) -> Result<Self, LayoutError> {
        if z_um <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                what: "probe standoff must be positive",
            });
        }
        self.z_um = z_um;
        Ok(self)
    }

    /// Sets the turn count.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `turns == 0`.
    pub fn with_turns(mut self, turns: usize) -> Result<Self, LayoutError> {
        if turns == 0 {
            return Err(LayoutError::InvalidParameter {
                what: "probe needs at least one turn",
            });
        }
        self.turns = turns;
        Ok(self)
    }

    /// Sets the coil radius (µm).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `radius_um <= 0`.
    pub fn with_radius(mut self, radius_um: f64) -> Result<Self, LayoutError> {
        if radius_um <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                what: "probe radius must be positive",
            });
        }
        self.radius_um = radius_um;
        Ok(self)
    }

    /// Probe centre in die coordinates.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Coil radius in µm.
    pub fn radius_um(&self) -> f64 {
        self.radius_um
    }

    /// Number of identical turns.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// Height above the transistor plane in µm.
    pub fn z_um(&self) -> f64 {
        self.z_um
    }

    /// Flux-linkage multiplicity at a point: all turns share one diameter,
    /// so a point is enclosed by every turn or by none.
    pub fn turns_enclosing(&self, x_um: f64, y_um: f64) -> u32 {
        if Point::new(x_um, y_um).distance_to(self.center) <= self.radius_um {
            self.turns as u32
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Die {
        Die::square(600.0).unwrap()
    }

    #[test]
    fn default_probe_covers_the_die() {
        let p = ExternalProbe::over_die(die());
        assert_eq!(p.center(), Point::new(300.0, 300.0));
        assert_eq!(p.radius_um(), 1500.0);
        assert_eq!(p.z_um(), PACKAGE_STANDOFF_UM);
        assert_eq!(p.turns_enclosing(300.0, 300.0), 6);
        assert_eq!(p.turns_enclosing(300.0, 599.0), 6);
    }

    #[test]
    fn outside_the_radius_no_turns_enclose() {
        let p = ExternalProbe::over_die(die());
        assert_eq!(p.turns_enclosing(2000.0, 300.0), 0);
        assert_eq!(p.turns_enclosing(-2000.0, -10.0), 0);
    }

    #[test]
    fn enclosure_is_uniform_inside() {
        // Unlike the spiral, the external probe has no spatial selectivity.
        let p = ExternalProbe::over_die(die());
        let a = p.turns_enclosing(300.0, 300.0);
        let b = p.turns_enclosing(450.0, 150.0);
        assert_eq!(a, b);
    }

    #[test]
    fn builders_validate() {
        let p = ExternalProbe::over_die(die());
        assert!(p.clone().with_standoff(0.0).is_err());
        assert!(p.clone().with_turns(0).is_err());
        assert!(p.clone().with_radius(-1.0).is_err());
        let q = p
            .with_standoff(500.0)
            .unwrap()
            .with_turns(3)
            .unwrap()
            .with_radius(200.0)
            .unwrap();
        assert_eq!(q.z_um(), 500.0);
        assert_eq!(q.turns(), 3);
        assert_eq!(q.turns_enclosing(300.0, 450.0), 3);
    }
}
