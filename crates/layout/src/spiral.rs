//! The on-chip spiral EM sensor (paper §III-C, Fig. 2(b)).
//!
//! "The proposed on-chip EM sensor is designed as a coil starting from the
//! center, extending to the corner and covering the entire circuit. […]
//! the width of the coils is set not to violate the design rules of the
//! minimum width of the wires defined in the technology library. […] the
//! effectiveness of the detection using the proposed EM sensor equals the
//! accumulation of all the coils with gradually increasing diameters."
//!
//! Geometrically the sensor is a square spiral on the topmost metal layer
//! (M6 in the 180 nm flow). For flux-linkage computation, turn `i` is
//! modelled as a centred rectangle of linearly growing half-extent; a point
//! enclosed by `k` turns contributes `k`-fold to the coil's flux linkage —
//! exactly the "accumulation of all the coils" the paper describes.

use crate::floorplan::Die;
use crate::geometry::{polyline_length, Point, Rect, Segment};
use crate::LayoutError;

/// Minimum metal width of the 180 nm top layer, in µm.
pub const MIN_WIDTH_UM: f64 = 0.44;

/// Height of the M6 layer above the transistor plane, in µm.
pub const M6_HEIGHT_UM: f64 = 5.0;

/// The one-way spiral on-chip EM sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiralSensor {
    die: Die,
    turns: usize,
    width_um: f64,
    z_um: f64,
    /// Spacing between consecutive turns (pitch), derived from die/turns.
    pitch_um: f64,
    /// Margin kept from the die edge.
    margin_um: f64,
}

impl SpiralSensor {
    /// Builds the paper's default sensor for `die`: 20 turns, minimum
    /// metal width, M6 height, covering the die from centre to corner.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SpiralSensor::with_turns`].
    pub fn for_die(die: Die) -> Result<Self, LayoutError> {
        Self::with_turns(die, 20)
    }

    /// Builds a sensor with a custom turn count (the knob the paper's
    /// future work proposes tuning for SNR).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `turns == 0` or the
    /// resulting pitch would violate the minimum width/spacing rule.
    pub fn with_turns(die: Die, turns: usize) -> Result<Self, LayoutError> {
        if turns == 0 {
            return Err(LayoutError::InvalidParameter {
                what: "spiral needs at least one turn",
            });
        }
        let margin = 2.0;
        let half = die.width_um().min(die.height_um()) / 2.0 - margin;
        let pitch = half / turns as f64;
        if pitch < 2.0 * MIN_WIDTH_UM {
            return Err(LayoutError::InvalidParameter {
                what: "too many turns: pitch violates minimum width/spacing",
            });
        }
        Ok(Self {
            die,
            turns,
            width_um: MIN_WIDTH_UM,
            z_um: M6_HEIGHT_UM,
            pitch_um: pitch,
            margin_um: margin,
        })
    }

    /// Number of turns.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// Wire width in µm (respects the minimum-width rule).
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Height of the coil plane above the transistors, in µm.
    pub fn z_um(&self) -> f64 {
        self.z_um
    }

    /// Turn-to-turn pitch in µm.
    pub fn pitch_um(&self) -> f64 {
        self.pitch_um
    }

    /// The die the sensor covers.
    pub fn die(&self) -> Die {
        self.die
    }

    /// The rectangle modelling turn `i` (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if `i >= turns`.
    pub fn turn_rect(&self, i: usize) -> Rect {
        assert!(i < self.turns, "turn index out of range");
        let half = (i as f64 + 1.0) * self.pitch_um;
        Rect::centered(self.die.center(), half, half)
    }

    /// How many turns enclose the point `(x_um, y_um)` — the flux-linkage
    /// multiplicity at that location.
    ///
    /// # Examples
    ///
    /// ```
    /// use emtrust_layout::floorplan::Die;
    /// use emtrust_layout::spiral::SpiralSensor;
    ///
    /// let die = Die::square(600.0)?;
    /// let coil = SpiralSensor::for_die(die)?;
    /// // The die centre is enclosed by every turn…
    /// assert_eq!(coil.turns_enclosing(300.0, 300.0), coil.turns() as u32);
    /// // …while a corner is enclosed by none.
    /// assert_eq!(coil.turns_enclosing(1.0, 1.0), 0);
    /// # Ok::<(), emtrust_layout::LayoutError>(())
    /// ```
    pub fn turns_enclosing(&self, x_um: f64, y_um: f64) -> u32 {
        let c = self.die.center();
        let d = (x_um - c.x).abs().max((y_um - c.y).abs());
        // Turn i (half-extent (i+1)·pitch) encloses the point iff
        // (i+1)·pitch >= d, boundary inclusive.
        let not_enclosing = ((d / self.pitch_um).ceil() as usize).max(1) - 1;
        (self.turns.saturating_sub(not_enclosing)) as u32
    }

    /// The spiral as a connected polyline (for length/resistance and for
    /// rendering the layout figure). One-way: starts at the centre
    /// (`Sensor In`), ends at the outer corner (`Sensor Out`).
    pub fn segments(&self) -> Vec<Segment> {
        let c = self.die.center();
        let mut pts = vec![Point::new(c.x, c.y)];
        // Square spiral: for each turn, walk the four sides at growing
        // half-extent, stepping outward between turns.
        for i in 0..self.turns {
            let h_prev = i as f64 * self.pitch_um;
            let h = (i as f64 + 1.0) * self.pitch_um;
            pts.push(Point::new(c.x + h, c.y - h_prev)); // step east
            pts.push(Point::new(c.x + h, c.y + h)); // north
            pts.push(Point::new(c.x - h, c.y + h)); // west
            pts.push(Point::new(c.x - h, c.y - h)); // south
            pts.push(Point::new(c.x + h, c.y - h)); // east, closing the turn
        }
        pts.windows(2).map(|w| Segment::new(w[0], w[1])).collect()
    }

    /// Total wire length in µm.
    pub fn wire_length_um(&self) -> f64 {
        polyline_length(&self.segments())
    }

    /// Series resistance of the coil, in ohms, using a typical top-metal
    /// sheet resistance of 0.04 Ω/□.
    pub fn resistance_ohm(&self) -> f64 {
        const SHEET_OHM_PER_SQ: f64 = 0.04;
        SHEET_OHM_PER_SQ * self.wire_length_um() / self.width_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die600() -> Die {
        Die::square(600.0).unwrap()
    }

    #[test]
    fn default_sensor_covers_the_die() {
        let coil = SpiralSensor::for_die(die600()).unwrap();
        let outer = coil.turn_rect(coil.turns() - 1);
        // Outer turn reaches near the die edge.
        assert!(outer.width() > 0.9 * 600.0);
        assert!(outer.width() <= 600.0);
    }

    #[test]
    fn enclosure_decreases_outward() {
        let coil = SpiralSensor::for_die(die600()).unwrap();
        let c = 300.0;
        let mut last = u32::MAX;
        for r in [0.0, 50.0, 100.0, 150.0, 200.0, 250.0, 290.0] {
            let n = coil.turns_enclosing(c + r, c);
            assert!(n <= last, "enclosure must be monotone, r={r}");
            last = n;
        }
        assert_eq!(coil.turns_enclosing(c, c), 20);
        assert_eq!(coil.turns_enclosing(599.0, 599.0), 0);
    }

    #[test]
    fn enclosure_matches_turn_rects() {
        let coil = SpiralSensor::with_turns(die600(), 10).unwrap();
        let p = Point::new(330.0, 310.0);
        let by_rects = (0..coil.turns())
            .filter(|&i| coil.turn_rect(i).contains(p))
            .count() as u32;
        assert_eq!(coil.turns_enclosing(p.x, p.y), by_rects);
    }

    #[test]
    fn spiral_polyline_is_connected_and_one_way() {
        let coil = SpiralSensor::with_turns(die600(), 5).unwrap();
        let segs = coil.segments();
        for w in segs.windows(2) {
            assert_eq!(w[0].b, w[1].a, "polyline must be connected");
        }
        // Starts at the centre.
        assert_eq!(segs[0].a, Point::new(300.0, 300.0));
        // Ends on the outermost turn (corner region).
        let end = segs.last().unwrap().b;
        assert!(end.distance_to(Point::new(300.0, 300.0)) > 200.0);
    }

    #[test]
    fn wire_length_grows_with_turns() {
        let short = SpiralSensor::with_turns(die600(), 5).unwrap();
        let long = SpiralSensor::with_turns(die600(), 20).unwrap();
        assert!(long.wire_length_um() > 2.0 * short.wire_length_um());
        assert!(long.resistance_ohm() > short.resistance_ohm());
    }

    #[test]
    fn width_respects_the_design_rule() {
        let coil = SpiralSensor::for_die(die600()).unwrap();
        assert!(coil.width_um() >= MIN_WIDTH_UM);
    }

    #[test]
    fn invalid_turn_counts_are_rejected() {
        assert!(SpiralSensor::with_turns(die600(), 0).is_err());
        // 600/2 - 2 = 298 µm half-extent; pitch < 0.88 µm fails.
        assert!(SpiralSensor::with_turns(die600(), 400).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn turn_rect_bounds_are_checked() {
        let coil = SpiralSensor::with_turns(die600(), 5).unwrap();
        let _ = coil.turn_rect(5);
    }
}
