//! Die sizing, deterministic row placement and the pad ring.
//!
//! The paper's die (Fig. 3) has the AES core in the main area, the four
//! Trojans in a strip beside it, the spiral sensor over everything, and
//! dedicated pads (VDD, VSS, `Sensor In`, `Sensor Out`, signal ports,
//! Trojan control). The placer here reproduces that organization from
//! module tags: cells tagged `aes/...` fill the western core region, cells
//! tagged `trojanN/...` stack into the eastern strip, one band per Trojan.

use crate::geometry::{Point, Rect};
use crate::LayoutError;
use emtrust_netlist::graph::{CellId, Netlist};
use emtrust_netlist::library::Library;

/// Standard-cell row height for the 180 nm-class library, in µm.
pub const ROW_HEIGHT_UM: f64 = 5.0;

/// The die outline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Die {
    /// Core (placeable) area; the pad ring sits outside it.
    pub core: Rect,
}

impl Die {
    /// A square die with the given core side length.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `side_um <= 0`.
    pub fn square(side_um: f64) -> Result<Self, LayoutError> {
        if side_um <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                what: "die side must be positive",
            });
        }
        Ok(Self {
            core: Rect::new(Point::new(0.0, 0.0), Point::new(side_um, side_um)),
        })
    }

    /// Sizes a square die to fit `netlist` at the given `utilization`
    /// (fraction of core area occupied by cells, e.g. 0.7).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `utilization` is not in
    /// `(0, 1]`.
    pub fn for_netlist(
        netlist: &Netlist,
        library: &Library,
        utilization: f64,
    ) -> Result<Self, LayoutError> {
        if !(0.0..=1.0).contains(&utilization) || utilization == 0.0 {
            return Err(LayoutError::InvalidParameter {
                what: "utilization must be in (0, 1]",
            });
        }
        let area: f64 = emtrust_netlist::library::netlist_area_um2(netlist, library);
        let side = (area / utilization).sqrt().ceil();
        // Round up to a whole number of rows.
        let side = (side / ROW_HEIGHT_UM).ceil() * ROW_HEIGHT_UM;
        Self::square(side)
    }

    /// Core width in µm.
    pub fn width_um(&self) -> f64 {
        self.core.width()
    }

    /// Core height in µm.
    pub fn height_um(&self) -> f64 {
        self.core.height()
    }

    /// Core centre.
    pub fn center(&self) -> Point {
        self.core.center()
    }

    /// Partitions the core into a `rows × cols` grid of equal tiles —
    /// the sub-sensor footprints of an EM sensor array. Tiles are
    /// returned row-major from the south-west corner; shared edges are
    /// computed from the same fractional boundaries, so the tiles cover
    /// the core exactly (no gaps, no overlap beyond zero-width edges).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `rows == 0` or
    /// `cols == 0`.
    pub fn tiles(&self, rows: usize, cols: usize) -> Result<Vec<Rect>, LayoutError> {
        if rows == 0 || cols == 0 {
            return Err(LayoutError::InvalidParameter {
                what: "tile grid needs at least one row and one column",
            });
        }
        let x = |c: usize| self.core.min.x + self.core.width() * c as f64 / cols as f64;
        let y = |r: usize| self.core.min.y + self.core.height() * r as f64 / rows as f64;
        let mut tiles = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                tiles.push(Rect::new(
                    Point::new(x(c), y(r)),
                    Point::new(x(c + 1), y(r + 1)),
                ));
            }
        }
        Ok(tiles)
    }
}

/// Pad functions on the pad ring (paper Figs. 3 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PadKind {
    /// Core supply.
    Vdd,
    /// Core ground.
    Vss,
    /// Start of the sensor coil (paper `Sensor In`).
    SensorIn,
    /// End of the sensor coil (paper `Sensor Out`).
    SensorOut,
    /// Functional I/O (pt/key/ct/start/done).
    Signal,
    /// Trojan trigger control.
    TrojanControl,
}

/// A pad instance on the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pad {
    /// Pad function.
    pub kind: PadKind,
    /// Pad centre location.
    pub location: Point,
}

/// A fully placed design.
#[derive(Debug, Clone)]
pub struct Floorplan {
    die: Die,
    /// Cell locations indexed by [`CellId::index`].
    locations: Vec<Point>,
    /// Region assigned to each top-level block, for reporting.
    regions: Vec<(String, Rect)>,
    pads: Vec<Pad>,
}

impl Floorplan {
    /// Places `netlist` on `die`: `aes` cells fill the west core region in
    /// serpentine rows; each `trojanN` block gets a band of the east strip;
    /// untagged cells follow the AES region.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DieTooSmall`] if the cells do not fit.
    pub fn place(netlist: &Netlist, library: &Library, die: Die) -> Result<Self, LayoutError> {
        let total_area = emtrust_netlist::library::netlist_area_um2(netlist, library);
        if total_area > die.core.area() {
            return Err(LayoutError::DieTooSmall {
                required_um2: total_area,
                available_um2: die.core.area(),
            });
        }

        // Partition by top-level tag.
        let top_tag = |cell: CellId| -> String {
            let path = netlist.module_path(netlist.cell(cell).module());
            path.split('/').next().unwrap_or("").to_string()
        };
        let mut trojan_tags: Vec<String> = netlist
            .cells()
            .map(|(id, _)| top_tag(id))
            .filter(|t| t.starts_with("trojan"))
            .collect();
        trojan_tags.sort();
        trojan_tags.dedup();

        // East strip width proportional to the Trojans' area share.
        let trojan_area: f64 = netlist
            .cells()
            .filter(|(id, _)| top_tag(*id).starts_with("trojan"))
            .map(|(_, c)| library.electrical(c.kind()).area_um2)
            .sum();
        let strip_frac = if trojan_area > 0.0 {
            // 1.8x head-room over the exact share, clamped.
            (1.8 * trojan_area / total_area).clamp(0.06, 0.35)
        } else {
            0.0
        };
        let strip_w = die.width_um() * strip_frac;
        let main_region = Rect::new(
            die.core.min,
            Point::new(die.core.max.x - strip_w, die.core.max.y),
        );
        let strip_region = Rect::new(
            Point::new(die.core.max.x - strip_w, die.core.min.y),
            die.core.max,
        );

        let mut regions = vec![("aes".to_string(), main_region)];
        let mut locations = vec![Point::default(); netlist.cell_count()];

        // Place AES + untagged cells in the main region.
        let main_cells: Vec<CellId> = netlist
            .cells()
            .filter(|(id, _)| !top_tag(*id).starts_with("trojan"))
            .map(|(id, _)| id)
            .collect();
        Self::fill_rows(netlist, library, main_region, &main_cells, &mut locations)?;

        // Each Trojan gets a horizontal band of the strip.
        if !trojan_tags.is_empty() {
            let band_h = strip_region.height() / trojan_tags.len() as f64;
            for (i, tag) in trojan_tags.iter().enumerate() {
                let band = Rect::new(
                    Point::new(strip_region.min.x, strip_region.min.y + i as f64 * band_h),
                    Point::new(
                        strip_region.max.x,
                        strip_region.min.y + (i as f64 + 1.0) * band_h,
                    ),
                );
                let cells: Vec<CellId> = netlist
                    .cells()
                    .filter(|(id, _)| top_tag(*id) == *tag)
                    .map(|(id, _)| id)
                    .collect();
                Self::fill_rows(netlist, library, band, &cells, &mut locations)?;
                regions.push((tag.clone(), band));
            }
        }

        let pads = Self::pad_ring(die, !trojan_tags.is_empty());
        Ok(Self {
            die,
            locations,
            regions,
            pads,
        })
    }

    fn fill_rows(
        netlist: &Netlist,
        library: &Library,
        region: Rect,
        cells: &[CellId],
        locations: &mut [Point],
    ) -> Result<(), LayoutError> {
        let mut x = region.min.x;
        let mut y = region.min.y + ROW_HEIGHT_UM / 2.0;
        for &id in cells {
            let width = library.electrical(netlist.cell(id).kind()).area_um2 / ROW_HEIGHT_UM;
            if x + width > region.max.x {
                x = region.min.x;
                y += ROW_HEIGHT_UM;
                if y > region.max.y {
                    return Err(LayoutError::DieTooSmall {
                        required_um2: cells
                            .iter()
                            .map(|&c| library.electrical(netlist.cell(c).kind()).area_um2)
                            .sum(),
                        available_um2: region.area(),
                    });
                }
            }
            locations[id.index()] = Point::new(x + width / 2.0, y);
            x += width;
        }
        Ok(())
    }

    fn pad_ring(die: Die, with_trojan_control: bool) -> Vec<Pad> {
        let w = die.width_um();
        let h = die.height_um();
        let mut pads = vec![
            Pad {
                kind: PadKind::Vdd,
                location: Point::new(-20.0, h * 0.75),
            },
            Pad {
                kind: PadKind::Vss,
                location: Point::new(-20.0, h * 0.25),
            },
            Pad {
                kind: PadKind::SensorIn,
                location: Point::new(w * 0.25, h + 20.0),
            },
            Pad {
                kind: PadKind::SensorOut,
                location: Point::new(w * 0.75, h + 20.0),
            },
        ];
        for i in 0..8 {
            pads.push(Pad {
                kind: PadKind::Signal,
                location: Point::new(w * (i as f64 + 0.5) / 8.0, -20.0),
            });
        }
        if with_trojan_control {
            for i in 0..4 {
                pads.push(Pad {
                    kind: PadKind::TrojanControl,
                    location: Point::new(w + 20.0, h * (i as f64 + 0.5) / 4.0),
                });
            }
        }
        pads
    }

    /// The die.
    pub fn die(&self) -> Die {
        self.die
    }

    /// Location of a placed cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn location(&self, cell: CellId) -> Point {
        self.locations[cell.index()]
    }

    /// All cell locations, indexed by [`CellId::index`].
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// Named block regions (`aes`, `trojan1`, ...).
    pub fn regions(&self) -> &[(String, Rect)] {
        &self.regions
    }

    /// The region containing the die position, if any (regions do not
    /// overlap; points on a shared edge report the first match in
    /// [`Self::regions`] order).
    pub fn region_at(&self, x_um: f64, y_um: f64) -> Option<&str> {
        let p = Point::new(x_um, y_um);
        self.regions
            .iter()
            .find(|(_, rect)| rect.contains(p))
            .map(|(name, _)| name.as_str())
    }

    /// All regions ranked by distance from the die position, nearest
    /// first (containing regions have distance zero) — the localization
    /// step that maps an anomaly centroid back to a placed module. Ties
    /// keep [`Self::regions`] order, which is deterministic.
    pub fn regions_by_distance(&self, x_um: f64, y_um: f64) -> Vec<(&str, f64)> {
        let p = Point::new(x_um, y_um);
        let mut ranked: Vec<(&str, f64)> = self
            .regions
            .iter()
            .map(|(name, rect)| (name.as_str(), rect.distance_to(p)))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }

    /// The nearest region to a die position (see
    /// [`Self::regions_by_distance`]); `None` only for an empty netlist.
    pub fn nearest_region(&self, x_um: f64, y_um: f64) -> Option<&str> {
        self.regions_by_distance(x_um, y_um)
            .first()
            .map(|&(name, _)| name)
    }

    /// The pad ring.
    pub fn pads(&self) -> &[Pad] {
        &self.pads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_netlist::graph::Netlist;

    fn tagged_netlist(aes_cells: usize, trojan_cells: usize) -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.push_module("aes");
        let mut last = a;
        for _ in 0..aes_cells {
            last = n.not(last);
        }
        n.pop_module();
        n.push_module("trojan1");
        for _ in 0..trojan_cells {
            last = n.not(last);
        }
        n.pop_module();
        n.mark_output("y", last);
        n
    }

    #[test]
    fn die_sizing_fits_the_netlist() {
        let n = tagged_netlist(500, 50);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.7).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        assert_eq!(fp.locations().len(), 550);
    }

    #[test]
    fn cells_stay_inside_their_regions() {
        let n = tagged_netlist(400, 60);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.6).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        let aes_region = fp.regions()[0].1;
        let trojan_region = fp.regions()[1].1;
        for (id, cell) in n.cells() {
            let p = fp.location(id);
            let tag = n.module_path(cell.module());
            if tag.starts_with("trojan") {
                assert!(trojan_region.contains(p), "{tag} cell at {p:?}");
            } else {
                assert!(aes_region.contains(p), "{tag} cell at {p:?}");
            }
        }
    }

    #[test]
    fn trojans_occupy_the_east_strip() {
        let n = tagged_netlist(400, 60);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.6).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        let (name, strip) = &fp.regions()[1];
        assert_eq!(name, "trojan1");
        assert!(strip.min.x > fp.die().width_um() / 2.0);
    }

    #[test]
    fn too_small_die_is_rejected() {
        let n = tagged_netlist(500, 0);
        let lib = Library::generic_180nm();
        let die = Die::square(10.0).unwrap();
        assert!(matches!(
            Floorplan::place(&n, &lib, die),
            Err(LayoutError::DieTooSmall { .. })
        ));
    }

    #[test]
    fn pad_ring_has_sensor_pads() {
        let n = tagged_netlist(100, 10);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.5).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        let kinds: Vec<PadKind> = fp.pads().iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PadKind::SensorIn));
        assert!(kinds.contains(&PadKind::SensorOut));
        assert!(kinds.contains(&PadKind::Vdd));
        assert!(kinds.contains(&PadKind::TrojanControl));
    }

    #[test]
    fn golden_netlist_has_no_trojan_region_or_control_pads() {
        let n = tagged_netlist(100, 0);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.5).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        assert_eq!(fp.regions().len(), 1);
        assert!(!fp.pads().iter().any(|p| p.kind == PadKind::TrojanControl));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Die::square(0.0).is_err());
        assert!(Die::square(-5.0).is_err());
        let n = tagged_netlist(10, 0);
        let lib = Library::generic_180nm();
        assert!(Die::for_netlist(&n, &lib, 0.0).is_err());
        assert!(Die::for_netlist(&n, &lib, 1.5).is_err());
    }

    #[test]
    fn placement_is_deterministic() {
        let n = tagged_netlist(200, 30);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.6).unwrap();
        let a = Floorplan::place(&n, &lib, die).unwrap();
        let b = Floorplan::place(&n, &lib, die).unwrap();
        assert_eq!(a.locations(), b.locations());
    }

    #[test]
    fn tiles_partition_the_core_exactly() {
        let die = Die::square(600.0).unwrap();
        let tiles = die.tiles(3, 2).unwrap();
        assert_eq!(tiles.len(), 6);
        let total: f64 = tiles.iter().map(|t| t.area()).sum();
        assert!((total - die.core.area()).abs() < 1e-6);
        // Row-major from the south-west corner.
        assert_eq!(tiles[0].min, die.core.min);
        assert_eq!(tiles[5].max, die.core.max);
        // Shared edges come from the same fractional boundary.
        assert_eq!(tiles[0].max.x, tiles[1].min.x);
        assert_eq!(tiles[0].max.y, tiles[2].min.y);
        assert!(die.tiles(0, 2).is_err());
        assert!(die.tiles(2, 0).is_err());
    }

    #[test]
    fn single_tile_is_the_whole_core() {
        let die = Die::square(480.0).unwrap();
        let tiles = die.tiles(1, 1).unwrap();
        assert_eq!(tiles, vec![die.core]);
    }

    #[test]
    fn region_lookup_and_distance_ranking() {
        let n = tagged_netlist(400, 60);
        let lib = Library::generic_180nm();
        let die = Die::for_netlist(&n, &lib, 0.6).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        let (aes_name, aes_rect) = (&fp.regions()[0].0, fp.regions()[0].1);
        let c = aes_rect.center();
        assert_eq!(fp.region_at(c.x, c.y), Some(aes_name.as_str()));
        assert_eq!(fp.nearest_region(c.x, c.y), Some(aes_name.as_str()));
        // A point inside the trojan band ranks its own region first.
        let (t_name, t_rect) = (&fp.regions()[1].0, fp.regions()[1].1);
        let tc = t_rect.center();
        assert_eq!(t_name, "trojan1");
        let ranked = fp.regions_by_distance(tc.x, tc.y);
        assert_eq!(ranked[0], (t_name.as_str(), 0.0));
        // Every region appears exactly once in the ranking.
        assert_eq!(ranked.len(), fp.regions().len());
        // Far outside the die nothing contains the point, but the
        // nearest region is still reported.
        assert_eq!(fp.region_at(-1e6, -1e6), None);
        assert!(fp.nearest_region(-1e6, -1e6).is_some());
    }
}
