//! Power-grid straps on the upper routing layers.
//!
//! The paper's EM simulation flow \[18\] appends transient currents to the
//! resistive elements of the extracted current-distribution network. Our
//! reduced-fidelity equivalent: vertical VDD/VSS strap pairs across the
//! core; each cell draws its supply current through the nearest strap,
//! and the length of that local loop scales the cell's effective magnetic
//! moment in the EM model.

use crate::floorplan::Die;
use crate::geometry::{Point, Segment};
use crate::LayoutError;

/// Supply rail polarity of a strap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RailKind {
    /// Power.
    Vdd,
    /// Ground.
    Vss,
}

/// One vertical power strap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strap {
    /// Rail polarity.
    pub rail: RailKind,
    /// The strap's wire segment (vertical, full core height).
    pub segment: Segment,
}

/// The core power grid: alternating VDD/VSS vertical straps.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGrid {
    straps: Vec<Strap>,
    pitch_um: f64,
}

impl PowerGrid {
    /// Builds a grid over `die` with the given strap pitch (µm between
    /// same-rail straps; VDD and VSS alternate at half that pitch).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if `pitch_um <= 0` or the
    /// pitch exceeds the die width.
    pub fn new(die: Die, pitch_um: f64) -> Result<Self, LayoutError> {
        if pitch_um <= 0.0 || pitch_um > die.width_um() {
            return Err(LayoutError::InvalidParameter {
                what: "strap pitch must be positive and fit the die",
            });
        }
        let mut straps = Vec::new();
        let mut x = die.core.min.x + pitch_um / 2.0;
        let mut rail = RailKind::Vdd;
        while x < die.core.max.x {
            straps.push(Strap {
                rail,
                segment: Segment::new(Point::new(x, die.core.min.y), Point::new(x, die.core.max.y)),
            });
            rail = match rail {
                RailKind::Vdd => RailKind::Vss,
                RailKind::Vss => RailKind::Vdd,
            };
            x += pitch_um / 2.0;
        }
        Ok(Self { straps, pitch_um })
    }

    /// The default 50 µm-pitch grid for `die`.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerGrid::new`] errors for degenerate dies.
    pub fn default_for(die: Die) -> Result<Self, LayoutError> {
        Self::new(die, 50.0)
    }

    /// All straps, west to east.
    pub fn straps(&self) -> &[Strap] {
        &self.straps
    }

    /// Same-rail strap pitch in µm.
    pub fn pitch_um(&self) -> f64 {
        self.pitch_um
    }

    /// Horizontal distance from `p` to the nearest VDD strap — the length
    /// of the cell's local supply loop, in µm.
    pub fn supply_loop_length_um(&self, p: Point) -> f64 {
        self.straps
            .iter()
            .filter(|s| s.rail == RailKind::Vdd)
            .map(|s| (s.segment.a.x - p.x).abs())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Die {
        Die::square(600.0).unwrap()
    }

    #[test]
    fn grid_alternates_rails() {
        let g = PowerGrid::new(die(), 50.0).unwrap();
        assert!(g.straps().len() >= 20);
        for w in g.straps().windows(2) {
            assert_ne!(w[0].rail, w[1].rail, "rails must alternate");
        }
    }

    #[test]
    fn straps_span_the_core_vertically() {
        let g = PowerGrid::default_for(die()).unwrap();
        for s in g.straps() {
            assert_eq!(s.segment.a.y, 0.0);
            assert_eq!(s.segment.b.y, 600.0);
        }
    }

    #[test]
    fn supply_loop_is_bounded_by_half_pitch() {
        let g = PowerGrid::new(die(), 50.0).unwrap();
        for x in [10.0, 133.0, 299.0, 571.0] {
            let d = g.supply_loop_length_um(Point::new(x, 300.0));
            assert!(d <= 50.0, "loop length {d} at x={x}");
        }
    }

    #[test]
    fn invalid_pitch_is_rejected() {
        assert!(PowerGrid::new(die(), 0.0).is_err());
        assert!(PowerGrid::new(die(), -5.0).is_err());
        assert!(PowerGrid::new(die(), 1000.0).is_err());
    }

    #[test]
    fn nearest_vdd_strap_is_found() {
        let g = PowerGrid::new(die(), 100.0).unwrap();
        // First VDD strap at x=50, next at 150, …
        let d = g.supply_loop_length_um(Point::new(60.0, 0.0));
        assert!((d - 10.0).abs() < 1e-9);
    }
}
