#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-layout
//!
//! Physical substrate for the on-chip EM sensor framework: the die, the
//! placement of every cell, the power grid, and — the paper's key
//! artifact — the **one-way spiral EM sensor** occupying the topmost metal
//! layer plus the **external probe** it is compared against.
//!
//! - [`geometry`] — points, segments and rectangles in micrometres,
//! - [`floorplan`] — die sizing and a deterministic row placer that puts
//!   the AES core in the main region and each Trojan in the east strip
//!   (paper Fig. 3 shows the four Trojans beside the AES), plus the pad
//!   ring (VDD, VSS, `Sensor In`, `Sensor Out`),
//! - [`grid`] — power-grid straps on the upper routing layers,
//! - [`spiral`] — the on-chip sensor: a square spiral from the die centre
//!   to the corner covering the entire circuit (paper Fig. 2(b)), with the
//!   coil width respecting the technology's minimum-width rule,
//! - [`probe`] — a LANGER-style external probe: several stacked turns of
//!   the same diameter (paper Fig. 2(a)) at package standoff height.
//!
//! Everything downstream (the EM coupling kernels in `emtrust-em`) is
//! computed *from these geometries*, so the on-chip-vs-external SNR gap
//! emerges from physics rather than assumption.

pub mod floorplan;
pub mod geometry;
pub mod grid;
pub mod probe;
pub mod spiral;

pub use floorplan::{Die, Floorplan, PadKind};
pub use probe::ExternalProbe;
pub use spiral::SpiralSensor;

use std::error::Error;
use std::fmt;

/// Errors produced by the layout substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The die is too small to hold the netlist at the requested
    /// utilization.
    DieTooSmall {
        /// Required core area in µm².
        required_um2: f64,
        /// Available core area in µm².
        available_um2: f64,
    },
    /// A geometric parameter was out of range.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DieTooSmall {
                required_um2,
                available_um2,
            } => write!(
                f,
                "die too small: need {required_um2:.0} um2, have {available_um2:.0} um2"
            ),
            LayoutError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = LayoutError::DieTooSmall {
            required_um2: 100.0,
            available_um2: 50.0,
        };
        assert!(e.to_string().contains("die too small"));
        let e = LayoutError::InvalidParameter { what: "turns" };
        assert!(e.to_string().contains("turns"));
    }
}
