//! The oscilloscope front-end.
//!
//! Section V's data comes off a bench oscilloscope: finite analog
//! bandwidth, input-referred noise from the probe/cable/preamp chain, and
//! quantization. All three are modelled; their magnitudes are per-channel
//! (the external probe's chain is noisier than the bonded-out sensor
//! pair, which is why its silicon SNR drops below its simulated SNR —
//! exactly the asymmetry the paper reports in §V-A).

use crate::SiliconError;
use emtrust_em::emf::VoltageTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An oscilloscope acquisition channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Oscilloscope {
    bandwidth_hz: f64,
    input_noise_rms_v: f64,
    bits: u32,
    full_scale_v: f64,
}

impl Oscilloscope {
    /// The channel wired to the on-chip sensor pads: short bond wires,
    /// tiny additional noise. 12-bit hi-res acquisition, ±100 µV
    /// effective range after the preamp (the emf waveform is impulsive,
    /// so the range leaves crest-factor head-room).
    pub fn onchip_channel() -> Self {
        Self {
            bandwidth_hz: 250e6,
            input_noise_rms_v: 1.0e-8,
            bits: 12,
            full_scale_v: 100e-6,
        }
    }

    /// The channel behind the external probe: long cable and RF preamp,
    /// noticeably noisier. 12-bit, ±10 µV effective range.
    pub fn external_channel() -> Self {
        Self {
            bandwidth_hz: 250e6,
            input_noise_rms_v: 3.3e-8,
            bits: 12,
            full_scale_v: 10e-6,
        }
    }

    /// A custom front-end.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::InvalidParameter`] on non-positive
    /// bandwidth/full-scale, negative noise, or `bits` outside `4..=16`.
    pub fn new(
        bandwidth_hz: f64,
        input_noise_rms_v: f64,
        bits: u32,
        full_scale_v: f64,
    ) -> Result<Self, SiliconError> {
        if bandwidth_hz <= 0.0 || full_scale_v <= 0.0 {
            return Err(SiliconError::InvalidParameter {
                what: "bandwidth and full scale must be positive",
            });
        }
        if input_noise_rms_v < 0.0 {
            return Err(SiliconError::InvalidParameter {
                what: "input noise must be non-negative",
            });
        }
        if !(4..=16).contains(&bits) {
            return Err(SiliconError::InvalidParameter {
                what: "adc resolution must be 4..=16 bits",
            });
        }
        Ok(Self {
            bandwidth_hz,
            input_noise_rms_v,
            bits,
            full_scale_v,
        })
    }

    /// Analog bandwidth in hertz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Input-referred noise RMS in volts.
    pub fn input_noise_rms_v(&self) -> f64 {
        self.input_noise_rms_v
    }

    /// ADC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale range (±) in volts.
    pub fn full_scale_v(&self) -> f64 {
        self.full_scale_v
    }

    /// Acquires a trace: adds input-referred noise, applies a single-pole
    /// low-pass at the analog bandwidth, then quantizes.
    pub fn acquire(&self, input: &VoltageTrace, seed: u64) -> VoltageTrace {
        let fs = input.sample_rate_hz();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x05C0_9E11);
        // Single-pole IIR: alpha = dt / (rc + dt).
        let rc = 1.0 / (2.0 * std::f64::consts::PI * self.bandwidth_hz);
        let dt = 1.0 / fs;
        let alpha = dt / (rc + dt);
        let lsb = 2.0 * self.full_scale_v / f64::from(1u32 << self.bits);
        let mut state = 0.0;
        let samples: Vec<f64> = input
            .samples()
            .iter()
            .map(|&v| {
                let noisy = v + self.input_noise_rms_v * gaussian(&mut rng);
                state += alpha * (noisy - state);
                let clipped = state.clamp(-self.full_scale_v, self.full_scale_v);
                (clipped / lsb).round() * lsb
            })
            .collect();
        VoltageTrace::new(samples, fs)
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(amp: f64, freq: f64, fs: f64, n: usize) -> VoltageTrace {
        VoltageTrace::new(
            (0..n)
                .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
                .collect(),
            fs,
        )
    }

    #[test]
    fn in_band_signal_passes() {
        let scope = Oscilloscope::new(250e6, 0.0, 12, 1e-5).unwrap();
        let input = tone(5e-6, 10e6, 640e6, 4096);
        let out = scope.acquire(&input, 0);
        let ratio = out.rms_v() / input.rms_v();
        assert!(ratio > 0.9, "in-band attenuation {ratio}");
    }

    #[test]
    fn out_of_band_signal_is_attenuated() {
        let scope = Oscilloscope::new(10e6, 0.0, 12, 1e-5).unwrap();
        let input = tone(5e-6, 200e6, 640e6, 4096);
        let out = scope.acquire(&input, 0);
        let ratio = out.rms_v() / input.rms_v();
        assert!(ratio < 0.3, "out-of-band leakage {ratio}");
    }

    #[test]
    fn clipping_limits_the_output() {
        let scope = Oscilloscope::new(1e9, 0.0, 8, 1e-6).unwrap();
        let input = tone(10e-6, 1e6, 640e6, 2048);
        let out = scope.acquire(&input, 0);
        let max = out.samples().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max <= 1e-6 + 1e-12);
    }

    #[test]
    fn quantization_steps_are_visible_at_low_resolution() {
        let scope = Oscilloscope::new(1e9, 0.0, 4, 1.0).unwrap();
        let input = tone(0.9, 1e6, 640e6, 1024);
        let out = scope.acquire(&input, 0);
        let lsb = 2.0 / 16.0;
        for &s in out.samples() {
            let steps = s / lsb;
            assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_floor_appears_on_silent_input() {
        let scope = Oscilloscope::new(250e6, 1e-7, 12, 1e-5).unwrap();
        let silent = VoltageTrace::new(vec![0.0; 8192], 640e6);
        let out = scope.acquire(&silent, 3);
        assert!(out.rms_v() > 2e-8, "noise floor {}", out.rms_v());
    }

    #[test]
    fn acquisition_is_deterministic_per_seed() {
        let scope = Oscilloscope::external_channel();
        let input = tone(1e-7, 5e6, 640e6, 512);
        assert_eq!(
            scope.acquire(&input, 9).samples(),
            scope.acquire(&input, 9).samples()
        );
        assert_ne!(
            scope.acquire(&input, 9).samples(),
            scope.acquire(&input, 10).samples()
        );
    }

    #[test]
    fn channel_presets_reflect_the_asymmetry() {
        let on = Oscilloscope::onchip_channel();
        let ext = Oscilloscope::external_channel();
        assert!(ext.input_noise_rms_v() > on.input_noise_rms_v());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Oscilloscope::new(0.0, 0.0, 8, 1.0).is_err());
        assert!(Oscilloscope::new(1e6, -1.0, 8, 1.0).is_err());
        assert!(Oscilloscope::new(1e6, 0.0, 2, 1.0).is_err());
        assert!(Oscilloscope::new(1e6, 0.0, 8, 0.0).is_err());
    }
}
