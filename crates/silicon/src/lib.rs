#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-silicon
//!
//! The "fabricated chip": everything that separates the paper's Section V
//! (measurements on real 180 nm silicon) from its Section IV
//! (simulation). Since no fab run is reachable from a software
//! reproduction, the measurement-chain non-idealities are modelled
//! explicitly:
//!
//! - [`variation`] — per-chip process variation: every cell's switched
//!   charge and leakage deviates from nominal (die-to-die offset plus
//!   within-die random component),
//! - [`scope`] — the oscilloscope front-end: bandwidth, input-referred
//!   noise (cabling/preamp included) and 8-bit quantization,
//! - [`chip`] — [`chip::FabricatedChip`]: a placed netlist with one
//!   specific variation draw, carrying both measurement channels (on-chip
//!   sensor through `Sensor In`/`Sensor Out`, external probe over the
//!   package) behind their oscilloscope front-ends.
//!
//! The paper's empirical deltas reproduce through these models: the
//! external probe loses several dB going from simulation to silicon
//! (cable/preamp noise against an already weak signal), while the on-chip
//! sensor's SNR is essentially unchanged.

pub mod chip;
pub mod scope;
pub mod variation;

pub use chip::{Channel, FabricatedChip};
pub use scope::Oscilloscope;
pub use variation::ProcessVariation;

use std::error::Error;
use std::fmt;

/// Errors produced by the silicon model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SiliconError {
    /// A configuration value was out of range.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// Forwarded from the EM pipeline.
    Em(emtrust_em::EmError),
    /// Forwarded from the layout substrate.
    Layout(emtrust_layout::LayoutError),
}

impl fmt::Display for SiliconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiliconError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SiliconError::Em(e) => write!(f, "em pipeline: {e}"),
            SiliconError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl Error for SiliconError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SiliconError::Em(e) => Some(e),
            SiliconError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emtrust_em::EmError> for SiliconError {
    fn from(e: emtrust_em::EmError) -> Self {
        SiliconError::Em(e)
    }
}

impl From<emtrust_layout::LayoutError> for SiliconError {
    fn from(e: emtrust_layout::LayoutError) -> Self {
        SiliconError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        assert!(SiliconError::InvalidParameter { what: "x" }
            .to_string()
            .contains("x"));
        let e: SiliconError = emtrust_em::EmError::InvalidParameter { what: "grid" }.into();
        assert!(e.to_string().contains("em pipeline"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
