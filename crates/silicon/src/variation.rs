//! Per-chip process variation.
//!
//! Fabricated 180 nm dies differ from the nominal corner: a die-to-die
//! offset shifts every cell together, and within-die random variation
//! perturbs each cell independently. Both are modelled as multiplicative
//! Gaussian factors on the cell's switched charge (and hence its EM
//! contribution): `factor = (1 + die_offset) · (1 + N(0, σ_wid))`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default die-to-die sigma (3 %).
pub const DEFAULT_D2D_SIGMA: f64 = 0.03;

/// Default within-die sigma (2 %).
pub const DEFAULT_WID_SIGMA: f64 = 0.02;

/// A process-variation generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    d2d_sigma: f64,
    wid_sigma: f64,
}

impl ProcessVariation {
    /// Nominal 180 nm variation magnitudes.
    pub fn nominal() -> Self {
        Self {
            d2d_sigma: DEFAULT_D2D_SIGMA,
            wid_sigma: DEFAULT_WID_SIGMA,
        }
    }

    /// Custom variation magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if either sigma is negative or ≥ 0.5 (factors must stay
    /// positive).
    pub fn new(d2d_sigma: f64, wid_sigma: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&d2d_sigma) && (0.0..0.5).contains(&wid_sigma),
            "variation sigmas must be in [0, 0.5)"
        );
        Self {
            d2d_sigma,
            wid_sigma,
        }
    }

    /// A zero-variation corner (ideal silicon) — useful for isolating
    /// measurement-chain effects in tests.
    pub fn none() -> Self {
        Self {
            d2d_sigma: 0.0,
            wid_sigma: 0.0,
        }
    }

    /// Die-to-die sigma.
    pub fn d2d_sigma(&self) -> f64 {
        self.d2d_sigma
    }

    /// Within-die sigma.
    pub fn wid_sigma(&self) -> f64 {
        self.wid_sigma
    }

    /// Draws the per-cell factors for chip number `chip_id` with
    /// `n_cells` cells. Deterministic per `(chip_id, n_cells)`.
    pub fn factors(&self, chip_id: u64, n_cells: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(0x51C0_D1E5 ^ chip_id);
        let die_offset = self.d2d_sigma * gaussian(&mut rng);
        (0..n_cells)
            .map(|_| {
                let wid = self.wid_sigma * gaussian(&mut rng);
                ((1.0 + die_offset) * (1.0 + wid)).max(0.05)
            })
            .collect()
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::nominal()
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_dsp::stats::{mean, std_dev};

    #[test]
    fn factors_are_near_one() {
        let v = ProcessVariation::nominal();
        let f = v.factors(1, 10_000);
        let m = mean(&f);
        assert!((m - 1.0).abs() < 0.1, "mean factor {m}");
        assert!(f.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn within_die_spread_matches_sigma() {
        let v = ProcessVariation::new(0.0, 0.02);
        let f = v.factors(3, 20_000);
        let s = std_dev(&f);
        assert!((s - 0.02).abs() < 0.003, "spread {s}");
    }

    #[test]
    fn chips_differ_but_redraws_do_not() {
        let v = ProcessVariation::nominal();
        let a = v.factors(1, 100);
        let b = v.factors(1, 100);
        let c = v.factors(2, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn die_to_die_offset_shifts_whole_chips() {
        let v = ProcessVariation::new(0.05, 0.0);
        let means: Vec<f64> = (0..20).map(|id| mean(&v.factors(id, 500))).collect();
        let spread = std_dev(&means);
        assert!(spread > 0.02, "die means must spread, got {spread}");
    }

    #[test]
    fn zero_variation_gives_unit_factors() {
        let f = ProcessVariation::none().factors(9, 64);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "sigmas")]
    fn excessive_sigma_is_rejected() {
        let _ = ProcessVariation::new(0.6, 0.0);
    }
}
