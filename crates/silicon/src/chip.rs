//! One fabricated die with both measurement channels.

use crate::scope::Oscilloscope;
use crate::variation::ProcessVariation;
use crate::SiliconError;
use emtrust_em::coil::Coil;
use emtrust_em::emf::VoltageTrace;
use emtrust_em::noise::NoiseModel;
use emtrust_em::pipeline::{EmSensor, PointCurrentSource};
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::graph::Netlist;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_sim::activity::ActivityTrace;

/// Which measurement channel to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// The on-chip spiral sensor (`Sensor In`/`Sensor Out` pads).
    OnChipSensor,
    /// The external probe above the package.
    ExternalProbe,
}

/// A fabricated die: a placed netlist with one specific process-variation
/// draw, measurable through both channels.
#[derive(Debug)]
pub struct FabricatedChip {
    chip_id: u64,
    floorplan: Floorplan,
    onchip: EmSensor,
    external: EmSensor,
    onchip_scope: Oscilloscope,
    external_scope: Oscilloscope,
}

impl FabricatedChip {
    /// "Fabricates" chip number `chip_id` of `netlist`: sizes and places
    /// the die, draws the chip's process variation, builds both coils and
    /// their coupling kernels, and attaches the default oscilloscope
    /// channels.
    ///
    /// # Errors
    ///
    /// Propagates layout and EM-pipeline construction errors.
    pub fn fabricate(
        netlist: &Netlist,
        chip_id: u64,
        variation: ProcessVariation,
    ) -> Result<Self, SiliconError> {
        let library = Library::generic_180nm();
        let die = Die::for_netlist(netlist, &library, 0.7)?;
        let floorplan = Floorplan::place(netlist, &library, die)?;
        let model = CurrentModel::new(library, ClockConfig::reference());
        let mut onchip = EmSensor::new(
            Coil::OnChip(SpiralSensor::for_die(die)?),
            netlist,
            &floorplan,
            model.clone(),
        )?;
        let mut external = EmSensor::new(
            Coil::External(ExternalProbe::over_die(die)),
            netlist,
            &floorplan,
            model,
        )?;
        let factors = variation.factors(chip_id, netlist.cell_count());
        onchip.scale_weights(&factors)?;
        external.scale_weights(&factors)?;
        Ok(Self {
            chip_id,
            floorplan,
            onchip,
            external,
            onchip_scope: Oscilloscope::onchip_channel(),
            external_scope: Oscilloscope::external_channel(),
        })
    }

    /// This die's serial number.
    pub fn chip_id(&self) -> u64 {
        self.chip_id
    }

    /// The placed floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The EM channel for `channel` (pre-scope).
    pub fn sensor(&self, channel: Channel) -> &EmSensor {
        match channel {
            Channel::OnChipSensor => &self.onchip,
            Channel::ExternalProbe => &self.external,
        }
    }

    /// Replaces a channel's oscilloscope front-end.
    pub fn set_scope(&mut self, channel: Channel, scope: Oscilloscope) {
        match channel {
            Channel::OnChipSensor => self.onchip_scope = scope,
            Channel::ExternalProbe => self.external_scope = scope,
        }
    }

    fn scope(&self, channel: Channel) -> &Oscilloscope {
        match channel {
            Channel::OnChipSensor => &self.onchip_scope,
            Channel::ExternalProbe => &self.external_scope,
        }
    }

    /// A full bench measurement of recorded activity: emf → environment
    /// noise → oscilloscope front-end.
    ///
    /// # Errors
    ///
    /// Propagates power/EM pipeline errors.
    pub fn measure(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        channel: Channel,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        seed: u64,
    ) -> Result<VoltageTrace, SiliconError> {
        self.measure_with(
            netlist,
            activity,
            channel,
            extra_leakage_a,
            injections,
            seed,
            1,
        )
    }

    /// [`Self::measure`] with current synthesis fanned across `workers`
    /// threads. Noise and scope randomness are seeded from `seed` and the
    /// chip id alone, so the result is bit-identical for every worker
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates power/EM pipeline errors.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_with(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        channel: Channel,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        seed: u64,
        workers: usize,
    ) -> Result<VoltageTrace, SiliconError> {
        let _span = emtrust_telemetry::span("silicon_measure");
        let sensor = self.sensor(channel);
        let mut emf = sensor.emf_with(netlist, activity, extra_leakage_a, injections, workers)?;
        NoiseModel::environment_for(sensor.coil(), seed ^ self.chip_id).add_to(&mut emf);
        Ok(self
            .scope(channel)
            .acquire(&emf, seed.wrapping_mul(31) ^ self.chip_id))
    }

    /// The paper's noise-measurement step: chip powered, encryption idle.
    pub fn measure_noise(&self, channel: Channel, n_samples: usize, seed: u64) -> VoltageTrace {
        let sensor = self.sensor(channel);
        let mut trace = VoltageTrace::new(
            vec![0.0; n_samples],
            sensor.model().clock().sample_rate_hz(),
        );
        NoiseModel::environment_for(sensor.coil(), seed ^ self.chip_id).add_to(&mut trace);
        self.scope(channel)
            .acquire(&trace, seed.wrapping_mul(31) ^ self.chip_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_sim::engine::Simulator;

    fn bank_netlist(flops: usize) -> Netlist {
        let mut n = Netlist::new("bank");
        n.push_module("aes");
        for _ in 0..flops {
            let (q, d) = n.dff_deferred();
            let nq = n.not(q);
            n.connect_dff_d(d, nq);
            n.mark_output("q", q);
        }
        n.pop_module();
        n
    }

    fn activity(n: &Netlist, cycles: usize) -> ActivityTrace {
        let mut sim = Simulator::new(n).unwrap();
        sim.settle();
        sim.start_recording();
        sim.run(cycles);
        sim.take_recording()
    }

    #[test]
    fn fabrication_succeeds_and_chips_differ() {
        let n = bank_netlist(64);
        let a = FabricatedChip::fabricate(&n, 1, ProcessVariation::nominal()).unwrap();
        let b = FabricatedChip::fabricate(&n, 2, ProcessVariation::nominal()).unwrap();
        assert_eq!(a.chip_id(), 1);
        // Different dies have different per-cell weights.
        assert_ne!(
            a.sensor(Channel::OnChipSensor).weights(),
            b.sensor(Channel::OnChipSensor).weights()
        );
    }

    #[test]
    fn onchip_channel_sees_more_signal_than_external() {
        let n = bank_netlist(64);
        let chip = FabricatedChip::fabricate(&n, 7, ProcessVariation::none()).unwrap();
        let act = activity(&n, 8);
        let on = chip
            .sensor(Channel::OnChipSensor)
            .emf(&n, &act, None, &[])
            .unwrap();
        let ext = chip
            .sensor(Channel::ExternalProbe)
            .emf(&n, &act, None, &[])
            .unwrap();
        assert!(on.rms_v() > 3.0 * ext.rms_v());
    }

    #[test]
    fn measurement_includes_noise_and_is_seed_deterministic() {
        let n = bank_netlist(16);
        let chip = FabricatedChip::fabricate(&n, 1, ProcessVariation::nominal()).unwrap();
        let act = activity(&n, 4);
        let a = chip
            .measure(&n, &act, Channel::OnChipSensor, None, &[], 5)
            .unwrap();
        let b = chip
            .measure(&n, &act, Channel::OnChipSensor, None, &[], 5)
            .unwrap();
        let c = chip
            .measure(&n, &act, Channel::OnChipSensor, None, &[], 6)
            .unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn noise_measurement_is_nonzero_but_small() {
        let n = bank_netlist(16);
        let chip = FabricatedChip::fabricate(&n, 1, ProcessVariation::nominal()).unwrap();
        let noise = chip.measure_noise(Channel::OnChipSensor, 8192, 1);
        assert!(noise.rms_v() > 1e-9);
        assert!(noise.rms_v() < 1e-6);
    }

    #[test]
    fn scope_can_be_replaced() {
        let n = bank_netlist(16);
        let mut chip = FabricatedChip::fabricate(&n, 1, ProcessVariation::none()).unwrap();
        let noisy = Oscilloscope::new(250e6, 1e-6, 12, 1e-3).unwrap();
        let act = activity(&n, 4);
        let before = chip
            .measure(&n, &act, Channel::OnChipSensor, None, &[], 2)
            .unwrap();
        chip.set_scope(Channel::OnChipSensor, noisy);
        let after = chip
            .measure(&n, &act, Channel::OnChipSensor, None, &[], 2)
            .unwrap();
        assert!(after.rms_v() > before.rms_v());
    }

    #[test]
    fn variation_perturbs_the_signal_slightly() {
        let n = bank_netlist(64);
        let act = activity(&n, 8);
        let ideal = FabricatedChip::fabricate(&n, 3, ProcessVariation::none()).unwrap();
        let real = FabricatedChip::fabricate(&n, 3, ProcessVariation::nominal()).unwrap();
        let a = ideal
            .sensor(Channel::OnChipSensor)
            .emf(&n, &act, None, &[])
            .unwrap();
        let b = real
            .sensor(Channel::OnChipSensor)
            .emf(&n, &act, None, &[])
            .unwrap();
        let ratio = b.rms_v() / a.rms_v();
        assert!((0.8..1.2).contains(&ratio), "variation ratio {ratio}");
        assert_ne!(a.samples(), b.samples());
    }
}
