//! Calibration helper: prints the emf RMS per coil for the AES workload.
use emtrust_aes::netlist::run_encryption;
use emtrust_aes::AesHarness;
use emtrust_em::{Coil, EmSensor};
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};

fn main() {
    let aes = AesHarness::new();
    let lib = Library::generic_180nm();
    let die = Die::for_netlist(aes.netlist(), &lib, 0.7).unwrap();
    println!("die: {} um", die.width_um());
    let fp = Floorplan::place(aes.netlist(), &lib, die).unwrap();
    let model = CurrentModel::new(lib.clone(), ClockConfig::reference());
    let onchip: Coil = SpiralSensor::for_die(die).unwrap().into();
    let external: Coil = ExternalProbe::over_die(die).into();
    let mut sim = aes.simulator().unwrap();
    sim.start_recording();
    for i in 0..20u8 {
        let _ = run_encryption(&mut sim, aes.ports(), [i; 16], [i ^ 0x5a; 16]);
    }
    let act = sim.take_recording();
    for coil in [onchip, external] {
        let s = EmSensor::new(coil, aes.netlist(), &fp, model.clone()).unwrap();
        let emf = s.emf(aes.netlist(), &act, None, &[]).unwrap();
        println!("{}: signal RMS = {:.4e} V", s.coil().name(), emf.rms_v());
    }
}
