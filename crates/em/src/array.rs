//! A tiled array of on-chip spiral sub-sensors.
//!
//! The paper's single spiral covers the whole die, which detects *that* a
//! Trojan switched but not *where*. An [`EmArray`] tiles the die into an
//! `rows × cols` grid and centres a smaller spiral over each tile; every
//! sub-coil still couples (weakly) to the whole die through its own exact
//! [`crate::coupling::CouplingMap`], but couples far more strongly to the
//! cells under it. Comparing per-tile anomaly scores therefore localizes
//! the switching cells — the spatial information a single coil integrates
//! away.
//!
//! The cost discipline is the point of the design: the switching-current
//! timeline is synthesized **once** per activity trace and deposited into
//! all `N` per-tile flux-weighted buffers in the same pass
//! ([`emtrust_power::CurrentModel::synthesize_multi`]), so an `N`-sensor
//! array costs one event walk plus `N` cheap weight multiplies — not `N`
//! full simulation passes.

use crate::coil::Coil;
use crate::emf::{emf_from_weighted_current, VoltageTrace};
use crate::noise::NoiseModel;
use crate::pipeline::{EmPipelineConfig, EmSensor, PointCurrentSource};
use crate::EmError;
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_layout::geometry::{Point, Rect};
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::graph::Netlist;
use emtrust_power::{CurrentModel, CurrentTrace};
use emtrust_sim::activity::ActivityTrace;

/// Per-tile noise-seed salt: tile `t` draws its environment noise from
/// `noise_seed ^ salt(t)`, keeping tile streams independent while leaving
/// tile 0 (`salt(0) == 0`) bit-identical to a single-sensor measurement
/// with the same seed.
fn tile_noise_salt(tile: usize) -> u64 {
    (tile as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// One array element: a sub-spiral centred on its die tile, with the full
/// per-cell coupling machinery of an [`EmSensor`].
#[derive(Debug)]
pub struct EmTile {
    row: usize,
    col: usize,
    rect: Rect,
    sensor: EmSensor,
}

impl EmTile {
    /// Grid row (0 = southmost).
    pub fn row(&self) -> usize {
        self.row
    }

    /// Grid column (0 = westmost).
    pub fn col(&self) -> usize {
        self.col
    }

    /// The die tile this sub-sensor is centred on.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The tile centre — the sensor's nominal location on the die.
    pub fn center(&self) -> Point {
        self.rect.center()
    }

    /// The underlying measurement channel.
    pub fn sensor(&self) -> &EmSensor {
        &self.sensor
    }
}

/// An `rows × cols` grid of sub-spirals over one placed netlist, measured
/// together from a single current-synthesis pass.
#[derive(Debug)]
pub struct EmArray {
    rows: usize,
    cols: usize,
    tiles: Vec<EmTile>,
    model: CurrentModel,
}

impl EmArray {
    /// Builds the array: tiles the floorplan's die ([`Die::tiles`]),
    /// centres a `turns`-turn spiral on each tile, and precomputes each
    /// sub-coil's coupling map **over the full die** (cells outside a
    /// coil's own tile still couple, just weakly — that decay is what the
    /// localizer exploits).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Layout`] if the grid is degenerate or a tile is
    /// too small for `turns` at the minimum metal pitch.
    pub fn build(
        netlist: &Netlist,
        floorplan: &Floorplan,
        model: CurrentModel,
        rows: usize,
        cols: usize,
        turns: usize,
    ) -> Result<Self, EmError> {
        let rects = floorplan.die().tiles(rows, cols).map_err(EmError::Layout)?;
        let mut tiles = Vec::with_capacity(rects.len());
        for (i, rect) in rects.into_iter().enumerate() {
            let coil = Coil::OnChip(
                SpiralSensor::with_turns(Die { core: rect }, turns).map_err(EmError::Layout)?,
            );
            let sensor = EmPipelineConfig::default()
                .with_coil(coil)
                .with_model(model.clone())
                .build(netlist, floorplan)?;
            tiles.push(EmTile {
                row: i / cols,
                col: i % cols,
                rect,
                sensor,
            });
        }
        Ok(Self {
            rows,
            cols,
            tiles,
            model,
        })
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of sub-sensors (`rows × cols`).
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the array has no sensors (never true for a built array).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tiles in row-major order from the south-west corner.
    pub fn tiles(&self) -> &[EmTile] {
        &self.tiles
    }

    /// Applies per-chip process variation to every sub-sensor's weight
    /// vector (see [`EmSensor::scale_weights`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] if `factors` does not have
    /// one entry per cell.
    pub fn scale_weights(&mut self, factors: &[f64]) -> Result<(), EmError> {
        for tile in &mut self.tiles {
            tile.sensor.scale_weights(factors)?;
        }
        Ok(())
    }

    /// Synthesizes the noiseless emf of **every** sub-sensor from one
    /// shared current-synthesis pass, in tile order.
    ///
    /// `extra_leakage_a` and `injections` are the same side channels as
    /// [`EmSensor::emf`]; each injection is scaled by each tile's own
    /// coupling at the source location.
    ///
    /// # Errors
    ///
    /// Propagates power-model errors (length mismatches).
    pub fn emf_multi(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        workers: usize,
    ) -> Result<Vec<VoltageTrace>, EmError> {
        let _span = emtrust_telemetry::span("emf_multi");
        let weight_sets: Vec<&[f64]> = self.tiles.iter().map(|t| t.sensor.weights()).collect();
        let currents = {
            let _synth = emtrust_telemetry::span("synthesize_multi");
            self.model.synthesize_multi(
                netlist,
                activity,
                &weight_sets,
                extra_leakage_a,
                workers,
            )?
        };
        let mut out = Vec::with_capacity(self.tiles.len());
        for (tile, mut weighted) in self.tiles.iter().zip(currents) {
            for src in injections {
                let m = tile
                    .sensor
                    .coupling()
                    .at(src.location_um.0, src.location_um.1);
                if m == 0.0 || src.samples.is_empty() {
                    continue;
                }
                let scaled: Vec<f64> = src.samples.iter().map(|&i| i * m).collect();
                weighted.add_assign(&CurrentTrace::new(scaled, weighted.sample_rate_hz()));
            }
            out.push(emf_from_weighted_current(&weighted));
        }
        Ok(out)
    }

    /// Synthesizes one *measured* trace per sub-sensor: emf plus each
    /// coil's environment noise, seeded per tile from `noise_seed` (tile 0
    /// uses `noise_seed` unchanged, so a `1 × 1` array reproduces
    /// [`EmSensor::measure_with`] bit for bit).
    ///
    /// # Errors
    ///
    /// Propagates power-model errors.
    pub fn measure_multi(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        noise_seed: u64,
        workers: usize,
    ) -> Result<Vec<VoltageTrace>, EmError> {
        let _span = emtrust_telemetry::span("measure_multi");
        let mut traces = self.emf_multi(netlist, activity, extra_leakage_a, injections, workers)?;
        for (t, trace) in traces.iter_mut().enumerate() {
            NoiseModel::environment_for(
                self.tiles[t].sensor.coil(),
                noise_seed ^ tile_noise_salt(t),
            )
            .add_to(trace);
        }
        Ok(traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_netlist::library::Library;
    use emtrust_power::ClockConfig;
    use emtrust_sim::engine::Simulator;

    fn small_design() -> (Netlist, Floorplan) {
        let mut n = Netlist::new("bank");
        n.push_module("aes");
        for _ in 0..32 {
            let (q, d) = n.dff_deferred();
            let nq = n.not(q);
            n.connect_dff_d(d, nq);
            n.mark_output("q", q);
        }
        n.pop_module();
        let lib = Library::generic_180nm();
        let die = Die::square(600.0).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        (n, fp)
    }

    fn model() -> CurrentModel {
        CurrentModel::new(Library::generic_180nm(), ClockConfig::reference())
    }

    fn activity(n: &Netlist, cycles: usize) -> ActivityTrace {
        let mut sim = Simulator::new(n).unwrap();
        sim.settle();
        sim.start_recording();
        sim.run(cycles);
        sim.take_recording()
    }

    #[test]
    fn one_by_one_array_reproduces_the_single_sensor() {
        let (n, fp) = small_design();
        let array = EmArray::build(&n, &fp, model(), 1, 1, 20).unwrap();
        let coil: Coil = SpiralSensor::for_die(fp.die()).unwrap().into();
        let single = EmSensor::new(coil, &n, &fp, model()).unwrap();
        let act = activity(&n, 3);
        let from_array = array.measure_multi(&n, &act, None, &[], 7, 2).unwrap();
        let from_single = single.measure_with(&n, &act, None, &[], 7, 2).unwrap();
        assert_eq!(from_array.len(), 1);
        assert_eq!(from_array[0], from_single);
    }

    #[test]
    fn grid_tiles_are_row_major_and_cover_the_die() {
        let (n, fp) = small_design();
        let array = EmArray::build(&n, &fp, model(), 2, 3, 6).unwrap();
        assert_eq!(array.rows(), 2);
        assert_eq!(array.cols(), 3);
        assert_eq!(array.len(), 6);
        assert!(!array.is_empty());
        let area: f64 = array.tiles().iter().map(|t| t.rect().area()).sum();
        assert!((area - fp.die().core.area()).abs() < 1e-6 * area);
        // Row-major from the SW corner.
        assert_eq!((array.tiles()[0].row(), array.tiles()[0].col()), (0, 0));
        assert_eq!((array.tiles()[4].row(), array.tiles()[4].col()), (1, 1));
        assert!(array.tiles()[3].center().y > array.tiles()[0].center().y);
    }

    #[test]
    fn multi_emf_is_bit_identical_across_worker_counts() {
        let (n, fp) = small_design();
        let array = EmArray::build(&n, &fp, model(), 2, 2, 6).unwrap();
        let act = activity(&n, 4);
        let serial = array.emf_multi(&n, &act, None, &[], 1).unwrap();
        let parallel = array.emf_multi(&n, &act, None, &[], 4).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|t| t.rms_v() > 0.0));
    }

    #[test]
    fn tile_noise_streams_differ_between_tiles() {
        let (n, fp) = small_design();
        let array = EmArray::build(&n, &fp, model(), 2, 2, 6).unwrap();
        let act = activity(&n, 2);
        let noiseless = array.emf_multi(&n, &act, None, &[], 1).unwrap();
        let measured = array.measure_multi(&n, &act, None, &[], 9, 1).unwrap();
        let noise: Vec<Vec<f64>> = measured
            .iter()
            .zip(&noiseless)
            .map(|(m, e)| {
                m.samples()
                    .iter()
                    .zip(e.samples())
                    .map(|(a, b)| a - b)
                    .collect()
            })
            .collect();
        assert_ne!(noise[0], noise[1]);
        assert_ne!(noise[1], noise[2]);
    }

    #[test]
    fn injection_registers_strongest_on_the_nearest_tile() {
        let (n, fp) = small_design();
        let array = EmArray::build(&n, &fp, model(), 2, 2, 6).unwrap();
        let act = activity(&n, 2);
        // Inject at the centre of tile 3 (NE).
        let c = array.tiles()[3].center();
        let inj = PointCurrentSource {
            location_um: (c.x, c.y),
            samples: (0..128)
                .map(|i| if i % 2 == 0 { 1e-3 } else { -1e-3 })
                .collect(),
        };
        let base = array.emf_multi(&n, &act, None, &[], 1).unwrap();
        let with = array.emf_multi(&n, &act, None, &[inj], 1).unwrap();
        let gain = |t: usize| with[t].rms_v() - base[t].rms_v();
        for t in 0..3 {
            assert!(
                gain(3) > gain(t),
                "NE tile must see the NE injection strongest (tile {t})"
            );
        }
    }

    #[test]
    fn degenerate_grids_are_rejected() {
        let (n, fp) = small_design();
        assert!(EmArray::build(&n, &fp, model(), 0, 2, 6).is_err());
        // 600/8 = 75 µm tiles; 300 turns → pitch below the metal rule.
        assert!(EmArray::build(&n, &fp, model(), 8, 8, 300).is_err());
    }
}
