//! Magnetic-dipole field math.
//!
//! A switching cell drives charge around its local supply loop. Seen from
//! the coil plane (5 µm above for the on-chip spiral, 100 µm for the
//! external probe) that loop is tiny, so the cell is modelled as a
//! **vertical magnetic dipole** `m = I · A_eff` at the cell location.
//!
//! The mutual inductance between the dipole and a coil turn is computed
//! through the dipole's vector potential (Stokes' theorem):
//!
//! ```text
//! Φ = ∮_turn A · dl,     A(r) = (μ0 m / 4π) · (ρ / (ρ² + z²)^{3/2}) · φ̂
//! ```
//!
//! which avoids integrating the sharply peaked `B_z` over the enclosed
//! area — the line integrand is smooth for any `z > 0`.

use emtrust_layout::geometry::Point;

/// Vacuum permeability, H/m.
pub const MU0: f64 = 4.0e-7 * std::f64::consts::PI;

/// Default effective supply-loop area of one standard cell, in µm²
/// (local loop length ≈ 10 µm × metal-stack height ≈ 3 µm).
pub const DEFAULT_DIPOLE_AREA_UM2: f64 = 30.0;

/// Mutual inductance (in henries) between a unit-area vertical dipole at
/// `(dipole_x_um, dipole_y_um, 0)` and a closed polygon loop at height
/// `z_um`, per µm² of dipole area.
///
/// Multiply by the cell's effective loop area (µm²) to get the actual
/// mutual inductance. The polygon is traversed in the order given; a
/// counter-clockwise loop above the dipole yields a positive coupling.
///
/// # Panics
///
/// Panics if the polygon has fewer than 3 vertices or `z_um <= 0`.
pub fn mutual_inductance_per_um2(
    polygon_um: &[Point],
    z_um: f64,
    dipole_x_um: f64,
    dipole_y_um: f64,
) -> f64 {
    assert!(polygon_um.len() >= 3, "loop polygon needs >= 3 vertices");
    assert!(z_um > 0.0, "coil plane must be above the dipole");
    const UM: f64 = 1e-6;
    let z = z_um * UM;
    let z2 = z * z;
    // Maximum discretization step: fine near the dipole scale.
    let max_step = (z_um.max(2.0) * 2.0) * UM;

    let mut total = 0.0;
    let n = polygon_um.len();
    for i in 0..n {
        let a = polygon_um[i];
        let b = polygon_um[(i + 1) % n];
        let ax = (a.x - dipole_x_um) * UM;
        let ay = (a.y - dipole_y_um) * UM;
        let bx = (b.x - dipole_x_um) * UM;
        let by = (b.y - dipole_y_um) * UM;
        let len = ((bx - ax).powi(2) + (by - ay).powi(2)).sqrt();
        if len == 0.0 {
            continue;
        }
        let steps = (len / max_step).ceil().max(1.0) as usize;
        let dx = (bx - ax) / steps as f64;
        let dy = (by - ay) / steps as f64;
        for s in 0..steps {
            // Segment midpoint.
            let x = ax + (s as f64 + 0.5) * dx;
            let y = ay + (s as f64 + 0.5) * dy;
            let rho2 = x * x + y * y;
            let denom = (rho2 + z2).powf(1.5);
            // A = k (−y, x) / (ρ²+z²)^{3/2}; A·dl with dl = (dx, dy).
            total += (-y * dx + x * dy) / denom;
        }
    }
    // Prefactor: μ0/(4π) × dipole area (1 µm² = 1e-12 m²).
    MU0 / (4.0 * std::f64::consts::PI) * 1e-12 * total
}

/// `B_z` (tesla) of a vertical dipole of moment `m_si` (A·m²) at lateral
/// distance `rho_m` and height `z_m` — used for cross-checking the line
/// integral in tests and for field-map visualization.
pub fn dipole_bz(m_si: f64, rho_m: f64, z_m: f64) -> f64 {
    let r2 = rho_m * rho_m + z_m * z_m;
    MU0 * m_si / (4.0 * std::f64::consts::PI) * (2.0 * z_m * z_m - rho_m * rho_m) / r2.powf(2.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_loop(half_um: f64, cx: f64, cy: f64) -> Vec<Point> {
        vec![
            Point::new(cx - half_um, cy - half_um),
            Point::new(cx + half_um, cy - half_um),
            Point::new(cx + half_um, cy + half_um),
            Point::new(cx - half_um, cy + half_um),
        ]
    }

    #[test]
    fn centered_dipole_couples_positively() {
        let m = mutual_inductance_per_um2(&square_loop(50.0, 0.0, 0.0), 5.0, 0.0, 0.0);
        assert!(m > 0.0);
    }

    #[test]
    fn reversed_loop_flips_the_sign() {
        let ccw = square_loop(50.0, 0.0, 0.0);
        let cw: Vec<Point> = ccw.iter().rev().copied().collect();
        let a = mutual_inductance_per_um2(&ccw, 5.0, 0.0, 0.0);
        let b = mutual_inductance_per_um2(&cw, 5.0, 0.0, 0.0);
        assert!((a + b).abs() < 1e-12 * a.abs().max(1e-30));
    }

    #[test]
    fn coupling_decays_with_coil_height() {
        let near = mutual_inductance_per_um2(&square_loop(50.0, 0.0, 0.0), 5.0, 0.0, 0.0);
        let far = mutual_inductance_per_um2(&square_loop(50.0, 0.0, 0.0), 100.0, 0.0, 0.0);
        assert!(
            near > 5.0 * far,
            "near {near:.3e} should dominate far {far:.3e}"
        );
    }

    #[test]
    fn distant_dipole_couples_weakly() {
        let inside = mutual_inductance_per_um2(&square_loop(50.0, 0.0, 0.0), 5.0, 0.0, 0.0);
        let outside = mutual_inductance_per_um2(&square_loop(50.0, 0.0, 0.0), 5.0, 500.0, 0.0);
        assert!(inside.abs() > 100.0 * outside.abs());
    }

    #[test]
    fn line_integral_matches_circular_disk_formula() {
        // For a circular loop of radius R centred over the dipole, the flux
        // has the closed form Φ = μ0 m R² / (2 (R²+z²)^{3/2}).
        let radius_um = 80.0;
        let z_um = 10.0;
        let n = 720;
        let circle: Vec<Point> = (0..n)
            .map(|i| {
                let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(radius_um * th.cos(), radius_um * th.sin())
            })
            .collect();
        let numeric = mutual_inductance_per_um2(&circle, z_um, 0.0, 0.0);
        let r = radius_um * 1e-6;
        let z = z_um * 1e-6;
        let analytic = MU0 * 1e-12 * r * r / (2.0 * (r * r + z * z).powf(1.5));
        assert!(
            (numeric - analytic).abs() < 0.01 * analytic,
            "numeric {numeric:.4e} vs analytic {analytic:.4e}"
        );
    }

    #[test]
    fn bz_changes_sign_at_the_magic_angle() {
        // Bz > 0 under the axis, < 0 far to the side (2z² < ρ²).
        assert!(dipole_bz(1.0, 0.0, 1e-6) > 0.0);
        assert!(dipole_bz(1.0, 10e-6, 1e-6) < 0.0);
    }

    #[test]
    #[should_panic(expected = "above the dipole")]
    fn zero_height_is_rejected() {
        let _ = mutual_inductance_per_um2(&square_loop(10.0, 0.0, 0.0), 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "3 vertices")]
    fn degenerate_polygon_is_rejected() {
        let _ =
            mutual_inductance_per_um2(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 5.0, 0.0, 0.0);
    }
}
