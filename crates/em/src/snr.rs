//! SNR evaluation per the paper's two-step protocol (§V-A):
//!
//! 1. power the chip without executing encryptions — the collected trace
//!    is the noise;
//! 2. execute encryptions — the collected trace is signal plus noise;
//! 3. `SNR_dB = 20·log10(RMS_signal / RMS_noise)` (Eq. 2 and Eq. 3).

use crate::emf::VoltageTrace;
use emtrust_dsp::stats;

/// Result of an SNR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrReport {
    /// RMS of the signal trace, volts.
    pub signal_rms_v: f64,
    /// RMS of the noise trace, volts.
    pub noise_rms_v: f64,
    /// The voltage-ratio SNR (Eq. 2).
    pub snr_voltage: f64,
    /// The SNR in decibels (Eq. 3).
    pub snr_db: f64,
}

/// Computes the SNR from separately collected signal and noise traces.
///
/// # Examples
///
/// ```
/// use emtrust_em::emf::VoltageTrace;
/// use emtrust_em::snr::snr_report;
///
/// let signal = VoltageTrace::new(vec![1.0, -1.0, 1.0, -1.0], 1.0);
/// let noise = VoltageTrace::new(vec![0.1, -0.1, 0.1, -0.1], 1.0);
/// let report = snr_report(&signal, &noise);
/// assert!((report.snr_db - 20.0).abs() < 1e-9);
/// ```
pub fn snr_report(signal: &VoltageTrace, noise: &VoltageTrace) -> SnrReport {
    let signal_rms_v = signal.rms_v();
    let noise_rms_v = noise.rms_v();
    let snr_voltage = stats::snr_voltage(signal_rms_v, noise_rms_v);
    SnrReport {
        signal_rms_v,
        noise_rms_v,
        snr_voltage,
        snr_db: 20.0 * snr_voltage.log10(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_to_one_is_twenty_db() {
        let s = VoltageTrace::new(vec![10.0; 8], 1.0);
        let n = VoltageTrace::new(vec![1.0; 8], 1.0);
        let r = snr_report(&s, &n);
        assert!((r.snr_db - 20.0).abs() < 1e-12);
        assert!((r.snr_voltage - 10.0).abs() < 1e-12);
        assert_eq!(r.signal_rms_v, 10.0);
        assert_eq!(r.noise_rms_v, 1.0);
    }

    #[test]
    fn equal_power_is_zero_db() {
        let s = VoltageTrace::new(vec![1.0, -1.0], 1.0);
        let n = VoltageTrace::new(vec![-1.0, 1.0], 1.0);
        assert!(snr_report(&s, &n).snr_db.abs() < 1e-12);
    }

    #[test]
    fn silent_noise_gives_infinite_snr() {
        let s = VoltageTrace::new(vec![1.0], 1.0);
        let n = VoltageTrace::new(vec![0.0], 1.0);
        assert!(snr_report(&s, &n).snr_db.is_infinite());
    }
}
