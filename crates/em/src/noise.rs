//! Environment noise.
//!
//! "Random white noise is also added in the simulation to mimic the
//! real-world environment noises. […] The external probe is inevitable to
//! be disturbed by environmental noises in collecting EM radiations, while
//! the proposed on-chip EM sensor is less affected." (paper §IV-B)
//!
//! The two calibrated constants below are the reproduction's only tuned
//! values (documented in DESIGN.md): they set the absolute noise floors so
//! that the simulated SNR experiment (E2) lands near the paper's
//! 29.976 dB / 17.483 dB. Everything downstream — detection outcomes,
//! orderings, histogram separability — follows without further tuning.

use crate::coil::Coil;
use crate::emf::VoltageTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibrated environment-noise RMS seen by the on-chip sensor, volts.
///
/// Small: the sensor sits under the package, shielded from the ambient.
/// Calibrated so E2's on-chip SNR lands at the paper's 29.976 dB for the
/// reference AES workload (signal RMS ≈ 2.0 µV).
pub const ONCHIP_ENV_NOISE_RMS_V: f64 = 6.34e-8;

/// Calibrated environment-noise RMS seen by the external probe, volts.
///
/// The probe's long unshielded loop picks up lab ambience; relative to its
/// (much weaker, ≈0.21 µV) signal this is a far larger perturbation.
/// Calibrated so E2's external SNR lands at the paper's 17.483 dB.
pub const EXTERNAL_ENV_NOISE_RMS_V: f64 = 2.85e-8;

/// Additive white Gaussian noise with a fixed RMS.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rms_v: f64,
    rng: StdRng,
}

impl NoiseModel {
    /// Creates a noise source with the given RMS (volts) and seed.
    ///
    /// # Panics
    ///
    /// Panics if `rms_v` is negative.
    pub fn new(rms_v: f64, seed: u64) -> Self {
        assert!(rms_v >= 0.0, "noise rms must be non-negative");
        Self {
            rms_v,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The calibrated environment noise for a coil.
    pub fn environment_for(coil: &Coil, seed: u64) -> Self {
        let rms = match coil {
            Coil::OnChip(_) => ONCHIP_ENV_NOISE_RMS_V,
            Coil::External(_) => EXTERNAL_ENV_NOISE_RMS_V,
        };
        Self::new(rms, seed)
    }

    /// The configured RMS in volts.
    pub fn rms_v(&self) -> f64 {
        self.rms_v
    }

    /// Draws `n` noise samples.
    pub fn samples(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// Adds noise to a voltage trace in place.
    pub fn add_to(&mut self, trace: &mut VoltageTrace) {
        for s in trace.samples_mut() {
            *s += self.next_sample();
        }
    }

    /// One Gaussian sample with the configured RMS (Box–Muller).
    fn next_sample(&mut self) -> f64 {
        if self.rms_v == 0.0 {
            return 0.0;
        }
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        self.rms_v * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_dsp::stats::{mean, rms};

    #[test]
    fn noise_has_the_requested_rms() {
        let mut n = NoiseModel::new(2.5, 1);
        let s = n.samples(100_000);
        assert!((rms(&s) - 2.5).abs() < 0.05, "rms {}", rms(&s));
        assert!(mean(&s).abs() < 0.05);
    }

    #[test]
    fn zero_rms_is_silent() {
        let mut n = NoiseModel::new(0.0, 1);
        assert!(n.samples(100).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = NoiseModel::new(1.0, 7).samples(64);
        let b = NoiseModel::new(1.0, 7).samples(64);
        let c = NoiseModel::new(1.0, 8).samples(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn add_to_perturbs_a_trace() {
        let mut v = VoltageTrace::new(vec![0.0; 256], 1.0);
        NoiseModel::new(0.1, 3).add_to(&mut v);
        assert!(v.rms_v() > 0.05);
    }

    #[test]
    fn environment_constants_reflect_the_papers_asymmetry() {
        use emtrust_layout::floorplan::Die;
        use emtrust_layout::probe::ExternalProbe;
        use emtrust_layout::spiral::SpiralSensor;
        let die = Die::square(600.0).unwrap();
        let on = NoiseModel::environment_for(&Coil::OnChip(SpiralSensor::for_die(die).unwrap()), 0);
        let ext = NoiseModel::environment_for(&Coil::External(ExternalProbe::over_die(die)), 0);
        assert_eq!(on.rms_v(), ONCHIP_ENV_NOISE_RMS_V);
        assert_eq!(ext.rms_v(), EXTERNAL_ENV_NOISE_RMS_V);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rms_is_rejected() {
        let _ = NoiseModel::new(-1.0, 0);
    }
}
