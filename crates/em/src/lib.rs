#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-em
//!
//! The electromagnetic solver of the reproduction — the substitute for the
//! paper's layout-level EM simulation flow (reference \[18\]: transient currents on the
//! extracted current-distribution network → field computation → induced
//! electromotive force on each probe).
//!
//! Physics pipeline:
//!
//! 1. Every standard cell is a small vertical current loop (its supply
//!    loop); at coil distances it acts as a **magnetic dipole** whose
//!    moment is proportional to the cell's instantaneous current
//!    ([`dipole`]).
//! 2. For a coil (the on-chip spiral or the external probe), the **mutual
//!    inductance** `M(x, y)` between a dipole at a die position and the
//!    whole coil is the sum over turns of the vector-potential line
//!    integral `∮ A·dl` — computed once per die position into a
//!    [`coupling::CouplingMap`].
//! 3. Faraday's law: `emf(t) = −d/dt Σ_cells M(x_c, y_c)·I_c(t)`. The
//!    weighted sum is produced in one pass by `emtrust-power`'s weighted
//!    synthesis; [`emf`] differentiates it ([`emf::VoltageTrace`]).
//! 4. [`noise`] adds the environment noise each probe sees (the external
//!    probe is "inevitably disturbed by environmental noises […] while the
//!    proposed on-chip EM sensor is less affected", §IV-B), and [`snr`]
//!    evaluates Eq. 2/Eq. 3.
//!
//! [`pipeline::EmSensor`] wires the full chain together for a placed
//! netlist and a coil.

pub mod array;
pub mod coil;
pub mod coupling;
pub mod dipole;
pub mod emf;
pub mod noise;
pub mod pipeline;
pub mod snr;

pub use array::{EmArray, EmTile};
pub use coil::Coil;
pub use coupling::CouplingMap;
pub use emf::VoltageTrace;
pub use noise::NoiseModel;
pub use pipeline::{EmPipelineConfig, EmSensor};

use std::error::Error;
use std::fmt;

/// Errors produced by the EM solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmError {
    /// A geometric or numeric parameter was out of range.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// Forwarded error from the power model.
    Power(emtrust_power::PowerError),
    /// Forwarded error from the layout substrate.
    Layout(emtrust_layout::LayoutError),
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            EmError::Power(e) => write!(f, "power model: {e}"),
            EmError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl Error for EmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmError::Power(e) => Some(e),
            EmError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emtrust_power::PowerError> for EmError {
    fn from(e: emtrust_power::PowerError) -> Self {
        EmError::Power(e)
    }
}

impl From<emtrust_layout::LayoutError> for EmError {
    fn from(e: emtrust_layout::LayoutError) -> Self {
        EmError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = EmError::InvalidParameter { what: "grid" };
        assert!(e.to_string().contains("grid"));
        let e: EmError = emtrust_power::PowerError::InvalidParameter { what: "x" }.into();
        assert!(e.to_string().contains("power model"));
        assert!(std::error::Error::source(&e).is_some());
        let e: EmError = emtrust_layout::LayoutError::InvalidParameter { what: "y" }.into();
        assert!(e.to_string().contains("layout"));
    }
}
