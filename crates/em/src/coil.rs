//! Unified view of the two measurement coils.

use emtrust_layout::geometry::Point;
use emtrust_layout::probe::ExternalProbe;
use emtrust_layout::spiral::SpiralSensor;

/// Either of the paper's two measurement coils.
#[derive(Debug, Clone, PartialEq)]
pub enum Coil {
    /// The on-chip spiral sensor on the top metal layer.
    OnChip(SpiralSensor),
    /// The LANGER-style external probe at package standoff.
    External(ExternalProbe),
}

impl Coil {
    /// Short display name (`on-chip sensor` / `external probe`).
    pub fn name(&self) -> &'static str {
        match self {
            Coil::OnChip(_) => "on-chip sensor",
            Coil::External(_) => "external probe",
        }
    }

    /// Height of the coil plane above the transistors, in µm.
    pub fn z_um(&self) -> f64 {
        match self {
            Coil::OnChip(s) => s.z_um(),
            Coil::External(p) => p.z_um(),
        }
    }

    /// One closed polygon per turn (counter-clockwise).
    pub fn turn_polygons(&self) -> Vec<Vec<Point>> {
        match self {
            Coil::OnChip(s) => (0..s.turns())
                .map(|i| {
                    let r = s.turn_rect(i);
                    vec![
                        r.min,
                        Point::new(r.max.x, r.min.y),
                        r.max,
                        Point::new(r.min.x, r.max.y),
                    ]
                })
                .collect(),
            Coil::External(p) => {
                // Identical circular turns, discretized.
                let n = 180;
                let circle: Vec<Point> = (0..n)
                    .map(|i| {
                        let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                        Point::new(
                            p.center().x + p.radius_um() * th.cos(),
                            p.center().y + p.radius_um() * th.sin(),
                        )
                    })
                    .collect();
                vec![circle; p.turns()]
            }
        }
    }

    /// Flux-linkage multiplicity at a die position (number of turns
    /// enclosing it).
    pub fn turns_enclosing(&self, x_um: f64, y_um: f64) -> u32 {
        match self {
            Coil::OnChip(s) => s.turns_enclosing(x_um, y_um),
            Coil::External(p) => p.turns_enclosing(x_um, y_um),
        }
    }
}

impl From<SpiralSensor> for Coil {
    fn from(s: SpiralSensor) -> Self {
        Coil::OnChip(s)
    }
}

impl From<ExternalProbe> for Coil {
    fn from(p: ExternalProbe) -> Self {
        Coil::External(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_layout::floorplan::Die;

    fn die() -> Die {
        Die::square(600.0).unwrap()
    }

    #[test]
    fn names_and_heights() {
        let s: Coil = SpiralSensor::for_die(die()).unwrap().into();
        let p: Coil = ExternalProbe::over_die(die()).into();
        assert_eq!(s.name(), "on-chip sensor");
        assert_eq!(p.name(), "external probe");
        assert!(s.z_um() < p.z_um(), "sensor sits far closer to the logic");
    }

    #[test]
    fn spiral_turn_polygons_grow() {
        let s: Coil = SpiralSensor::with_turns(die(), 5).unwrap().into();
        let polys = s.turn_polygons();
        assert_eq!(polys.len(), 5);
        let width = |p: &[Point]| p[1].x - p[0].x;
        assert!(width(&polys[4]) > width(&polys[0]));
    }

    #[test]
    fn probe_turns_are_identical() {
        let p: Coil = ExternalProbe::over_die(die()).into();
        let polys = p.turn_polygons();
        assert_eq!(polys.len(), 6);
        assert_eq!(polys[0], polys[5]);
    }

    #[test]
    fn enclosure_delegates() {
        let s: Coil = SpiralSensor::for_die(die()).unwrap().into();
        assert_eq!(s.turns_enclosing(300.0, 300.0), 20);
        let p: Coil = ExternalProbe::over_die(die()).into();
        assert_eq!(p.turns_enclosing(300.0, 300.0), 6);
    }
}
