//! Faraday emf synthesis: the coil's terminal voltage.

use emtrust_power::CurrentTrace;

/// A uniformly sampled voltage waveform (volts) — what the oscilloscope
/// sees across `Sensor In`/`Sensor Out` (or the probe terminals).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageTrace {
    samples: Vec<f64>,
    sample_rate_hz: f64,
}

impl VoltageTrace {
    /// Wraps raw voltage samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive.
    pub fn new(samples: Vec<f64>, sample_rate_hz: f64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            samples,
            sample_rate_hz,
        }
    }

    /// The samples in volts.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable samples (noise and measurement chains write here).
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the trace, returning the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Sample rate in hertz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// RMS voltage.
    pub fn rms_v(&self) -> f64 {
        emtrust_dsp::stats::rms(&self.samples)
    }
}

/// Computes the coil emf from a flux-weighted current trace:
/// `emf(t) = −dΛ/dt` with `Λ(t) = Σ_c M_c I_c(t)` (the weighted current's
/// "samples" are already in webers when the weights are mutual
/// inductances in henries).
///
/// The output has the same length as the input (first sample zero).
pub fn emf_from_weighted_current(weighted: &CurrentTrace) -> VoltageTrace {
    let mut samples = Vec::with_capacity(weighted.len());
    samples.push(0.0);
    samples.extend(weighted.derivative().iter().map(|d| -d));
    if samples.len() > weighted.len() {
        samples.truncate(weighted.len());
    }
    VoltageTrace::new(samples, weighted.sample_rate_hz())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emf_is_negative_derivative() {
        let flux = CurrentTrace::new(vec![0.0, 1.0, 1.0, 0.0], 2.0);
        let emf = emf_from_weighted_current(&flux);
        assert_eq!(emf.samples(), &[0.0, -2.0, 0.0, 2.0]);
        assert_eq!(emf.sample_rate_hz(), 2.0);
    }

    #[test]
    fn constant_flux_induces_nothing() {
        let flux = CurrentTrace::new(vec![3.0; 16], 1.0);
        let emf = emf_from_weighted_current(&flux);
        assert!(emf.samples().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn length_is_preserved() {
        let flux = CurrentTrace::new(vec![0.0, 1.0, 4.0], 1.0);
        let emf = emf_from_weighted_current(&flux);
        assert_eq!(emf.len(), 3);
        assert!(!emf.is_empty());
    }

    #[test]
    fn rms_of_known_signal() {
        let v = VoltageTrace::new(vec![1.0, -1.0, 1.0, -1.0], 1.0);
        assert!((v.rms_v() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_benign() {
        let flux = CurrentTrace::new(vec![], 1.0);
        let emf = emf_from_weighted_current(&flux);
        assert!(emf.is_empty() || emf.len() == 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        let _ = VoltageTrace::new(vec![], 0.0);
    }
}
