//! End-to-end measurement pipeline: activity → flux-weighted current →
//! emf → noisy sensor output.

use crate::coil::Coil;
use crate::coupling::{CouplingMap, DEFAULT_COUPLING_STEP_UM};
use crate::dipole::DEFAULT_DIPOLE_AREA_UM2;
use crate::emf::{emf_from_weighted_current, VoltageTrace};
use crate::noise::NoiseModel;
use crate::EmError;
use emtrust_layout::floorplan::Floorplan;
use emtrust_layout::spiral::SpiralSensor;
use emtrust_netlist::graph::Netlist;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel, CurrentTrace};
use emtrust_sim::activity::ActivityTrace;

/// An analog current source at a die location — the A2 Trojan's injection
/// interface (current samples must match the pipeline's sample rate).
#[derive(Debug, Clone)]
pub struct PointCurrentSource {
    /// Die location in µm.
    pub location_um: (f64, f64),
    /// Current samples in amperes.
    pub samples: Vec<f64>,
}

/// Assembly configuration for an [`EmSensor`], replacing the pipeline's
/// historical positional constructor with the same consuming builder
/// idiom as [`emtrust_layout::probe::ExternalProbe`]
/// (`ExternalProbe::over_die(..).with_standoff(..)`).
///
/// Every knob has a sensible default: the coil defaults to the paper's
/// on-chip spiral over the floorplan's die, the power model to the
/// generic 180 nm library at the reference clock, and the coupling grid
/// to the map's default step and dipole area. With the defaults,
/// [`EmPipelineConfig::build`] is bit-identical to the legacy
/// [`EmSensor::new`] path.
///
/// # Examples
///
/// ```no_run
/// # use emtrust_em::pipeline::EmPipelineConfig;
/// # fn demo(netlist: &emtrust_netlist::graph::Netlist,
/// #         floorplan: &emtrust_layout::floorplan::Floorplan)
/// #         -> Result<(), emtrust_em::EmError> {
/// let sensor = EmPipelineConfig::default()
///     .with_coupling_step(20.0)?
///     .build(netlist, floorplan)?;
/// # let _ = sensor; Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EmPipelineConfig {
    coil: Option<Coil>,
    model: Option<CurrentModel>,
    coupling_step_um: Option<f64>,
    dipole_area_um2: Option<f64>,
}

impl EmPipelineConfig {
    /// Uses an explicit coil instead of the default on-chip spiral.
    pub fn with_coil(mut self, coil: Coil) -> Self {
        self.coil = Some(coil);
        self
    }

    /// Uses an explicit power model instead of the generic 180 nm
    /// library at the reference clock.
    pub fn with_model(mut self, model: CurrentModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Overrides the coupling-map grid step
    /// ([`DEFAULT_COUPLING_STEP_UM`] by default).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] if `step_um <= 0`.
    pub fn with_coupling_step(mut self, step_um: f64) -> Result<Self, EmError> {
        if step_um <= 0.0 {
            return Err(EmError::InvalidParameter {
                what: "grid step must be positive",
            });
        }
        self.coupling_step_um = Some(step_um);
        Ok(self)
    }

    /// Overrides the effective cell dipole area
    /// ([`DEFAULT_DIPOLE_AREA_UM2`] by default).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] if `area_um2 <= 0`.
    pub fn with_dipole_area(mut self, area_um2: f64) -> Result<Self, EmError> {
        if area_um2 <= 0.0 {
            return Err(EmError::InvalidParameter {
                what: "dipole area must be positive",
            });
        }
        self.dipole_area_um2 = Some(area_um2);
        Ok(self)
    }

    /// Assembles the sensor over a placed netlist: resolves the coil and
    /// model defaults, computes the coupling map, and samples the
    /// per-cell weight vector.
    ///
    /// # Errors
    ///
    /// Propagates layout errors from default-coil construction and
    /// coupling-map construction errors.
    pub fn build(self, netlist: &Netlist, floorplan: &Floorplan) -> Result<EmSensor, EmError> {
        let coil = match self.coil {
            Some(coil) => coil,
            None => Coil::OnChip(SpiralSensor::for_die(floorplan.die()).map_err(EmError::Layout)?),
        };
        let model = self.model.unwrap_or_else(|| {
            CurrentModel::new(Library::generic_180nm(), ClockConfig::reference())
        });
        let map = CouplingMap::build_with_step(
            &coil,
            floorplan.die(),
            self.coupling_step_um.unwrap_or(DEFAULT_COUPLING_STEP_UM),
            self.dipole_area_um2.unwrap_or(DEFAULT_DIPOLE_AREA_UM2),
        )?;
        let weights = map.weights_for(netlist, floorplan);
        Ok(EmSensor {
            coil,
            map,
            weights,
            model,
        })
    }
}

/// A measurement channel: one coil over one placed netlist.
#[derive(Debug)]
pub struct EmSensor {
    coil: Coil,
    map: CouplingMap,
    weights: Vec<f64>,
    model: CurrentModel,
}

impl EmSensor {
    /// Builds the channel: computes the coil's coupling map over the
    /// floorplan's die and the per-cell weight vector.
    ///
    /// A thin delegate to [`EmPipelineConfig`], kept for the common case
    /// where both the coil and the model are explicit.
    ///
    /// # Errors
    ///
    /// Propagates coupling-map construction errors.
    pub fn new(
        coil: Coil,
        netlist: &Netlist,
        floorplan: &Floorplan,
        model: CurrentModel,
    ) -> Result<Self, EmError> {
        EmPipelineConfig::default()
            .with_coil(coil)
            .with_model(model)
            .build(netlist, floorplan)
    }

    /// Scales the per-cell weights element-wise — the hook through which
    /// `emtrust-silicon` applies per-chip process variation (each cell's
    /// switched charge varies chip to chip).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] if `factors` does not have one
    /// entry per cell.
    pub fn scale_weights(&mut self, factors: &[f64]) -> Result<(), EmError> {
        if factors.len() != self.weights.len() {
            return Err(EmError::InvalidParameter {
                what: "variation factors must cover every cell",
            });
        }
        for (w, f) in self.weights.iter_mut().zip(factors) {
            *w *= f;
        }
        Ok(())
    }

    /// The coil.
    pub fn coil(&self) -> &Coil {
        &self.coil
    }

    /// The precomputed coupling map.
    pub fn coupling(&self) -> &CouplingMap {
        &self.map
    }

    /// The per-cell weight (mutual inductance) vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The underlying power model.
    pub fn model(&self) -> &CurrentModel {
        &self.model
    }

    /// Synthesizes the noiseless sensor emf for an activity trace.
    ///
    /// - `extra_leakage_a`: per-cycle extra leakage (T2's channel),
    /// - `injections`: analog point current sources (A2's channel).
    ///
    /// # Errors
    ///
    /// Propagates power-model errors (length mismatches).
    pub fn emf(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
    ) -> Result<VoltageTrace, EmError> {
        self.emf_with(netlist, activity, extra_leakage_a, injections, 1)
    }

    /// [`Self::emf`] with current synthesis fanned across `workers`
    /// threads (see [`CurrentModel::synthesize_with`]); the emf is
    /// bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates power-model errors (length mismatches).
    pub fn emf_with(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        workers: usize,
    ) -> Result<VoltageTrace, EmError> {
        let _span = emtrust_telemetry::span("emf");
        let mut weighted = {
            let _synth = emtrust_telemetry::span("synthesize");
            self.model.synthesize_with(
                netlist,
                activity,
                Some(&self.weights),
                extra_leakage_a,
                workers,
            )?
        };
        for src in injections {
            let m = self.map.at(src.location_um.0, src.location_um.1);
            if m == 0.0 || src.samples.is_empty() {
                continue;
            }
            let scaled: Vec<f64> = src.samples.iter().map(|&i| i * m).collect();
            weighted.add_assign(&CurrentTrace::new(scaled, weighted.sample_rate_hz()));
        }
        Ok(emf_from_weighted_current(&weighted))
    }

    /// Synthesizes a *measured* trace: emf plus this coil's environment
    /// noise (freshly seeded from `noise_seed`).
    ///
    /// # Errors
    ///
    /// Propagates power-model errors.
    pub fn measure(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        noise_seed: u64,
    ) -> Result<VoltageTrace, EmError> {
        self.measure_with(
            netlist,
            activity,
            extra_leakage_a,
            injections,
            noise_seed,
            1,
        )
    }

    /// [`Self::measure`] with current synthesis fanned across `workers`
    /// threads. The noise stream is seeded from `noise_seed` alone, so the
    /// measurement is bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates power-model errors.
    pub fn measure_with(
        &self,
        netlist: &Netlist,
        activity: &ActivityTrace,
        extra_leakage_a: Option<&[f64]>,
        injections: &[PointCurrentSource],
        noise_seed: u64,
        workers: usize,
    ) -> Result<VoltageTrace, EmError> {
        let _span = emtrust_telemetry::span("measure");
        let mut trace = self.emf_with(netlist, activity, extra_leakage_a, injections, workers)?;
        NoiseModel::environment_for(&self.coil, noise_seed).add_to(&mut trace);
        Ok(trace)
    }

    /// A pure-noise measurement of length `n_samples` (the paper's step 1:
    /// chip powered, no encryption).
    pub fn measure_noise(&self, n_samples: usize, noise_seed: u64) -> VoltageTrace {
        let mut trace =
            VoltageTrace::new(vec![0.0; n_samples], self.model.clock().sample_rate_hz());
        NoiseModel::environment_for(&self.coil, noise_seed).add_to(&mut trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_layout::floorplan::Die;
    use emtrust_layout::spiral::SpiralSensor;
    use emtrust_netlist::library::Library;
    use emtrust_power::ClockConfig;
    use emtrust_sim::engine::Simulator;

    fn small_design() -> (Netlist, Floorplan) {
        let mut n = emtrust_netlist::graph::Netlist::new("bank");
        n.push_module("aes");
        for _ in 0..32 {
            let (q, d) = n.dff_deferred();
            let nq = n.not(q);
            n.connect_dff_d(d, nq);
            n.mark_output("q", q);
        }
        n.pop_module();
        let lib = Library::generic_180nm();
        let die = Die::square(600.0).unwrap();
        let fp = Floorplan::place(&n, &lib, die).unwrap();
        (n, fp)
    }

    fn sensor(n: &Netlist, fp: &Floorplan) -> EmSensor {
        let coil: Coil = SpiralSensor::for_die(fp.die()).unwrap().into();
        let model = CurrentModel::new(Library::generic_180nm(), ClockConfig::reference());
        EmSensor::new(coil, n, fp, model).unwrap()
    }

    fn activity(n: &Netlist, cycles: usize) -> ActivityTrace {
        let mut sim = Simulator::new(n).unwrap();
        sim.settle();
        sim.start_recording();
        sim.run(cycles);
        sim.take_recording()
    }

    #[test]
    fn switching_produces_nonzero_emf() {
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        let act = activity(&n, 4);
        let emf = s.emf(&n, &act, None, &[]).unwrap();
        assert_eq!(emf.len(), 4 * 64);
        assert!(emf.rms_v() > 0.0, "toggling flops must induce an emf");
    }

    #[test]
    fn emf_is_deterministic_but_measurement_is_noisy() {
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        let act = activity(&n, 2);
        let a = s.emf(&n, &act, None, &[]).unwrap();
        let b = s.emf(&n, &act, None, &[]).unwrap();
        assert_eq!(a, b);
        let m1 = s.measure(&n, &act, None, &[], 1).unwrap();
        let m2 = s.measure(&n, &act, None, &[], 2).unwrap();
        assert_ne!(m1.samples(), m2.samples());
    }

    #[test]
    fn injection_adds_signal() {
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        let act = activity(&n, 2);
        let base = s.emf(&n, &act, None, &[]).unwrap();
        let c = fp.die().center();
        let inj = PointCurrentSource {
            location_um: (c.x, c.y),
            samples: (0..128)
                .map(|i| if i % 2 == 0 { 1e-3 } else { -1e-3 })
                .collect(),
        };
        let with = s.emf(&n, &act, None, &[inj]).unwrap();
        assert!(with.rms_v() > base.rms_v());
    }

    #[test]
    fn injection_far_outside_the_die_is_clamped_not_lost() {
        // Clamping to the grid edge keeps the call well-defined.
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        let act = activity(&n, 1);
        let inj = PointCurrentSource {
            location_um: (-1e6, -1e6),
            samples: vec![1.0; 64],
        };
        assert!(s.emf(&n, &act, None, &[inj]).is_ok());
    }

    #[test]
    fn noise_only_measurement_has_the_environment_rms() {
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        let noise = s.measure_noise(40_000, 5);
        let expected = crate::noise::ONCHIP_ENV_NOISE_RMS_V;
        assert!((noise.rms_v() - expected).abs() < 0.05 * expected);
    }

    #[test]
    fn config_defaults_match_the_legacy_constructor() {
        let (n, fp) = small_design();
        let legacy = sensor(&n, &fp);
        let built = EmPipelineConfig::default().build(&n, &fp).unwrap();
        assert_eq!(built.weights(), legacy.weights());
        assert_eq!(built.coupling(), legacy.coupling());
        assert_eq!(built.coil().name(), legacy.coil().name());
    }

    #[test]
    fn config_knobs_validate_and_apply() {
        assert!(EmPipelineConfig::default().with_coupling_step(0.0).is_err());
        assert!(EmPipelineConfig::default().with_dipole_area(-1.0).is_err());
        let (n, fp) = small_design();
        let s = EmPipelineConfig::default()
            .with_coupling_step(30.0)
            .unwrap()
            .build(&n, &fp)
            .unwrap();
        assert_eq!(s.coupling().step_um(), 30.0);
    }

    #[test]
    fn accessors_expose_the_channel() {
        let (n, fp) = small_design();
        let s = sensor(&n, &fp);
        assert_eq!(s.coil().name(), "on-chip sensor");
        assert_eq!(s.weights().len(), n.cell_count());
        assert!(s.coupling().mean_abs() > 0.0);
        assert_eq!(s.model().clock().samples_per_cycle(), 64);
    }
}
