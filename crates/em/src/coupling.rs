//! Precomputed coupling (mutual-inductance) maps.
//!
//! Evaluating the turn-by-turn line integral for every one of ~12 000
//! cells would be wasteful: the kernel varies smoothly on the scale of the
//! coil pitch. A [`CouplingMap`] therefore evaluates the exact integral on
//! a uniform grid over the die once, and every cell samples it bilinearly.

use crate::coil::Coil;
use crate::dipole::{mutual_inductance_per_um2, DEFAULT_DIPOLE_AREA_UM2};
use crate::EmError;
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_netlist::graph::Netlist;

/// Default grid step of [`CouplingMap::build`], in µm.
pub const DEFAULT_COUPLING_STEP_UM: f64 = 10.0;

/// A gridded mutual-inductance kernel `M(x, y)` for one coil, in henries
/// per cell (the default effective dipole area is baked in).
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingMap {
    x0: f64,
    y0: f64,
    step_um: f64,
    nx: usize,
    ny: usize,
    /// Row-major `ny × nx` kernel values.
    values: Vec<f64>,
}

impl CouplingMap {
    /// Builds the kernel for `coil` over `die` with the default grid step
    /// (10 µm) and the default cell dipole area.
    ///
    /// # Errors
    ///
    /// Propagates [`CouplingMap::build_with_step`] errors.
    pub fn build(coil: &Coil, die: Die) -> Result<Self, EmError> {
        Self::build_with_step(coil, die, DEFAULT_COUPLING_STEP_UM, DEFAULT_DIPOLE_AREA_UM2)
    }

    /// Builds the kernel with a custom grid step (µm) and cell dipole
    /// area (µm²).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] if `step_um <= 0` or
    /// `dipole_area_um2 <= 0`.
    pub fn build_with_step(
        coil: &Coil,
        die: Die,
        step_um: f64,
        dipole_area_um2: f64,
    ) -> Result<Self, EmError> {
        if step_um <= 0.0 {
            return Err(EmError::InvalidParameter {
                what: "grid step must be positive",
            });
        }
        if dipole_area_um2 <= 0.0 {
            return Err(EmError::InvalidParameter {
                what: "dipole area must be positive",
            });
        }
        let x0 = die.core.min.x;
        let y0 = die.core.min.y;
        let nx = (die.width_um() / step_um).ceil() as usize + 1;
        let ny = (die.height_um() / step_um).ceil() as usize + 1;
        let polys = coil.turn_polygons();
        let z = coil.z_um();
        // SoA sweep: grid coordinates are precomputed once, and the loop
        // nest runs polygon-outermost so one turn's vertex data stays hot
        // while it accumulates into the contiguous `values` rows. The
        // per-point polygon order (and with it every accumulation bit) is
        // exactly that of the point-outermost loop it replaced.
        let xs: Vec<f64> = (0..nx).map(|ix| x0 + ix as f64 * step_um).collect();
        let ys: Vec<f64> = (0..ny).map(|iy| y0 + iy as f64 * step_um).collect();
        let mut values = vec![0.0; nx * ny];
        for p in &polys {
            for (row, &y) in values.chunks_exact_mut(nx).zip(&ys) {
                for (v, &x) in row.iter_mut().zip(&xs) {
                    *v += mutual_inductance_per_um2(p, z, x, y);
                }
            }
        }
        for v in values.iter_mut() {
            *v *= dipole_area_um2;
        }
        Ok(Self {
            x0,
            y0,
            step_um,
            nx,
            ny,
            values,
        })
    }

    /// Kernel value at a die position (bilinear interpolation; clamped to
    /// the grid boundary).
    pub fn at(&self, x_um: f64, y_um: f64) -> f64 {
        let fx = ((x_um - self.x0) / self.step_um).clamp(0.0, (self.nx - 1) as f64);
        let fy = ((y_um - self.y0) / self.step_um).clamp(0.0, (self.ny - 1) as f64);
        let ix = (fx as usize).min(self.nx - 2);
        let iy = (fy as usize).min(self.ny - 2);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v = |i: usize, j: usize| self.values[j * self.nx + i];
        v(ix, iy) * (1.0 - tx) * (1.0 - ty)
            + v(ix + 1, iy) * tx * (1.0 - ty)
            + v(ix, iy + 1) * (1.0 - tx) * ty
            + v(ix + 1, iy + 1) * tx * ty
    }

    /// Per-cell weight vector for a placed netlist, indexed by
    /// [`emtrust_netlist::graph::CellId::index`] — ready to hand to the
    /// power model's weighted synthesis.
    pub fn weights_for(&self, netlist: &Netlist, floorplan: &Floorplan) -> Vec<f64> {
        (0..netlist.cell_count())
            .map(|i| {
                let p = floorplan.locations()[i];
                self.at(p.x, p.y)
            })
            .collect()
    }

    /// The grid step in µm.
    pub fn step_um(&self) -> f64 {
        self.step_um
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Mean kernel magnitude over the grid — a scalar summary of how
    /// strongly the coil couples to the die.
    pub fn mean_abs(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|v| v.abs()).sum::<f64>() / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_layout::probe::ExternalProbe;
    use emtrust_layout::spiral::SpiralSensor;

    fn die() -> Die {
        Die::square(600.0).unwrap()
    }

    fn onchip_map() -> CouplingMap {
        let coil: Coil = SpiralSensor::for_die(die()).unwrap().into();
        CouplingMap::build_with_step(&coil, die(), 30.0, DEFAULT_DIPOLE_AREA_UM2).unwrap()
    }

    #[test]
    fn center_couples_strongest_for_the_spiral() {
        let map = onchip_map();
        let center = map.at(300.0, 300.0);
        let edge = map.at(30.0, 30.0);
        assert!(center > 0.0);
        assert!(
            center > 3.0 * edge.abs(),
            "center {center:.3e} vs edge {edge:.3e}"
        );
    }

    #[test]
    fn onchip_kernel_dwarfs_external_kernel() {
        let die = die();
        let on = onchip_map();
        let ext_coil: Coil = ExternalProbe::over_die(die).into();
        let ext =
            CouplingMap::build_with_step(&ext_coil, die, 30.0, DEFAULT_DIPOLE_AREA_UM2).unwrap();
        // The paper's core claim, emerging from geometry: the on-chip
        // sensor couples far more strongly than the probe at 100 µm.
        assert!(
            on.mean_abs() > 10.0 * ext.mean_abs(),
            "on-chip {:.3e} vs external {:.3e}",
            on.mean_abs(),
            ext.mean_abs()
        );
    }

    #[test]
    fn interpolation_is_continuous() {
        let map = onchip_map();
        let a = map.at(300.0, 300.0);
        let b = map.at(301.0, 300.0);
        assert!((a - b).abs() < 0.2 * a.abs().max(1e-30));
    }

    #[test]
    fn out_of_grid_positions_clamp() {
        let map = onchip_map();
        let inside = map.at(0.0, 0.0);
        let outside = map.at(-50.0, -50.0);
        assert_eq!(inside, outside);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let coil: Coil = SpiralSensor::for_die(die()).unwrap().into();
        assert!(CouplingMap::build_with_step(&coil, die(), 0.0, 30.0).is_err());
        assert!(CouplingMap::build_with_step(&coil, die(), 10.0, -1.0).is_err());
    }

    #[test]
    fn weights_follow_placement() {
        use emtrust_netlist::graph::Netlist;
        use emtrust_netlist::library::Library;
        let mut n = Netlist::new("t");
        let a = n.input("a");
        n.push_module("aes");
        let mut last = a;
        for _ in 0..50 {
            last = n.not(last);
        }
        n.pop_module();
        n.mark_output("y", last);
        let lib = Library::generic_180nm();
        let fp = Floorplan::place(&n, &lib, die()).unwrap();
        let map = onchip_map();
        let w = map.weights_for(&n, &fp);
        assert_eq!(w.len(), 50);
        for (i, &wi) in w.iter().enumerate() {
            let p = fp.locations()[i];
            assert!((wi - map.at(p.x, p.y)).abs() < 1e-18);
        }
    }

    #[test]
    fn polygon_outer_sweep_is_bit_identical_to_point_outer_reference() {
        // The pre-optimization kernel: one grid point at a time, summing
        // over polygons. The production sweep must reproduce every value
        // bit for bit.
        let die = die();
        let coil: Coil = SpiralSensor::for_die(die).unwrap().into();
        let step = 30.0;
        let map = CouplingMap::build_with_step(&coil, die, step, DEFAULT_DIPOLE_AREA_UM2).unwrap();
        let (nx, ny) = map.grid_shape();
        let polys = coil.turn_polygons();
        let z = coil.z_um();
        for iy in 0..ny {
            for ix in 0..nx {
                let x = die.core.min.x + ix as f64 * step;
                let y = die.core.min.y + iy as f64 * step;
                let m: f64 = polys
                    .iter()
                    .map(|p| mutual_inductance_per_um2(p, z, x, y))
                    .sum();
                let reference = m * DEFAULT_DIPOLE_AREA_UM2;
                assert_eq!(
                    map.values[iy * nx + ix].to_bits(),
                    reference.to_bits(),
                    "grid point ({ix}, {iy})"
                );
            }
        }
    }

    #[test]
    fn grid_shape_matches_die() {
        let map = onchip_map();
        let (nx, ny) = map.grid_shape();
        assert_eq!(nx, 21);
        assert_eq!(ny, 21);
        assert_eq!(map.step_um(), 30.0);
    }
}
