//! Per-chip circuit breakers: the bulkhead between a misbehaving chip
//! and its shard's queue budget.
//!
//! The breaker consumes the core health state machine's
//! consecutive-rejection signal
//! ([`emtrust::HealthTracker::consecutive_rejections`]) rather than
//! inventing its own failure detector: a chip whose sanitizer keeps
//! rejecting traces trips to [`BreakerState::Open`] and is refused at
//! admission, *before* a queue slot is consumed. Quarantine waits are
//! measured in admission ticks — the number of batches the fleet has
//! attempted for that chip — which keeps replay bit-identical (no wall
//! clock anywhere). After the wait elapses the breaker goes
//! [`BreakerState::HalfOpen`] and admits exactly one probe batch: a
//! clean probe closes the breaker and resets the trip count, a
//! fully-rejected one re-trips it with a doubled (capped) wait.

use crate::config::BreakerConfig;

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Chip is quarantined; admissions are refused until the probe
    /// wait elapses.
    Open,
    /// One probe batch is in flight; its outcome decides the next
    /// state.
    HalfOpen,
}

/// A single chip's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Consecutive trips without an intervening clean probe; drives the
    /// exponential probe wait.
    trips: u32,
    /// Tick at which the next half-open probe may be admitted.
    deny_until: u64,
    /// Admission attempts seen for this chip — the breaker's clock.
    ticks: u64,
    /// Total trips over the breaker's lifetime (forensics).
    lifetime_trips: u64,
    /// Admissions refused while `Open` (forensics).
    refusals: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            trips: 0,
            deny_until: 0,
            ticks: 0,
            lifetime_trips: 0,
            refusals: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total trips over the breaker's lifetime.
    pub fn lifetime_trips(&self) -> u64 {
        self.lifetime_trips
    }

    /// Admissions refused while quarantined.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Advances the breaker's clock by one admission attempt and
    /// decides whether the batch may pass. Returns `false` while the
    /// chip is quarantined; when the probe wait has elapsed the breaker
    /// transitions to `HalfOpen` and admits the batch as a probe.
    pub fn admit(&mut self) -> bool {
        self.ticks += 1;
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.ticks >= self.deny_until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    self.refusals += 1;
                    false
                }
            }
        }
    }

    /// Feeds back the outcome of an admitted batch.
    ///
    /// `consecutive_rejections` is the chip pipeline's current streak;
    /// `batch_fully_rejected` is true when *every* trace in the batch
    /// was rejected (the signal a half-open probe failed).
    pub fn record(&mut self, consecutive_rejections: u64, batch_fully_rejected: bool) {
        match self.state {
            BreakerState::HalfOpen => {
                if batch_fully_rejected {
                    self.trip();
                } else {
                    self.reset();
                }
            }
            BreakerState::Closed => {
                if consecutive_rejections >= self.config.trip_after {
                    self.trip();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        let shift = self.trips.min(16);
        let wait = self
            .config
            .probe_base
            .saturating_mul(1u64 << shift)
            .min(self.config.probe_cap)
            .max(1);
        self.deny_until = self.ticks + wait;
        self.trips = self.trips.saturating_add(1);
        self.lifetime_trips += 1;
        self.state = BreakerState::Open;
    }

    fn reset(&mut self) {
        self.state = BreakerState::Closed;
        self.trips = 0;
        self.deny_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            probe_base: 2,
            probe_cap: 8,
        })
    }

    #[test]
    fn closed_breaker_admits_everything() {
        let mut b = breaker();
        for _ in 0..100 {
            assert!(b.admit());
            b.record(0, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.lifetime_trips(), 0);
    }

    #[test]
    fn trips_at_threshold_and_refuses_until_probe_window() {
        let mut b = breaker();
        assert!(b.admit());
        b.record(3, true); // streak hits trip_after
        assert_eq!(b.state(), BreakerState::Open);
        // probe_base = 2 ticks of refusal...
        assert!(!b.admit());
        // ...then the next attempt is the half-open probe.
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.refusals(), 1);
    }

    #[test]
    fn failed_probe_doubles_the_wait_up_to_the_cap() {
        let mut b = breaker();
        assert!(b.admit());
        b.record(3, true); // trip 1: wait 2
        let mut waits = Vec::new();
        for _ in 0..4 {
            let mut refused = 0;
            while !b.admit() {
                refused += 1;
            }
            waits.push(refused + 1); // +1: the admitting tick itself
            b.record(99, true); // probe fails, re-trip
        }
        assert_eq!(waits, vec![2, 4, 8, 8], "exponential then capped");
    }

    #[test]
    fn clean_probe_closes_and_resets_the_schedule() {
        let mut b = breaker();
        assert!(b.admit());
        b.record(3, true);
        while !b.admit() {}
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(0, false); // probe succeeds
        assert_eq!(b.state(), BreakerState::Closed);
        // A later trip starts back at the base wait.
        assert!(b.admit());
        b.record(3, true);
        let mut refused = 0;
        while !b.admit() {
            refused += 1;
        }
        assert_eq!(refused + 1, 2, "schedule reset to probe_base");
        assert_eq!(b.lifetime_trips(), 2);
    }

    #[test]
    fn half_open_probe_is_a_single_batch() {
        let mut b = breaker();
        assert!(b.admit());
        b.record(3, true);
        while !b.admit() {}
        // The probe was admitted; until its outcome is recorded the
        // breaker stays half-open and (by service contract) no second
        // batch for this chip is in flight. A subsequent admit in
        // HalfOpen is allowed — the service serialises per-chip batches.
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
