//! Sharded fingerprint store: bounded hot per-chip pipelines with LRU
//! eviction and graceful cold-start.
//!
//! Each shard worker owns one [`PipelineStore`]. The store holds at
//! most `capacity` *hot* chips — each a fitted
//! [`DetectionPipeline`] plus a rolling
//! baseline of its most recent clean traces. When a new chip arrives at
//! a full store the least-recently-used hot chip is evicted to a
//! bounded *cold* map that retains its baseline and cumulative
//! counters; if that chip returns, its fingerprint is **re-fitted**
//! from the retained baseline instead of erroring or re-warming from
//! scratch. A chip never seen before bootstraps gracefully: its first
//! `golden_traces` clean traces become its golden set, after which the
//! fingerprint is fitted and scoring begins.
//!
//! All state is per-chip — nothing a poisoned neighbour does can
//! perturb another chip's baseline, fingerprint or counters, which is
//! what makes the fleet's quarantine-isolation guarantee bit-exact.

use std::collections::{HashMap, VecDeque};

use emtrust::telemetry::LabelSet;
use emtrust::{
    BaselineSource, DetectionPipeline, EuclideanDetector, FingerprintConfig, GoldenFingerprint,
    SelfCalibratingConfig, SensorHealth, TraceSanitizer, TraceSet,
};

use crate::config::{BaselineMode, StoreConfig};
use crate::FleetError;

/// Nominal acquisition rate stamped on refit golden sets — matches the
/// 640 MHz convention used across the suite's benches.
pub const SAMPLE_RATE_HZ: f64 = 640e6;

/// What happened to one chip's batch inside the store.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipBatchOutcome {
    /// Traces scored against the chip's fitted fingerprint.
    pub scored: usize,
    /// Traces absorbed into the warm-up baseline (fingerprint not yet
    /// fitted when they arrived).
    pub warmup: usize,
    /// Traces rejected (sanitizer refusal, non-finite samples, length
    /// mismatch against the chip's baseline).
    pub rejected: usize,
    /// Fused alarms this batch raised.
    pub alarms: usize,
    /// The chip's consecutive-rejection streak after this batch — the
    /// circuit breaker's input signal.
    pub consecutive_rejections: u64,
    /// Whether every trace in the batch was rejected (a failed
    /// half-open probe).
    pub fully_rejected: bool,
    /// Sensor health after the batch (`Healthy` while still warming).
    pub health: SensorHealth,
    /// Whether this batch completed the chip's fingerprint fit.
    pub fitted_now: bool,
}

/// Cumulative per-chip accounting, surviving eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// Traces scored.
    pub scored: u64,
    /// Traces rejected.
    pub rejected: u64,
    /// Alarms raised.
    pub alarms: u64,
    /// Whether the chip is currently hot (resident pipeline).
    pub hot: bool,
}

struct ChipEntry {
    /// `None` while the chip is still warming up its baseline.
    pipeline: Option<DetectionPipeline>,
    /// Rolling clean-trace baseline, newest at the back.
    baseline: VecDeque<Vec<f64>>,
    last_used: u64,
    streak: u64,
    stats: ChipStats,
    labels: LabelSet,
}

struct ColdRecord {
    baseline: Vec<Vec<f64>>,
    streak: u64,
    stats: ChipStats,
    evicted_at: u64,
}

/// One shard's bounded chip-pipeline cache.
pub struct PipelineStore {
    config: StoreConfig,
    golden_traces: usize,
    mode: BaselineMode,
    shard_labels: LabelSet,
    hot: HashMap<String, ChipEntry>,
    cold: HashMap<String, ColdRecord>,
    clock: u64,
    evictions: u64,
    cold_drops: u64,
    fits: u64,
    refits: u64,
}

impl PipelineStore {
    /// An empty store for one shard. `golden_traces` is the clean-trace
    /// count that completes a cold-start (the warm-up length under
    /// [`BaselineMode::SelfCalibrating`]); `shard_labels` is stamped on
    /// every per-chip pipeline's metrics.
    pub fn new(
        config: StoreConfig,
        golden_traces: usize,
        mode: BaselineMode,
        shard_labels: LabelSet,
    ) -> Self {
        PipelineStore {
            config,
            golden_traces: golden_traces.max(2),
            mode,
            shard_labels,
            hot: HashMap::new(),
            cold: HashMap::new(),
            clock: 0,
            evictions: 0,
            cold_drops: 0,
            fits: 0,
            refits: 0,
        }
    }

    /// The baseline mode every chip entry is built with.
    pub fn mode(&self) -> BaselineMode {
        self.mode
    }

    /// Hot chips currently resident.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Cold records currently retained.
    pub fn cold_len(&self) -> usize {
        self.cold.len()
    }

    /// LRU evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cold records dropped because the cold map itself overflowed.
    pub fn cold_drops(&self) -> u64 {
        self.cold_drops
    }

    /// First-time fingerprint fits (cold starts completed).
    pub fn fits(&self) -> u64 {
        self.fits
    }

    /// Re-fits of returning evicted chips.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Cumulative stats for every chip the store has ever seen (hot and
    /// cold), in unspecified order.
    pub fn chip_stats(&self) -> Vec<(String, ChipStats)> {
        let mut out: Vec<(String, ChipStats)> = self
            .hot
            .iter()
            .map(|(id, e)| (id.clone(), e.stats))
            .chain(self.cold.iter().map(|(id, r)| {
                let mut s = r.stats;
                s.hot = false;
                (id.clone(), s)
            }))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Runs one chip's batch through its pipeline, warming up, fitting
    /// or re-fitting as needed.
    pub fn ingest(
        &mut self,
        chip_id: &str,
        traces: &[Vec<f64>],
    ) -> Result<ChipBatchOutcome, FleetError> {
        self.clock += 1;
        if !self.hot.contains_key(chip_id) {
            self.make_room();
            let entry = match self.cold.remove(chip_id) {
                Some(rec) => self.revive(chip_id, rec)?,
                None => {
                    let labels = self.shard_labels.with("chip", chip_id);
                    // Self-calibrating mode protects a brand-new chip
                    // immediately: its pipeline exists from the first
                    // trace and arms itself from live traffic.
                    let pipeline = match self.mode {
                        BaselineMode::Golden => None,
                        BaselineMode::SelfCalibrating => {
                            Some(build_selfcal_pipeline(self.golden_traces, labels.clone())?)
                        }
                    };
                    ChipEntry {
                        pipeline,
                        baseline: VecDeque::new(),
                        last_used: 0,
                        streak: 0,
                        stats: ChipStats {
                            hot: true,
                            ..ChipStats::default()
                        },
                        labels,
                    }
                }
            };
            self.hot.insert(chip_id.to_string(), entry);
        }
        let golden_traces = self.golden_traces;
        let baseline_window = self.config.baseline_window;
        let clock = self.clock;
        let entry = match self.hot.get_mut(chip_id) {
            Some(e) => e,
            // Unreachable: inserted above. Kept total to honour the
            // crate-wide no-panic gate.
            None => {
                return Err(FleetError::InvalidConfig {
                    what: "store lost a freshly inserted chip entry",
                })
            }
        };
        entry.last_used = clock;

        let mut out = ChipBatchOutcome {
            scored: 0,
            warmup: 0,
            rejected: 0,
            alarms: 0,
            consecutive_rejections: entry.streak,
            fully_rejected: false,
            health: SensorHealth::Healthy,
            fitted_now: false,
        };

        let mut fit_wanted = false;
        for trace in traces {
            match &mut entry.pipeline {
                Some(pipeline) => {
                    let was_armed = pipeline.calibration_state().is_armed();
                    let o = pipeline.ingest_trace(trace);
                    if o.index.is_some() {
                        let armed = pipeline.calibration_state().is_armed();
                        if pipeline.is_self_calibrating() && !was_armed {
                            // Still warming the rolling baseline; the
                            // trace that completes it arms the chip.
                            out.warmup += 1;
                            if armed {
                                out.fitted_now = true;
                                self.fits += 1;
                            }
                        } else {
                            out.scored += 1;
                        }
                        entry.stats.scored += 1;
                        push_baseline(&mut entry.baseline, trace, baseline_window);
                    } else {
                        out.rejected += 1;
                        entry.stats.rejected += 1;
                    }
                    if o.alarm.is_some() {
                        out.alarms += 1;
                        entry.stats.alarms += 1;
                    }
                    entry.streak = pipeline.consecutive_rejections();
                    out.health = o.health;
                }
                None => {
                    if baseline_compatible(&entry.baseline, trace) {
                        push_baseline(&mut entry.baseline, trace, baseline_window);
                        out.warmup += 1;
                        entry.stats.scored += 1;
                        entry.streak = 0;
                        if entry.baseline.len() >= golden_traces {
                            fit_wanted = true;
                        }
                    } else {
                        out.rejected += 1;
                        entry.stats.rejected += 1;
                        entry.streak += 1;
                    }
                }
            }
            if fit_wanted && entry.pipeline.is_none() {
                let labels = entry.labels.clone();
                entry.pipeline = Some(build_pipeline(&entry.baseline, labels)?);
                out.fitted_now = true;
                self.fits += 1;
            }
        }

        out.consecutive_rejections = entry.streak;
        out.fully_rejected = !traces.is_empty() && out.rejected == traces.len();
        Ok(out)
    }

    /// Rebuilds a returning chip's entry from its cold record —
    /// re-fitting the fingerprint from the retained baseline in golden
    /// mode, replaying the baseline into a fresh rolling warm-up in
    /// self-calibrating mode.
    fn revive(&mut self, chip_id: &str, rec: ColdRecord) -> Result<ChipEntry, FleetError> {
        let labels = self.shard_labels.with("chip", chip_id);
        let baseline: VecDeque<Vec<f64>> = rec.baseline.into_iter().collect();
        let pipeline = match self.mode {
            BaselineMode::Golden => {
                if baseline.len() >= 2 {
                    self.refits += 1;
                    Some(build_pipeline(&baseline, labels.clone())?)
                } else {
                    None
                }
            }
            BaselineMode::SelfCalibrating => {
                let mut pipeline = build_selfcal_pipeline(self.golden_traces, labels.clone())?;
                if !baseline.is_empty() {
                    self.refits += 1;
                    for trace in &baseline {
                        let _ = pipeline.ingest_trace(trace);
                    }
                }
                Some(pipeline)
            }
        };
        let mut stats = rec.stats;
        stats.hot = true;
        Ok(ChipEntry {
            pipeline,
            baseline,
            last_used: 0,
            streak: rec.streak,
            stats,
            labels,
        })
    }

    /// Evicts the least-recently-used hot chip if the store is full,
    /// demoting it to the bounded cold map.
    fn make_room(&mut self) {
        if self.hot.len() < self.config.capacity {
            return;
        }
        let victim = self
            .hot
            .iter()
            .min_by_key(|(id, e)| (e.last_used, (*id).clone()))
            .map(|(id, _)| id.clone());
        let Some(victim) = victim else { return };
        if let Some(entry) = self.hot.remove(&victim) {
            self.evictions += 1;
            emtrust::telemetry::counter("fleet.store_evictions", 1);
            let mut stats = entry.stats;
            stats.hot = false;
            self.demote_cold(
                victim,
                ColdRecord {
                    baseline: entry.baseline.into_iter().collect(),
                    streak: entry.streak,
                    stats,
                    evicted_at: self.clock,
                },
            );
        }
    }

    fn demote_cold(&mut self, chip_id: String, rec: ColdRecord) {
        if self.cold.len() >= self.config.cold_capacity {
            let oldest = self
                .cold
                .iter()
                .min_by_key(|(id, r)| (r.evicted_at, (*id).clone()))
                .map(|(id, _)| id.clone());
            if let Some(oldest) = oldest {
                self.cold.remove(&oldest);
                self.cold_drops += 1;
            }
        }
        self.cold.insert(chip_id, rec);
    }
}

/// Whether a trace can join the chip's baseline: finite samples and a
/// length agreeing with what the baseline already holds.
fn baseline_compatible(baseline: &VecDeque<Vec<f64>>, trace: &[f64]) -> bool {
    if trace.is_empty() || trace.iter().any(|s| !s.is_finite()) {
        return false;
    }
    baseline
        .front()
        .is_none_or(|first| first.len() == trace.len())
}

fn push_baseline(baseline: &mut VecDeque<Vec<f64>>, trace: &[f64], window: usize) {
    if !baseline_compatible(baseline, trace) {
        return;
    }
    baseline.push_back(trace.to_vec());
    while baseline.len() > window {
        baseline.pop_front();
    }
}

/// Fits a golden fingerprint from the baseline and wraps it in a fresh
/// per-chip pipeline. PCA is disabled: fleet-scale per-chip fits trade
/// the projection's compaction for constant-time cold starts.
fn build_pipeline(
    baseline: &VecDeque<Vec<f64>>,
    labels: LabelSet,
) -> Result<DetectionPipeline, FleetError> {
    let golden = TraceSet::new(baseline.iter().cloned().collect(), SAMPLE_RATE_HZ)?;
    let config = FingerprintConfig {
        pca_components: None,
        threshold_margin: 1.25,
        ..FingerprintConfig::default()
    };
    let fingerprint = GoldenFingerprint::fit(&golden, config)?;
    Ok(DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::new(fingerprint)))
        .sanitizer(TraceSanitizer::default())
        .labels(labels)
        .build())
}

/// Wraps a self-calibrating Euclidean detector in a fresh per-chip
/// pipeline: the rolling baseline arms after `warmup` live traces and
/// no golden material is ever consulted.
fn build_selfcal_pipeline(
    warmup: usize,
    labels: LabelSet,
) -> Result<DetectionPipeline, FleetError> {
    let cfg = SelfCalibratingConfig {
        warmup,
        ..SelfCalibratingConfig::default()
    };
    let mut pipeline = DetectionPipeline::builder()
        .detector(Box::new(EuclideanDetector::from_config(
            FingerprintConfig::default(),
        )))
        .sanitizer(TraceSanitizer::default())
        .labels(labels)
        .build();
    pipeline.fit_baseline(&BaselineSource::self_calibrating(cfg))?;
    Ok(pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_trace(seed: u64) -> Vec<f64> {
        (0..64)
            .map(|i| (i as f64 * 0.2).sin() + ((seed as f64) * 1e-4) * (i as f64 * 0.05).cos())
            .collect()
    }

    /// Like [`clean_trace`] but with hash-derived jitter, so rolling
    /// robust statistics see a non-degenerate spread.
    fn noisy_trace(seed: u64) -> Vec<f64> {
        (0..64)
            .map(|i| {
                let h = ((i as f64 + 1.0) * (seed as f64 + 1.0) * 12.9898).sin() * 43758.5453;
                (i as f64 * 0.2).sin() + 0.01 * (h - h.floor() - 0.5)
            })
            .collect()
    }

    fn store_with_mode(capacity: usize, mode: BaselineMode) -> PipelineStore {
        PipelineStore::new(
            StoreConfig {
                capacity,
                baseline_window: 6,
                cold_capacity: 8,
            },
            3,
            mode,
            LabelSet::new().with("shard", "0"),
        )
    }

    fn store(capacity: usize) -> PipelineStore {
        store_with_mode(capacity, BaselineMode::Golden)
    }

    fn warm(store: &mut PipelineStore, chip: &str) {
        for round in 0..3 {
            let out = store.ingest(chip, &[clean_trace(round)]).unwrap();
            assert_eq!(out.rejected, 0);
        }
    }

    #[test]
    fn cold_start_fits_after_golden_traces() {
        let mut s = store(4);
        let o1 = s.ingest("a", &[clean_trace(0), clean_trace(1)]).unwrap();
        assert_eq!(o1.warmup, 2);
        assert!(!o1.fitted_now);
        let o2 = s.ingest("a", &[clean_trace(2), clean_trace(3)]).unwrap();
        assert!(o2.fitted_now, "third clean trace completes the fit");
        assert_eq!(o2.warmup + o2.scored, 2);
        assert_eq!(s.fits(), 1);
        let o3 = s.ingest("a", &[clean_trace(4)]).unwrap();
        assert_eq!(o3.scored, 1);
    }

    #[test]
    fn rejected_traces_grow_the_streak_and_clean_ones_reset_it() {
        let mut s = store(4);
        warm(&mut s, "a");
        let nan = vec![f64::NAN; 64];
        let out = s.ingest("a", &[nan.clone(), nan.clone()]).unwrap();
        assert_eq!(out.rejected, 2);
        assert!(out.fully_rejected);
        assert_eq!(out.consecutive_rejections, 2);
        let out = s.ingest("a", &[clean_trace(9)]).unwrap();
        assert_eq!(out.consecutive_rejections, 0);
        assert!(!out.fully_rejected);
    }

    #[test]
    fn warmup_rejections_also_count_toward_the_streak() {
        let mut s = store(4);
        let nan = vec![f64::NAN; 64];
        let out = s.ingest("a", &[nan.clone(), nan]).unwrap();
        assert_eq!(out.consecutive_rejections, 2);
        assert!(out.fully_rejected);
    }

    #[test]
    fn lru_eviction_demotes_and_revival_refits() {
        let mut s = store(2);
        warm(&mut s, "a");
        warm(&mut s, "b");
        assert_eq!(s.hot_len(), 2);
        // Touch "b" so "a" is the LRU victim.
        s.ingest("b", &[clean_trace(10)]).unwrap();
        warm(&mut s, "c");
        assert_eq!(s.hot_len(), 2);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.cold_len(), 1);
        // "a" returns: re-fitted from its retained baseline, scoring
        // immediately (no warm-up).
        let out = s.ingest("a", &[clean_trace(11)]).unwrap();
        assert_eq!(out.scored, 1);
        assert_eq!(out.warmup, 0);
        assert_eq!(s.refits(), 1);
        // Its cumulative stats survived the round-trip.
        let stats = s.chip_stats();
        let a = stats.iter().find(|(id, _)| id == "a").unwrap();
        assert_eq!(a.1.scored, 4);
    }

    #[test]
    fn cold_map_is_bounded() {
        let mut s = store(1);
        for i in 0..12 {
            warm(&mut s, &format!("chip-{i}"));
        }
        assert_eq!(s.hot_len(), 1);
        assert!(s.cold_len() <= 8);
        assert!(s.cold_drops() > 0);
    }

    #[test]
    fn length_mismatch_is_rejected_during_warmup() {
        let mut s = store(4);
        let out = s.ingest("a", &[clean_trace(0), vec![1.0; 32]]).unwrap();
        assert_eq!(out.warmup, 1);
        assert_eq!(out.rejected, 1);
    }

    #[test]
    fn self_calibrating_chip_is_protected_without_golden_fit() {
        // A 6-trace warm-up keeps the MAD-based threshold away from the
        // degenerate tiny-spread regime.
        let mut s = PipelineStore::new(
            StoreConfig {
                capacity: 4,
                baseline_window: 6,
                cold_capacity: 8,
            },
            6,
            BaselineMode::SelfCalibrating,
            LabelSet::new().with("shard", "0"),
        );
        assert_eq!(s.mode(), BaselineMode::SelfCalibrating);
        // Warm-up traces flow through the live pipeline; the sixth one
        // arms the rolling baseline.
        let warmup: Vec<Vec<f64>> = (0..6).map(noisy_trace).collect();
        let out = s.ingest("a", &warmup).unwrap();
        assert_eq!(out.warmup, 6);
        assert!(out.fitted_now);
        assert_eq!(s.fits(), 1);
        // Armed: clean traffic scores without alarming.
        let out = s.ingest("a", &[noisy_trace(6)]).unwrap();
        assert_eq!(out.scored, 1);
        assert_eq!(out.alarms, 0);
        // A gross deviation alarms against the self-learned baseline.
        let hot: Vec<f64> = noisy_trace(7).iter().map(|x| 3.0 * x).collect();
        let out = s.ingest("a", &[hot]).unwrap();
        assert_eq!(out.alarms, 1);
    }

    #[test]
    fn self_calibrating_revival_replays_the_retained_baseline() {
        let mut s = store_with_mode(1, BaselineMode::SelfCalibrating);
        for round in 0..4 {
            s.ingest("a", &[clean_trace(round)]).unwrap();
        }
        // Evict "a" by introducing "b".
        s.ingest("b", &[clean_trace(0)]).unwrap();
        assert_eq!(s.evictions(), 1);
        // "a" returns armed: its retained baseline re-warmed the fresh
        // rolling statistics, so scoring resumes immediately.
        let out = s.ingest("a", &[clean_trace(5)]).unwrap();
        assert_eq!(out.scored, 1);
        assert_eq!(out.warmup, 0);
        assert_eq!(s.refits(), 1);
    }
}
