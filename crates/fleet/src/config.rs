//! Fleet service configuration: shard topology, queue bounds, breaker
//! thresholds, dispatch deadlines and fingerprint-store sizing.
//!
//! Every knob is validated up front by [`FleetConfig::validate`] so a
//! bad deployment fails at construction, not mid-ingest.

use crate::FleetError;

/// Per-chip circuit-breaker thresholds (see [`crate::breaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Trip to `Open` once a chip's pipeline reports this many
    /// *consecutive* rejected traces.
    pub trip_after: u64,
    /// Base quarantine wait, in admission ticks, before the first
    /// half-open probe.
    pub probe_base: u64,
    /// Ceiling on the exponentially growing quarantine wait.
    pub probe_cap: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 8,
            probe_base: 2,
            probe_cap: 32,
        }
    }
}

/// Shard dispatch budget: how hard to try pushing a batch into a full
/// shard queue before giving up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Total simulated-time budget per batch, in microseconds. Retry
    /// backoff is charged against this; once exhausted the batch is
    /// shed (healthy chips) or the send blocks (follow-up chips).
    pub deadline_us: u64,
    /// Maximum re-dispatch attempts after the first try.
    pub retry_max: u32,
    /// Base backoff between dispatch attempts, in microseconds.
    pub retry_base_us: u64,
    /// Ceiling on any single backoff step, in microseconds.
    pub retry_cap_us: u64,
    /// Jitter fraction in `[0, 1]`: each step is drawn uniformly from
    /// `nominal * [1 - jitter, 1 + jitter)`.
    pub retry_jitter: f64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            deadline_us: 20_000,
            retry_max: 3,
            retry_base_us: 50,
            retry_cap_us: 5_000,
            retry_jitter: 0.5,
        }
    }
}

/// Sharded fingerprint-store sizing (see [`crate::store`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Hot per-chip pipelines held per shard before LRU eviction.
    pub capacity: usize,
    /// Rolling-baseline traces retained per chip for (re-)fitting.
    pub baseline_window: usize,
    /// Cold records (evicted chips' baselines + counters) retained per
    /// shard; beyond this the oldest cold record is dropped entirely.
    pub cold_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity: 512,
            baseline_window: 8,
            cold_capacity: 4096,
        }
    }
}

/// Where a fleet chip's baseline comes from (see
/// [`emtrust::baseline`](emtrust::BaselineSource) for the underlying
/// contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BaselineMode {
    /// Cold-start collects each new chip's first `golden_traces` clean
    /// traces as its golden set, then fits a per-chip fingerprint.
    #[default]
    Golden,
    /// Golden-model-free: each new chip gets a self-calibrating
    /// pipeline immediately and learns a rolling robust baseline from
    /// its own live traffic (`golden_traces` becomes the warm-up
    /// length). No golden fit ever happens.
    SelfCalibrating,
}

impl BaselineMode {
    /// Stable label for telemetry and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineMode::Golden => "golden",
            BaselineMode::SelfCalibrating => "self_calibrating",
        }
    }
}

/// Top-level fleet service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shard workers (threads), each owning a bounded queue
    /// and a slice of the fingerprint store.
    pub shards: usize,
    /// Bounded depth of each shard's MPSC queue, in batches.
    pub queue_capacity: usize,
    /// Fraction of `queue_capacity` above which admissions are still
    /// accepted but flagged [`crate::AdmissionVerdict::Throttled`].
    pub throttle_watermark: f64,
    /// Per-chip circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Shard dispatch deadline/retry budget.
    pub dispatch: DispatchConfig,
    /// Fingerprint-store sizing.
    pub store: StoreConfig,
    /// Seed for every deterministic choice the service makes (dispatch
    /// jitter). Two services with equal seeds and equal inputs behave
    /// bit-identically.
    pub seed: u64,
    /// Clean traces a new chip must contribute before its golden
    /// fingerprint is fitted (graceful cold-start). Must be ≥ 2 — the
    /// fingerprint fit refuses smaller baselines. Under
    /// [`BaselineMode::SelfCalibrating`] this is the rolling baseline's
    /// warm-up length instead.
    pub golden_traces: usize,
    /// Where per-chip baselines come from.
    pub baseline_mode: BaselineMode,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            queue_capacity: 256,
            throttle_watermark: 0.5,
            breaker: BreakerConfig::default(),
            dispatch: DispatchConfig::default(),
            store: StoreConfig::default(),
            seed: 0xF1EE_7000,
            golden_traces: 8,
            baseline_mode: BaselineMode::default(),
        }
    }
}

impl FleetConfig {
    /// Checks every invariant the service relies on.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.shards == 0 {
            return Err(FleetError::InvalidConfig {
                what: "shards must be >= 1",
            });
        }
        if self.queue_capacity == 0 {
            return Err(FleetError::InvalidConfig {
                what: "queue_capacity must be >= 1",
            });
        }
        if !(0.0..=1.0).contains(&self.throttle_watermark) {
            return Err(FleetError::InvalidConfig {
                what: "throttle_watermark must be in [0, 1]",
            });
        }
        if self.breaker.trip_after == 0 {
            return Err(FleetError::InvalidConfig {
                what: "breaker.trip_after must be >= 1",
            });
        }
        if self.breaker.probe_base == 0 || self.breaker.probe_cap < self.breaker.probe_base {
            return Err(FleetError::InvalidConfig {
                what: "breaker probe window must satisfy 1 <= probe_base <= probe_cap",
            });
        }
        if !(0.0..=1.0).contains(&self.dispatch.retry_jitter) {
            return Err(FleetError::InvalidConfig {
                what: "dispatch.retry_jitter must be in [0, 1]",
            });
        }
        if self.store.capacity == 0 {
            return Err(FleetError::InvalidConfig {
                what: "store.capacity must be >= 1",
            });
        }
        if self.store.baseline_window < 2 {
            return Err(FleetError::InvalidConfig {
                what: "store.baseline_window must be >= 2",
            });
        }
        if self.golden_traces < 2 || self.golden_traces > self.store.baseline_window {
            return Err(FleetError::InvalidConfig {
                what: "golden_traces must be in [2, store.baseline_window]",
            });
        }
        Ok(())
    }

    /// Queue depth at or above which admissions report `Throttled`.
    pub fn throttle_depth(&self) -> usize {
        let raw = (self.queue_capacity as f64 * self.throttle_watermark).ceil() as usize;
        raw.clamp(1, self.queue_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = FleetConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.baseline_mode, BaselineMode::Golden);
        assert_eq!(BaselineMode::Golden.label(), "golden");
        assert_eq!(BaselineMode::SelfCalibrating.label(), "self_calibrating");
        assert!(FleetConfig {
            baseline_mode: BaselineMode::SelfCalibrating,
            ..FleetConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn every_bound_is_enforced() {
        let base = FleetConfig::default();
        let cases: Vec<(&str, FleetConfig)> = vec![
            ("shards", {
                let mut c = base.clone();
                c.shards = 0;
                c
            }),
            ("queue_capacity", {
                let mut c = base.clone();
                c.queue_capacity = 0;
                c
            }),
            ("throttle_watermark", {
                let mut c = base.clone();
                c.throttle_watermark = 1.5;
                c
            }),
            ("trip_after", {
                let mut c = base.clone();
                c.breaker.trip_after = 0;
                c
            }),
            ("probe window", {
                let mut c = base.clone();
                c.breaker.probe_cap = c.breaker.probe_base - 1;
                c
            }),
            ("retry_jitter", {
                let mut c = base.clone();
                c.dispatch.retry_jitter = -0.1;
                c
            }),
            ("store capacity", {
                let mut c = base.clone();
                c.store.capacity = 0;
                c
            }),
            ("baseline_window", {
                let mut c = base.clone();
                c.store.baseline_window = 1;
                c
            }),
            ("golden_traces", {
                let mut c = base.clone();
                c.golden_traces = 1;
                c
            }),
            ("golden_traces vs window", {
                let mut c = base.clone();
                c.golden_traces = c.store.baseline_window + 1;
                c
            }),
            ("self-calibrating warmup", {
                let mut c = base.clone();
                c.baseline_mode = BaselineMode::SelfCalibrating;
                c.golden_traces = 1;
                c
            }),
        ];
        for (label, cfg) in cases {
            assert!(
                matches!(cfg.validate(), Err(crate::FleetError::InvalidConfig { .. })),
                "expected {label} to be rejected"
            );
        }
    }

    #[test]
    fn throttle_depth_is_clamped_and_scaled() {
        let mut cfg = FleetConfig {
            queue_capacity: 100,
            throttle_watermark: 0.5,
            ..FleetConfig::default()
        };
        assert_eq!(cfg.throttle_depth(), 50);
        cfg.throttle_watermark = 0.0;
        assert_eq!(cfg.throttle_depth(), 1);
        cfg.throttle_watermark = 1.0;
        assert_eq!(cfg.throttle_depth(), 100);
    }
}
