//! Transport-level chaos injection for the fleet service.
//!
//! [`ChaosTransport`] sits between a producer and
//! [`FleetService::ingest`], consulting a seeded
//! [`TransportPlan`] for every batch and
//! applying its disposition: drop the batch, duplicate it, swap it with
//! the next batch, delay it (recorded — the simulated link latency is
//! accounted, not slept), or corrupt its chip id so it lands on the
//! wrong — possibly brand-new — chip. The plan is a pure function of
//! `(seed, chip, batch index)`, so an identical plan over an identical
//! input sequence perturbs the fleet bit-identically: chaos runs are
//! replayable.

use std::collections::HashMap;

use emtrust_faults::TransportPlan;

use crate::chip_key;
use crate::service::{FleetService, IngestReceipt};
use crate::FleetError;

/// What the chaos layer did across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Batches offered by the producer.
    pub offered: u64,
    /// Batches dropped in transport.
    pub dropped: u64,
    /// Batches delivered twice.
    pub duplicated: u64,
    /// Batches swapped with their successor.
    pub reordered: u64,
    /// Batches whose chip id was corrupted.
    pub corrupted: u64,
    /// Simulated link delay accumulated, in microseconds.
    pub delay_us: u64,
    /// Deliveries actually handed to the service (after drop,
    /// duplication and reordering).
    pub delivered: u64,
}

/// A chaotic transport in front of a [`FleetService`].
pub struct ChaosTransport {
    plan: TransportPlan,
    batch_index: HashMap<u64, u64>,
    pending: Vec<(String, Vec<Vec<f64>>)>,
    stats: ChaosStats,
}

impl ChaosTransport {
    /// Wraps a seeded plan. An empty plan is a perfect link.
    pub fn new(plan: TransportPlan) -> Self {
        ChaosTransport {
            plan,
            batch_index: HashMap::new(),
            pending: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// Chaos accounting so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Sends one batch through the chaotic link into the service.
    /// Returns a receipt per actual delivery — an empty vector means
    /// the batch was dropped or is being held for reordering.
    pub fn deliver(
        &mut self,
        service: &FleetService,
        chip_id: &str,
        traces: &[Vec<f64>],
    ) -> Result<Vec<IngestReceipt>, FleetError> {
        self.stats.offered += 1;
        let key = chip_key(chip_id);
        let index = self.batch_index.entry(key).or_insert(0);
        let batch_index = *index;
        *index += 1;
        let disposition = self.plan.disposition(key, batch_index, 0);
        self.stats.delay_us += disposition.delay_us;

        // Batches held back by an earlier reorder flush *after* the
        // current batch — that is the swap.
        let held = std::mem::take(&mut self.pending);

        let effective_id = match disposition.corrupt_chip_salt {
            Some(salt) => {
                self.stats.corrupted += 1;
                format!("{chip_id}!{salt:016x}")
            }
            None => chip_id.to_string(),
        };
        let mut now: Vec<(String, Vec<Vec<f64>>)> = Vec::new();
        match disposition.deliveries {
            0 => self.stats.dropped += 1,
            1 => now.push((effective_id, traces.to_vec())),
            _ => {
                self.stats.duplicated += 1;
                now.push((effective_id.clone(), traces.to_vec()));
                now.push((effective_id, traces.to_vec()));
            }
        }
        if disposition.reorder_with_next && !now.is_empty() {
            self.stats.reordered += 1;
            self.pending = now;
            now = Vec::new();
        }

        let mut receipts = Vec::new();
        for (id, batch) in now.into_iter().chain(held) {
            self.stats.delivered += 1;
            receipts.push(service.ingest(&id, batch)?);
        }
        Ok(receipts)
    }

    /// Flushes any batch still held for reordering (call at end of
    /// input).
    pub fn flush(&mut self, service: &FleetService) -> Result<Vec<IngestReceipt>, FleetError> {
        let held = std::mem::take(&mut self.pending);
        let mut receipts = Vec::new();
        for (id, batch) in held {
            self.stats.delivered += 1;
            receipts.push(service.ingest(&id, batch)?);
        }
        Ok(receipts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use emtrust_faults::{TransportFaultKind, TransportFaultSpec};

    fn trace(seed: u64) -> Vec<f64> {
        (0..64)
            .map(|i| (i as f64 * 0.2).sin() + (seed as f64 * 1e-4) * (i as f64 * 0.05).cos())
            .collect()
    }

    fn service() -> FleetService {
        let cfg = FleetConfig {
            shards: 2,
            golden_traces: 2,
            store: crate::config::StoreConfig {
                baseline_window: 4,
                ..Default::default()
            },
            ..FleetConfig::default()
        };
        FleetService::new(cfg).unwrap()
    }

    #[test]
    fn perfect_link_delivers_everything_once() {
        let svc = service();
        let mut link = ChaosTransport::new(TransportPlan::new(7));
        for round in 0..5u64 {
            let receipts = link.deliver(&svc, "a", &[trace(round)]).unwrap();
            assert_eq!(receipts.len(), 1);
        }
        assert!(link.flush(&svc).unwrap().is_empty());
        let stats = link.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.dropped + stats.duplicated + stats.reordered, 0);
        svc.finish().unwrap();
    }

    #[test]
    fn dropped_batches_never_reach_the_service() {
        let svc = service();
        let plan = TransportPlan::single(11, TransportFaultKind::BatchDrop, 1.0);
        let mut link = ChaosTransport::new(plan);
        for round in 0..4u64 {
            assert!(link.deliver(&svc, "a", &[trace(round)]).unwrap().is_empty());
        }
        assert_eq!(link.stats().dropped, 4);
        assert_eq!(link.stats().delivered, 0);
        let summary = svc.finish().unwrap();
        assert!(summary.chips.is_empty());
    }

    #[test]
    fn duplicates_double_delivery_and_corruption_forks_the_chip() {
        let svc = service();
        let plan = TransportPlan::new(13)
            .with(TransportFaultSpec::new(
                TransportFaultKind::BatchDuplicate,
                1.0,
            ))
            .with(TransportFaultSpec::new(
                TransportFaultKind::ChipIdCorruption,
                1.0,
            ));
        let mut link = ChaosTransport::new(plan);
        for round in 0..3u64 {
            let receipts = link.deliver(&svc, "a", &[trace(round)]).unwrap();
            assert_eq!(receipts.len(), 2, "duplicate delivers twice");
        }
        let stats = link.stats();
        assert_eq!(stats.duplicated, 3);
        assert_eq!(stats.corrupted, 3);
        let summary = svc.finish().unwrap();
        // Corrupted ids land on synthetic chips, never on "a".
        assert!(summary.chip("a").is_none());
        assert!(!summary.chips.is_empty());
    }

    #[test]
    fn reorder_swaps_with_the_next_batch_and_flush_drains() {
        let svc = service();
        let plan = TransportPlan::single(17, TransportFaultKind::BatchReorder, 1.0);
        let mut link = ChaosTransport::new(plan);
        let r1 = link.deliver(&svc, "a", &[trace(0)]).unwrap();
        assert!(r1.is_empty(), "first batch held for the swap");
        let r2 = link.deliver(&svc, "a", &[trace(1)]).unwrap();
        // Batch 2 was itself reordered: it is held, batch 1 flushes.
        assert_eq!(r2.len(), 1);
        let r3 = link.flush(&svc).unwrap();
        assert_eq!(r3.len(), 1);
        assert_eq!(link.stats().delivered, 2);
        svc.finish().unwrap();
    }

    #[test]
    fn chaos_replays_bit_identically() {
        let run = || {
            let svc = service();
            let plan = TransportPlan::new(23)
                .with(
                    TransportFaultSpec::new(TransportFaultKind::BatchDrop, 1.0)
                        .with_probability(0.3),
                )
                .with(
                    TransportFaultSpec::new(TransportFaultKind::BatchDuplicate, 1.0)
                        .with_probability(0.3),
                )
                .with(TransportFaultSpec::new(TransportFaultKind::BatchDelay, 0.5));
            let mut link = ChaosTransport::new(plan);
            for round in 0..20u64 {
                for chip in ["a", "b", "c"] {
                    link.deliver(&svc, chip, &[trace(round)]).unwrap();
                }
            }
            link.flush(&svc).unwrap();
            (link.stats(), svc.finish().unwrap())
        };
        let (s1, f1) = run();
        let (s2, f2) = run();
        assert_eq!(s1, s2);
        assert_eq!(f1.chips, f2.chips);
    }
}
