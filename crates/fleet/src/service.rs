//! The fleet ingestion service: thread-per-shard workers behind bounded
//! queues, with admission control, per-chip circuit breakers and
//! deadline-budgeted dispatch.
//!
//! ```text
//!            ┌───────────────── FleetService::ingest ─────────────────┐
//!            │ chip_key(chip_id) % shards                             │
//!            ▼                                                        │
//!   ┌─ circuit breaker ─┐   open    ┌──────────────┐                  │
//!   │ per-chip, bulkhead ├─────────▶│ Quarantined  │ (no queue slot)  │
//!   └─────────┬─────────┘           └──────────────┘                  │
//!             │ closed / half-open probe                              │
//!             ▼                                                       │
//!   ┌─ bounded queue ───┐   full after deadline budget                │
//!   │ try_send + jitter ├───────────┬─────────────────────────────────┘
//!   └─────────┬─────────┘           ▼
//!             │             healthy chip → Shed (newest batch dropped)
//!             │             follow-up chip → blocking send (never shed)
//!             ▼
//!     shard worker thread → PipelineStore → per-chip DetectionPipeline
//! ```
//!
//! Every refusal — shed or quarantine — leaves a `fleet`-domain
//! decision record in the telemetry plane, so operators can answer
//! "why did chip X's batch disappear" from forensics alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use emtrust::telemetry::{self, DecisionRecord, LabelSet};
use emtrust::{RetryPolicy, SensorHealth};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::chip_key;
use crate::config::FleetConfig;
use crate::store::{ChipStats, PipelineStore};
use crate::FleetError;

/// Admission control's verdict for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Enqueued below the throttle watermark.
    Admitted,
    /// Enqueued, but the shard queue is above its high-watermark — the
    /// caller should slow down.
    Throttled,
    /// Refused: the queue stayed full through the deadline budget and
    /// the chip is healthy, so its newest batch was dropped.
    Shed,
    /// Refused at the circuit breaker: the chip is quarantined and the
    /// batch never consumed a queue slot.
    Quarantined,
}

impl AdmissionVerdict {
    /// Stable snake_case label for metrics and forensics.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionVerdict::Admitted => "admitted",
            AdmissionVerdict::Throttled => "throttled",
            AdmissionVerdict::Shed => "shed",
            AdmissionVerdict::Quarantined => "quarantined",
        }
    }

    /// Whether the batch actually reached a shard queue.
    pub fn accepted(&self) -> bool {
        matches!(
            self,
            AdmissionVerdict::Admitted | AdmissionVerdict::Throttled
        )
    }
}

/// What happened to one `ingest` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The admission verdict.
    pub verdict: AdmissionVerdict,
    /// Shard the chip hashes to.
    pub shard: usize,
    /// Dispatch attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Jittered backoff charged against the deadline budget, in
    /// microseconds.
    pub backoff_total_us: u64,
    /// Shard queue depth observed right after this call.
    pub depth: usize,
}

/// One chip's final accounting in a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipStatus {
    /// The chip id as ingested (corrupted ids appear as their own
    /// chips — exactly what the transport fault model intends).
    pub chip_id: String,
    /// Shard the chip hashes to.
    pub shard: usize,
    /// Cumulative per-chip trace accounting from the store.
    pub stats: ChipStats,
    /// Breaker trips over the chip's lifetime.
    pub breaker_trips: u64,
    /// Admissions refused while quarantined.
    pub breaker_refusals: u64,
    /// Whether the chip ended the run quarantined (breaker not closed).
    pub quarantined: bool,
    /// Last sensor-health state the worker observed.
    pub health: SensorHealth,
}

/// One shard's final accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Highest queue depth ever observed.
    pub peak_depth: usize,
    /// Batches the worker drained and processed.
    pub processed_batches: u64,
    /// Traces scored across the shard's chips.
    pub scored: u64,
    /// Traces rejected across the shard's chips.
    pub rejected: u64,
    /// Fused alarms across the shard's chips.
    pub alarms: u64,
    /// LRU evictions the shard's store performed.
    pub evictions: u64,
    /// Returning-chip re-fits the shard's store performed.
    pub refits: u64,
    /// Cold-start fits the shard's store performed.
    pub fits: u64,
    /// Hot chips resident at shutdown.
    pub hot: usize,
    /// Cold records retained at shutdown.
    pub cold: usize,
}

/// The whole fleet's final accounting, produced by
/// [`FleetService::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Per-chip statuses, sorted by chip id.
    pub chips: Vec<ChipStatus>,
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Batches admitted below the watermark.
    pub admitted: u64,
    /// Batches admitted above the watermark.
    pub throttled: u64,
    /// Batches shed.
    pub shed: u64,
    /// Batches refused at a circuit breaker.
    pub quarantined: u64,
    /// Highest queue depth observed on any shard.
    pub peak_depth: usize,
}

impl FleetSummary {
    /// Total traces scored across the fleet.
    pub fn total_scored(&self) -> u64 {
        self.shards.iter().map(|s| s.scored).sum()
    }

    /// Total fused alarms across the fleet.
    pub fn total_alarms(&self) -> u64 {
        self.shards.iter().map(|s| s.alarms).sum()
    }

    /// The status of one chip, if it was ever admitted.
    pub fn chip(&self, chip_id: &str) -> Option<&ChipStatus> {
        self.chips.iter().find(|c| c.chip_id == chip_id)
    }
}

struct Job {
    chip_id: String,
    traces: Vec<Vec<f64>>,
}

struct ChipControl {
    breaker: CircuitBreaker,
    health: SensorHealth,
    submitted: u64,
}

#[derive(Default)]
struct ShardCounters {
    admitted: AtomicU64,
    throttled: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    processed_batches: AtomicU64,
}

struct ShardShared {
    depth: AtomicUsize,
    peak_depth: AtomicUsize,
    control: Mutex<HashMap<String, ChipControl>>,
    counters: ShardCounters,
}

impl ShardShared {
    fn lock_control(&self) -> MutexGuard<'_, HashMap<String, ChipControl>> {
        // A worker panic mid-update is survivable: breaker/health state
        // is monotone bookkeeping, so poison recovery is safe.
        self.control.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct StoreReport {
    chip_stats: Vec<(String, ChipStats)>,
    evictions: u64,
    refits: u64,
    fits: u64,
    hot: usize,
    cold: usize,
    scored: u64,
    rejected: u64,
    alarms: u64,
}

struct Shard {
    tx: Option<SyncSender<Job>>,
    shared: Arc<ShardShared>,
    handle: Option<JoinHandle<StoreReport>>,
}

/// The fleet ingestion service. Cheap to share across producer threads
/// (`ingest` takes `&self`); consumed by [`FleetService::finish`].
pub struct FleetService {
    cfg: FleetConfig,
    shards: Vec<Shard>,
    dispatch_policy: RetryPolicy,
}

impl FleetService {
    /// Validates `cfg` and spawns one worker thread per shard.
    pub fn new(cfg: FleetConfig) -> Result<Self, FleetError> {
        cfg.validate()?;
        let dispatch_policy = RetryPolicy {
            max_attempts: cfg.dispatch.retry_max.saturating_add(1).max(1),
            backoff_base_us: cfg.dispatch.retry_base_us,
            backoff_cap_us: cfg.dispatch.retry_cap_us,
            backoff_jitter: cfg.dispatch.retry_jitter,
            fallback: None,
            max_reject_fraction: 1.0,
        };
        let mut shards = Vec::with_capacity(cfg.shards);
        for shard_index in 0..cfg.shards {
            let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity);
            let shared = Arc::new(ShardShared {
                depth: AtomicUsize::new(0),
                peak_depth: AtomicUsize::new(0),
                control: Mutex::new(HashMap::new()),
                counters: ShardCounters::default(),
            });
            let worker_shared = Arc::clone(&shared);
            let store_cfg = cfg.store;
            let golden_traces = cfg.golden_traces;
            let baseline_mode = cfg.baseline_mode;
            let handle = std::thread::Builder::new()
                .name(format!("fleet-shard-{shard_index}"))
                .spawn(move || {
                    shard_worker(
                        shard_index,
                        store_cfg,
                        golden_traces,
                        baseline_mode,
                        worker_shared,
                        rx,
                    )
                })
                .map_err(|_| FleetError::ShardDown { shard: shard_index })?;
            shards.push(Shard {
                tx: Some(tx),
                shared,
                handle: Some(handle),
            });
        }
        Ok(FleetService {
            cfg,
            shards,
            dispatch_policy,
        })
    }

    /// The validated configuration the service runs with.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Shard index `chip_id` hashes to.
    pub fn shard_of(&self, chip_id: &str) -> usize {
        (chip_key(chip_id) % self.cfg.shards as u64) as usize
    }

    /// Admits one batch of traces for `chip_id`, returning how the
    /// admission went. Never panics and never blocks indefinitely —
    /// except for chips in health follow-up, whose batches block until
    /// a queue slot frees (they are never shed).
    pub fn ingest(
        &self,
        chip_id: &str,
        traces: Vec<Vec<f64>>,
    ) -> Result<IngestReceipt, FleetError> {
        let shard_index = self.shard_of(chip_id);
        let shard = &self.shards[shard_index];
        let labels = LabelSet::new()
            .with("shard", shard_index.to_string())
            .with("chip", chip_id);

        // 1. Circuit breaker — the bulkhead. Refusal consumes no queue
        //    slot and no dispatch budget.
        let (follow_up, submitted, last_health) = {
            let mut control = shard.shared.lock_control();
            let chip = control
                .entry(chip_id.to_string())
                .or_insert_with(|| ChipControl {
                    breaker: CircuitBreaker::new(self.cfg.breaker),
                    health: SensorHealth::Healthy,
                    submitted: 0,
                });
            if !chip.breaker.admit() {
                shard
                    .shared
                    .counters
                    .quarantined
                    .fetch_add(1, Ordering::Relaxed);
                drop(control);
                telemetry::counter_with("fleet.quarantine_refusals", &labels, 1);
                self.forensics(&labels, "quarantined", "circuit_open");
                return Ok(IngestReceipt {
                    verdict: AdmissionVerdict::Quarantined,
                    shard: shard_index,
                    attempts: 0,
                    backoff_total_us: 0,
                    depth: shard.shared.depth.load(Ordering::Relaxed),
                });
            }
            chip.submitted += 1;
            (chip.health.needs_followup(), chip.submitted, chip.health)
        };

        // 2. Dispatch under a deadline budget with jittered retry.
        let tx = shard
            .tx
            .as_ref()
            .ok_or(FleetError::ShardDown { shard: shard_index })?;
        let mut job = Job {
            chip_id: chip_id.to_string(),
            traces,
        };
        let mut attempts: u32 = 0;
        let mut backoff_total_us: u64 = 0;
        let seed = self
            .cfg
            .seed
            .wrapping_add(chip_key(chip_id))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ submitted;
        // The depth slot is reserved *before* each send and rolled back
        // on failure: if the increment came after the send, the worker
        // could consume the job and decrement first, driving the
        // counter below zero.
        let mut depth;
        loop {
            attempts += 1;
            depth = shard.shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
            match tx.try_send(job) {
                Ok(()) => break,
                Err(TrySendError::Disconnected(_)) => {
                    shard.shared.depth.fetch_sub(1, Ordering::Relaxed);
                    return Err(FleetError::ShardDown { shard: shard_index });
                }
                Err(TrySendError::Full(returned)) => {
                    shard.shared.depth.fetch_sub(1, Ordering::Relaxed);
                    job = returned;
                    let out_of_budget = attempts > self.cfg.dispatch.retry_max
                        || backoff_total_us >= self.cfg.dispatch.deadline_us;
                    if out_of_budget {
                        if follow_up {
                            // Never shed a chip under health follow-up:
                            // block until the shard drains.
                            depth = shard.shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
                            if tx.send(job).is_err() {
                                shard.shared.depth.fetch_sub(1, Ordering::Relaxed);
                                return Err(FleetError::ShardDown { shard: shard_index });
                            }
                            break;
                        }
                        shard.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                        telemetry::counter_with("fleet.shed", &labels, 1);
                        self.forensics_health(
                            &labels,
                            "shed",
                            "queue_full_past_deadline",
                            last_health,
                        );
                        return Ok(IngestReceipt {
                            verdict: AdmissionVerdict::Shed,
                            shard: shard_index,
                            attempts,
                            backoff_total_us,
                            depth: shard.shared.depth.load(Ordering::Relaxed),
                        });
                    }
                    let backoff = self.dispatch_policy.backoff_us(attempts, seed);
                    backoff_total_us = backoff_total_us.saturating_add(backoff);
                    // Yield real time (bounded) so the worker can
                    // drain; the nominal jittered wait is *recorded*
                    // against the budget, mirroring RetryPolicy.
                    std::thread::sleep(std::time::Duration::from_micros(backoff.min(1_000)));
                }
            }
        }

        shard.shared.peak_depth.fetch_max(depth, Ordering::Relaxed);
        if backoff_total_us > 0 {
            telemetry::observe("fleet.dispatch_backoff_us", backoff_total_us as f64);
        }
        let verdict = if depth >= self.cfg.throttle_depth() {
            shard
                .shared
                .counters
                .throttled
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter_with("fleet.throttled", &labels, 1);
            AdmissionVerdict::Throttled
        } else {
            shard
                .shared
                .counters
                .admitted
                .fetch_add(1, Ordering::Relaxed);
            AdmissionVerdict::Admitted
        };
        Ok(IngestReceipt {
            verdict,
            shard: shard_index,
            attempts,
            backoff_total_us,
            depth,
        })
    }

    fn forensics(&self, labels: &LabelSet, verdict: &str, reason: &str) {
        self.forensics_health(labels, verdict, reason, SensorHealth::Healthy);
    }

    fn forensics_health(
        &self,
        labels: &LabelSet,
        verdict: &str,
        reason: &str,
        health: SensorHealth,
    ) {
        let mut rec = DecisionRecord::new("fleet");
        rec.verdict = verdict.to_string();
        rec.reject_reason = Some(reason.to_string());
        rec.labels = labels.clone();
        rec.health = health.label().to_string();
        telemetry::decision(&rec);
    }

    /// Drains every shard, joins the workers and merges their reports.
    pub fn finish(mut self) -> Result<FleetSummary, FleetError> {
        let mut shards_out = Vec::with_capacity(self.shards.len());
        let mut chips: Vec<ChipStatus> = Vec::new();
        let mut admitted = 0u64;
        let mut throttled = 0u64;
        let mut shed = 0u64;
        let mut quarantined = 0u64;
        let mut peak_depth = 0usize;
        for (shard_index, mut shard) in self.shards.drain(..).enumerate() {
            drop(shard.tx.take()); // closes the queue; worker drains and exits
            let report = match shard.handle.take() {
                Some(handle) => handle
                    .join()
                    .map_err(|_| FleetError::ShardDown { shard: shard_index })?,
                None => return Err(FleetError::ShardDown { shard: shard_index }),
            };
            let shared = &shard.shared;
            admitted += shared.counters.admitted.load(Ordering::Relaxed);
            throttled += shared.counters.throttled.load(Ordering::Relaxed);
            shed += shared.counters.shed.load(Ordering::Relaxed);
            quarantined += shared.counters.quarantined.load(Ordering::Relaxed);
            let shard_peak = shared.peak_depth.load(Ordering::Relaxed);
            peak_depth = peak_depth.max(shard_peak);
            let control = shard.shared.lock_control();
            for (chip_id, stats) in report.chip_stats {
                let (trips, refusals, open, health) = control
                    .get(&chip_id)
                    .map(|c| {
                        (
                            c.breaker.lifetime_trips(),
                            c.breaker.refusals(),
                            c.breaker.state() != BreakerState::Closed,
                            c.health,
                        )
                    })
                    .unwrap_or((0, 0, false, SensorHealth::Healthy));
                chips.push(ChipStatus {
                    chip_id,
                    shard: shard_index,
                    stats,
                    breaker_trips: trips,
                    breaker_refusals: refusals,
                    quarantined: open,
                    health,
                });
            }
            drop(control);
            shards_out.push(ShardSnapshot {
                shard: shard_index,
                peak_depth: shard_peak,
                processed_batches: shared.counters.processed_batches.load(Ordering::Relaxed),
                scored: report.scored,
                rejected: report.rejected,
                alarms: report.alarms,
                evictions: report.evictions,
                refits: report.refits,
                fits: report.fits,
                hot: report.hot,
                cold: report.cold,
            });
        }
        chips.sort_by(|a, b| a.chip_id.cmp(&b.chip_id));
        Ok(FleetSummary {
            chips,
            shards: shards_out,
            admitted,
            throttled,
            shed,
            quarantined,
            peak_depth,
        })
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        // finish() drains `shards`; on an un-finished drop, close the
        // queues and detach — workers exit once their queues drain.
        for shard in &mut self.shards {
            drop(shard.tx.take());
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn shard_worker(
    shard_index: usize,
    store_cfg: crate::config::StoreConfig,
    golden_traces: usize,
    baseline_mode: crate::config::BaselineMode,
    shared: Arc<ShardShared>,
    rx: Receiver<Job>,
) -> StoreReport {
    let shard_labels = LabelSet::new().with("shard", shard_index.to_string());
    let mut store = PipelineStore::new(
        store_cfg,
        golden_traces,
        baseline_mode,
        shard_labels.clone(),
    );
    let mut scored = 0u64;
    let mut rejected = 0u64;
    let mut alarms = 0u64;
    while let Ok(job) = rx.recv() {
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        shared
            .counters
            .processed_batches
            .fetch_add(1, Ordering::Relaxed);
        match store.ingest(&job.chip_id, &job.traces) {
            Ok(outcome) => {
                scored += (outcome.scored + outcome.warmup) as u64;
                rejected += outcome.rejected as u64;
                alarms += outcome.alarms as u64;
                telemetry::counter_with("fleet.traces", &shard_labels, job.traces.len() as u64);
                let mut control = shared.lock_control();
                if let Some(chip) = control.get_mut(&job.chip_id) {
                    let was_open = chip.breaker.state() != BreakerState::Closed;
                    chip.breaker
                        .record(outcome.consecutive_rejections, outcome.fully_rejected);
                    chip.health = outcome.health;
                    if !was_open && chip.breaker.state() == BreakerState::Open {
                        let labels = shard_labels.with("chip", &job.chip_id);
                        telemetry::counter_with("fleet.breaker_trips", &labels, 1);
                        let mut rec = DecisionRecord::new("fleet");
                        rec.verdict = "quarantined".to_string();
                        rec.reject_reason = Some("breaker_tripped".to_string());
                        rec.labels = labels;
                        rec.health = outcome.health.label().to_string();
                        telemetry::decision(&rec);
                    }
                }
            }
            Err(_) => {
                // A fit failure (e.g. degenerate baseline) must not
                // kill the shard: count it and keep draining.
                rejected += job.traces.len() as u64;
                telemetry::counter_with("fleet.store_errors", &shard_labels, 1);
            }
        }
    }
    StoreReport {
        chip_stats: store.chip_stats(),
        evictions: store.evictions(),
        refits: store.refits(),
        fits: store.fits(),
        hot: store.hot_len(),
        cold: store.cold_len(),
        scored,
        rejected,
        alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64) -> Vec<f64> {
        (0..64)
            .map(|i| (i as f64 * 0.2).sin() + (seed as f64 * 1e-4) * (i as f64 * 0.05).cos())
            .collect()
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            shards: 2,
            queue_capacity: 8,
            golden_traces: 3,
            store: crate::config::StoreConfig {
                baseline_window: 4,
                capacity: 16,
                ..Default::default()
            },
            breaker: crate::config::BreakerConfig {
                trip_after: 4,
                ..Default::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn clean_fleet_admits_everything_and_reports_per_chip() {
        let service = FleetService::new(small_config()).unwrap();
        for round in 0..6u64 {
            for chip in ["alpha", "bravo", "charlie"] {
                let r = service
                    .ingest(chip, vec![trace(round), trace(round + 100)])
                    .unwrap();
                assert!(r.verdict.accepted(), "{chip} round {round}: {r:?}");
            }
        }
        let summary = service.finish().unwrap();
        assert_eq!(summary.chips.len(), 3);
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.quarantined, 0);
        assert_eq!(summary.total_scored(), 36);
        for chip in &summary.chips {
            assert_eq!(chip.stats.scored, 12, "{}", chip.chip_id);
            assert!(!chip.quarantined);
        }
        assert!(summary.peak_depth <= 8 + 1);
    }

    #[test]
    fn poisoned_chip_trips_its_breaker_and_is_quarantined() {
        let service = FleetService::new(small_config()).unwrap();
        // Warm the chip so a fitted pipeline exists to reject traces.
        for round in 0..3u64 {
            service.ingest("victim", vec![trace(round)]).unwrap();
        }
        let nan_batch = || vec![vec![f64::NAN; 64]; 2];
        let mut refused = 0;
        for _ in 0..40 {
            let r = service.ingest("victim", nan_batch()).unwrap();
            if r.verdict == AdmissionVerdict::Quarantined {
                refused += 1;
            } else {
                // Give the worker time to feed the breaker back.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        assert!(refused > 0, "breaker never tripped");
        let summary = service.finish().unwrap();
        let victim = summary.chip("victim").unwrap();
        assert!(victim.breaker_trips >= 1);
        assert!(victim.breaker_refusals >= 1);
        assert!(summary.quarantined >= 1);
    }

    #[test]
    fn shard_of_is_stable() {
        let service = FleetService::new(small_config()).unwrap();
        assert_eq!(service.shard_of("x"), service.shard_of("x"));
        assert!(service.shard_of("x") < 2);
        drop(service);
    }

    #[test]
    fn finish_is_clean_on_an_idle_service() {
        let service = FleetService::new(small_config()).unwrap();
        let summary = service.finish().unwrap();
        assert!(summary.chips.is_empty());
        assert_eq!(summary.peak_depth, 0);
    }
}
