#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-fleet
//!
//! A fault-tolerant fleet ingestion service over the `emtrust` detection
//! stack: trace batches from many `chip_id`s are multiplexed into
//! sharded per-chip [`DetectionPipeline`](emtrust::DetectionPipeline)
//! instances by a thread-per-shard worker pool, designed around failure.
//! One misbehaving chip, one poisoned shard queue, or one transport
//! glitch must never stall or crash the whole trust-evaluation plane.
//!
//! The robustness machinery, layer by layer:
//!
//! - **Bounded queues with explicit backpressure** ([`service`]): each
//!   shard owns a bounded MPSC queue. Admission control returns an
//!   [`AdmissionVerdict`] — `Admitted`, `Throttled` (accepted above the
//!   high-watermark), `Shed` (refused: the queue stayed full through the
//!   deadline budget) or `Quarantined` (refused at the circuit breaker).
//!   The overload policy sheds the *newest* batch of *healthy* chips
//!   only; a chip in `Degraded`/`SensorFault` follow-up is never shed —
//!   its dispatch blocks instead, propagating backpressure to the
//!   caller. Memory stays bounded under any arrival rate.
//!
//! - **Per-chip circuit breakers** ([`breaker`]): driven by the core
//!   health state machine's consecutive-rejection signal
//!   ([`emtrust::HealthTracker::consecutive_rejections`]). A chip whose
//!   traces repeatedly come back `Rejected` trips to quarantine and is
//!   refused *at admission*, before it can consume a queue slot — the
//!   bulkhead pattern: a poisoned chip cannot eat its shard's budget.
//!   Half-open probes re-admit one batch on an exponential-backoff
//!   schedule; a clean probe closes the breaker, a rejected one re-trips
//!   it with a doubled wait.
//!
//! - **Deadline budgets with jittered retry** ([`service`]): dispatch
//!   into a full queue retries on a deterministic, seeded,
//!   jittered-exponential backoff schedule, charged against a per-batch
//!   deadline budget (recorded, not slept — mirroring
//!   [`emtrust::RetryPolicy`]).
//!
//! - **Sharded fingerprint store with LRU eviction** ([`store`]): hot
//!   per-chip pipelines are bounded per shard; cold chips are evicted
//!   by least-recent-use, their rolling baseline retained so a
//!   re-arriving chip *re-fits* its fingerprint instead of erroring —
//!   and a brand-new chip bootstraps its baseline from its own first
//!   clean traces (graceful cold-start).
//!
//! - **Transport-level chaos** ([`emtrust_faults::transport`]): batch
//!   drop/duplicate/reorder/delay and chip-id corruption compose into
//!   replayable seeded schedules, so the whole service is chaos-testable
//!   end to end, bit-identically.
//!
//! Because every per-chip pipeline is isolated state and quarantined
//! batches are refused before enqueue, a healthy chip's scored-trace
//! sequence — and therefore its alarm rate — is bit-identical whether or
//! not a quarantined neighbour shares its shard (`exp_fleet` gates this
//! in CI).
//!
//! This crate sits *above* `emtrust` in the dependency graph (it shards
//! the core's pipelines), so unlike `emtrust-faults` it cannot be
//! re-exported as a module of `emtrust` itself; depend on it directly
//! (the workspace umbrella re-exports it as `emtrust_fleet`).
//!
//! # Example
//!
//! ```
//! use emtrust_fleet::{FleetConfig, FleetService};
//!
//! let mut cfg = FleetConfig::default();
//! cfg.shards = 2;
//! let service = FleetService::new(cfg)?;
//! // Feed a few batches from two chips; traces are 256-sample rows.
//! let batch: Vec<Vec<f64>> =
//!     (0..4).map(|i| (0..256).map(|j| ((i + j) as f64 * 0.1).sin()).collect()).collect();
//! for round in 0..8 {
//!     let _ = round;
//!     service.ingest("chip-a", batch.clone())?;
//!     service.ingest("chip-b", batch.clone())?;
//! }
//! let summary = service.finish()?;
//! assert_eq!(summary.chips.len(), 2);
//! # Ok::<(), emtrust_fleet::FleetError>(())
//! ```

pub mod breaker;
pub mod chaos;
pub mod config;
pub mod service;
pub mod store;

pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos::{ChaosStats, ChaosTransport};
pub use config::{BaselineMode, BreakerConfig, DispatchConfig, FleetConfig, StoreConfig};
pub use service::{
    AdmissionVerdict, ChipStatus, FleetService, FleetSummary, IngestReceipt, ShardSnapshot,
};
pub use store::{ChipBatchOutcome, PipelineStore};

use std::fmt;

/// Errors produced by the fleet service.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// A shard worker is gone (its queue disconnected) — the service
    /// cannot accept further batches.
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
    },
    /// Forwarded from the detection core (fingerprint fitting, trace
    /// validation).
    Trust(emtrust::TrustError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidConfig { what } => write!(f, "invalid fleet config: {what}"),
            FleetError::ShardDown { shard } => write!(f, "shard {shard} worker is down"),
            FleetError::Trust(e) => write!(f, "trust: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Trust(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emtrust::TrustError> for FleetError {
    fn from(e: emtrust::TrustError) -> Self {
        FleetError::Trust(e)
    }
}

/// Stable FNV-1a hash of a `chip_id`, used for shard selection and as
/// the chip key transport-fault plans gate on. Deterministic across
/// processes and platforms.
pub fn chip_key(chip_id: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in chip_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_key_is_stable_and_spreads() {
        assert_eq!(chip_key("chip-0"), chip_key("chip-0"));
        assert_ne!(chip_key("chip-0"), chip_key("chip-1"));
        // Keys spread across shards reasonably.
        let shards = 8u64;
        let mut counts = [0usize; 8];
        for i in 0..800 {
            counts[(chip_key(&format!("chip-{i}")) % shards) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "skewed: {counts:?}");
    }

    #[test]
    fn errors_display_and_chain() {
        let e = FleetError::InvalidConfig { what: "shards" };
        assert!(e.to_string().contains("shards"));
        let e = FleetError::ShardDown { shard: 3 };
        assert!(e.to_string().contains("3"));
        let e: FleetError = emtrust::TrustError::InvalidParameter { what: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
