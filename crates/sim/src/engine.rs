//! The cycle-based simulation engine.

use crate::activity::{ActivityTrace, CycleActivity, ToggleEvent};
use emtrust_netlist::graph::{CellId, NetId, NetSource, Netlist};
use emtrust_netlist::level::{levelize, Levels};
use emtrust_netlist::NetlistError;

/// A two-phase, cycle-based simulator over a borrowed [`Netlist`].
///
/// Each [`Simulator::step`] models one rising clock edge followed by
/// combinational settling:
///
/// 1. all flip-flops capture the `d` value settled at the end of the
///    previous cycle,
/// 2. the combinational cells evaluate once in levelized order.
///
/// Primary inputs are set with [`Simulator::set_input`] /
/// [`Simulator::set_bus`] and take effect in the combinational phase of
/// the next `step`.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    levels: Levels,
    values: Vec<bool>,
    /// Flip-flop cells in id order, with their (d, q) nets.
    flops: Vec<(CellId, NetId, NetId)>,
    staged: Vec<bool>,
    recording: Option<ActivityTrace>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator; all nets start at logic 0 (constants excepted).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`] from levelization
    /// and any structural error from [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let levels = levelize(netlist)?;
        let mut values = vec![false; netlist.net_count()];
        values[netlist.const1().index()] = true;
        let flops: Vec<(CellId, NetId, NetId)> = netlist
            .cells()
            .filter(|(_, c)| c.kind().is_sequential())
            .map(|(id, c)| (id, c.inputs()[0], c.output()))
            .collect();
        let staged = vec![false; flops.len()];
        Ok(Self {
            netlist,
            levels,
            values,
            flops,
            staged,
            recording: None,
            cycle: 0,
        })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The levelization used for evaluation order and switching times.
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// Number of clock edges applied so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current logic value of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Sets a primary-input net to `value` (effective next `step`).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert!(
            matches!(self.netlist.net_source(net), NetSource::Input),
            "set_input on a non-input net"
        );
        self.values[net.index()] = value;
    }

    /// Sets an LSB-first bus of primary inputs from the low bits of `word`.
    ///
    /// # Panics
    ///
    /// Panics if any net is not a primary input or the bus is wider than
    /// 128 bits.
    pub fn set_bus(&mut self, nets: &[NetId], word: u128) {
        assert!(nets.len() <= 128, "bus wider than 128 bits");
        for (i, &n) in nets.iter().enumerate() {
            self.set_input(n, word >> i & 1 != 0);
        }
    }

    /// Reads an LSB-first bus into the low bits of a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 128 bits.
    pub fn bus(&self, nets: &[NetId]) -> u128 {
        assert!(nets.len() <= 128, "bus wider than 128 bits");
        nets.iter()
            .enumerate()
            .fold(0u128, |acc, (i, &n)| acc | (u128::from(self.value(n)) << i))
    }

    /// Starts recording switching activity into a fresh trace.
    pub fn start_recording(&mut self) {
        self.recording = Some(ActivityTrace::new());
    }

    /// Stops recording and returns the captured trace (empty if recording
    /// was never started).
    pub fn take_recording(&mut self) -> ActivityTrace {
        self.recording.take().unwrap_or_default()
    }

    /// Whether a recording is in progress.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// Settles the combinational logic with the current inputs *without* a
    /// clock edge and without recording activity. Useful to establish a
    /// consistent pre-clock state after setting initial inputs.
    pub fn settle(&mut self) {
        for &cell_id in self.levels.eval_order() {
            let cell = self.netlist.cell(cell_id);
            let new = self.eval_cell(cell_id);
            self.values[cell.output().index()] = new;
        }
    }

    /// Applies one rising clock edge, then settles combinational logic.
    /// Records toggles if a recording is in progress.
    pub fn step(&mut self) {
        // Phase 1: capture d.
        for (i, &(_, d, _)) in self.flops.iter().enumerate() {
            self.staged[i] = self.values[d.index()];
        }
        let mut cycle_activity = CycleActivity::new(self.cycle);
        // Phase 2: update q.
        for (i, &(cell, _, q)) in self.flops.iter().enumerate() {
            let new = self.staged[i];
            let old = self.values[q.index()];
            if new != old {
                self.values[q.index()] = new;
                if self.recording.is_some() {
                    cycle_activity.push(ToggleEvent {
                        cell,
                        level: 0,
                        rising: new,
                    });
                }
            }
        }
        // Phase 3: combinational settle in level order.
        for idx in 0..self.levels.eval_order().len() {
            let cell_id = self.levels.eval_order()[idx];
            let new = self.eval_cell(cell_id);
            let out = self.netlist.cell(cell_id).output();
            let old = self.values[out.index()];
            if new != old {
                self.values[out.index()] = new;
                if self.recording.is_some() {
                    cycle_activity.push(ToggleEvent {
                        cell: cell_id,
                        level: self.levels.level_of(cell_id) + 1,
                        rising: new,
                    });
                }
            }
        }
        if let Some(trace) = &mut self.recording {
            trace.push_cycle(cycle_activity);
        }
        self.cycle += 1;
    }

    /// Runs `n` clock cycles.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets all state: nets to 0, cycle counter to 0. Any in-progress
    /// recording is discarded.
    pub fn reset(&mut self) {
        for v in self.values.iter_mut() {
            *v = false;
        }
        self.values[self.netlist.const1().index()] = true;
        for s in self.staged.iter_mut() {
            *s = false;
        }
        self.cycle = 0;
        self.recording = None;
    }

    #[inline]
    fn eval_cell(&self, cell_id: CellId) -> bool {
        let cell = self.netlist.cell(cell_id);
        let ins = cell.inputs();
        match ins.len() {
            1 => cell.kind().eval(&[self.values[ins[0].index()]]),
            2 => cell
                .kind()
                .eval(&[self.values[ins[0].index()], self.values[ins[1].index()]]),
            _ => cell.kind().eval(&[
                self.values[ins[0].index()],
                self.values[ins[1].index()],
                self.values[ins[2].index()],
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_netlist::graph::Netlist;

    fn counter2() -> (Netlist, Vec<NetId>) {
        // 2-bit binary counter: q0' = !q0; q1' = q1 ^ q0.
        let mut n = Netlist::new("counter2");
        let (q0, d0) = n.dff_deferred();
        let (q1, d1) = n.dff_deferred();
        let nq0 = n.not(q0);
        let x = n.xor2(q1, q0);
        n.connect_dff_d(d0, nq0);
        n.connect_dff_d(d1, x);
        n.mark_output("q0", q0);
        n.mark_output("q1", q1);
        (n, vec![q0, q1])
    }

    #[test]
    fn counter_counts() {
        let (n, bus) = counter2();
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle();
        let mut seen = Vec::new();
        for _ in 0..5 {
            sim.step();
            seen.push(sim.bus(&bus));
        }
        assert_eq!(seen, [1, 2, 3, 0, 1]);
    }

    #[test]
    fn combinational_logic_follows_inputs() {
        let mut n = Netlist::new("xor");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        n.mark_output("x", x);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.step();
        assert!(sim.value(x));
        sim.set_input(b, true);
        sim.step();
        assert!(!sim.value(x));
    }

    #[test]
    fn settle_propagates_without_clock() {
        let mut n = Netlist::new("inv");
        let a = n.input("a");
        let y = n.not(a);
        n.mark_output("y", y);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(!sim.value(y));
        sim.settle();
        assert!(sim.value(y), "inverter of 0 must settle to 1");
        assert_eq!(sim.cycle(), 0, "settle must not advance the clock");
    }

    #[test]
    fn recording_captures_toggles_with_levels() {
        let (n, _) = counter2();
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle();
        sim.start_recording();
        sim.step(); // 00 -> 01: q0 rises, nq0 falls, xor rises.
        let trace = sim.take_recording();
        assert_eq!(trace.cycle_count(), 1);
        let events = trace.cycles()[0].events();
        // q0 toggles (level 0), inverter (level 1), xor (level 1).
        assert_eq!(events.len(), 3);
        assert!(events.iter().any(|e| e.level == 0 && e.rising));
        assert_eq!(events.iter().filter(|e| e.level == 1).count(), 2);
    }

    #[test]
    fn no_recording_means_empty_trace() {
        let (n, _) = counter2();
        let mut sim = Simulator::new(&n).unwrap();
        sim.step();
        let trace = sim.take_recording();
        assert_eq!(trace.cycle_count(), 0);
        assert!(!sim.is_recording());
    }

    #[test]
    fn reset_restores_initial_state() {
        let (n, bus) = counter2();
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle();
        sim.run(3);
        assert_ne!(sim.bus(&bus), 0);
        sim.reset();
        assert_eq!(sim.bus(&bus), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn bus_round_trip() {
        let mut n = Netlist::new("pass");
        let ins = n.input_bus("a", 8);
        let outs: Vec<NetId> = ins.clone();
        n.mark_output_bus("y", &outs);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_bus(&ins, 0xA5);
        assert_eq!(sim.bus(&ins), 0xA5);
    }

    #[test]
    fn constants_hold_their_values() {
        let mut n = Netlist::new("c");
        let c1 = n.const1();
        let c0 = n.const0();
        let x = n.and2(c1, c1);
        n.mark_output("x", x);
        let mut sim = Simulator::new(&n).unwrap();
        sim.settle();
        assert!(sim.value(c1));
        assert!(!sim.value(c0));
        assert!(sim.value(x));
        sim.run(2);
        assert!(sim.value(c1));
    }

    #[test]
    #[should_panic(expected = "non-input")]
    fn set_input_rejects_internal_nets() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let y = n.not(a);
        n.mark_output("y", y);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(y, true);
    }

    #[test]
    fn simulator_rejects_cyclic_netlists() {
        let mut n = Netlist::new("loop");
        let a = n.input("a");
        let x1 = n.not(a);
        let x2 = n.not(x1);
        let first = match n.net_source(x1) {
            NetSource::Cell(c) => *c,
            _ => unreachable!(),
        };
        n.rewire_input(first, 0, x2).unwrap();
        assert!(Simulator::new(&n).is_err());
    }

    #[test]
    fn cycle_counter_advances() {
        let (n, _) = counter2();
        let mut sim = Simulator::new(&n).unwrap();
        sim.run(7);
        assert_eq!(sim.cycle(), 7);
    }
}
