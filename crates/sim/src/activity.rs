//! Switching-activity traces.
//!
//! A [`ToggleEvent`] is one output transition of one cell during one clock
//! cycle, annotated with the cell's combinational level. The power model
//! turns each event into a current pulse at
//! `t = cycle·T_clk + level·τ_gate`, which is how the within-cycle current
//! profile (and hence the EM spectrum) arises.
//!
//! Level convention: flip-flop `q` transitions are level 0 (they fire at
//! the clock edge); a combinational cell at levelization depth `d` reports
//! level `d + 1`.

use emtrust_netlist::graph::CellId;

/// One output transition of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleEvent {
    /// The toggling cell.
    pub cell: CellId,
    /// Switching slot within the cycle (0 = at the clock edge).
    pub level: u32,
    /// `true` for a rising output edge, `false` for falling.
    pub rising: bool,
}

/// All toggles of one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleActivity {
    cycle: u64,
    events: Vec<ToggleEvent>,
}

impl CycleActivity {
    /// Creates an empty record for clock cycle `cycle`.
    pub fn new(cycle: u64) -> Self {
        Self {
            cycle,
            events: Vec::new(),
        }
    }

    /// The clock cycle index this record belongs to.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Appends an event.
    pub fn push(&mut self, event: ToggleEvent) {
        self.events.push(event);
    }

    /// The recorded events, in evaluation order.
    pub fn events(&self) -> &[ToggleEvent] {
        &self.events
    }

    /// Number of toggles this cycle.
    pub fn toggle_count(&self) -> usize {
        self.events.len()
    }
}

/// A multi-cycle switching-activity trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityTrace {
    cycles: Vec<CycleActivity>,
}

impl ActivityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cycle of activity.
    pub fn push_cycle(&mut self, cycle: CycleActivity) {
        self.cycles.push(cycle);
    }

    /// The recorded cycles in order.
    pub fn cycles(&self) -> &[CycleActivity] {
        &self.cycles
    }

    /// Number of recorded cycles.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// Total toggles across all cycles.
    pub fn total_toggles(&self) -> usize {
        self.cycles.iter().map(CycleActivity::toggle_count).sum()
    }

    /// Mean toggles per cycle (0 for an empty trace).
    pub fn mean_toggles_per_cycle(&self) -> f64 {
        if self.cycles.is_empty() {
            0.0
        } else {
            self.total_toggles() as f64 / self.cycles.len() as f64
        }
    }

    /// Concatenates another trace after this one.
    pub fn extend_from(&mut self, other: ActivityTrace) {
        self.cycles.extend(other.cycles);
    }
}

/// Per-cell toggle totals aggregated over one or more
/// [`ActivityTrace`]s — the register-level feature export the
/// attribution layer consumes.
///
/// Where an [`ActivityTrace`] answers *when* the design switched (cycle
/// by cycle, event by event), a `ToggleActivity` answers *who* switched
/// and *how often*: one counter per cell, indexed by
/// [`CellId::index`], plus the cycle total the counts were accumulated
/// over. Dividing the two gives each cell's toggle rate — the
/// switching-activity feature that, combined with the EM array's
/// per-tile margin map, localizes a Trojan down to individual
/// registers.
///
/// Accumulation is pure counting in absorption order, so the aggregate
/// is deterministic whenever the simulation that produced the traces
/// is (and the two-phase engine is: same netlist, same stimulus, same
/// recording → bit-identical traces).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ToggleActivity {
    /// Toggle totals indexed by [`CellId::index`]; grows on demand.
    counts: Vec<u64>,
    /// Cycles absorbed so far.
    cycles: u64,
}

impl ToggleActivity {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregates one trace (equivalent to `new()` + [`Self::absorb`]).
    pub fn from_trace(trace: &ActivityTrace) -> Self {
        let mut agg = Self::new();
        agg.absorb(trace);
        agg
    }

    /// Accumulates a trace's toggles into the per-cell counters.
    pub fn absorb(&mut self, trace: &ActivityTrace) {
        for cycle in trace.cycles() {
            for event in cycle.events() {
                let idx = event.cell.index();
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
            }
        }
        self.cycles += trace.cycle_count() as u64;
    }

    /// Cycles absorbed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Highest cell index observed plus one (cells beyond this simply
    /// never toggled).
    pub fn cell_count(&self) -> usize {
        self.counts.len()
    }

    /// Total toggles of one cell (zero for cells never seen).
    pub fn toggle_count(&self, cell: CellId) -> u64 {
        self.counts.get(cell.index()).copied().unwrap_or(0)
    }

    /// Total toggles of the cell at `index` (zero for cells never
    /// seen) — for callers that carry plain indices.
    pub fn toggle_count_at(&self, index: usize) -> u64 {
        self.counts.get(index).copied().unwrap_or(0)
    }

    /// Total toggles across every cell.
    pub fn total_toggles(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean toggles per cycle across the whole design (0 before any
    /// cycle is absorbed).
    pub fn mean_toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_toggles() as f64 / self.cycles as f64
        }
    }

    /// One cell's toggles per absorbed cycle (0 before any cycle is
    /// absorbed).
    pub fn rate(&self, cell: CellId) -> f64 {
        self.rate_at(cell.index())
    }

    /// Toggle rate of the cell at `index`.
    pub fn rate_at(&self, index: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggle_count_at(index) as f64 / self.cycles as f64
        }
    }
}

impl FromIterator<CycleActivity> for ActivityTrace {
    fn from_iter<T: IntoIterator<Item = CycleActivity>>(iter: T) -> Self {
        Self {
            cycles: iter.into_iter().collect(),
        }
    }
}

impl Extend<CycleActivity> for ActivityTrace {
    fn extend<T: IntoIterator<Item = CycleActivity>>(&mut self, iter: T) {
        self.cycles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cell: u32, level: u32) -> ToggleEvent {
        // CellId's constructor is crate-private to emtrust-netlist; build
        // one through a real netlist.
        let mut n = emtrust_netlist::graph::Netlist::new("t");
        let a = n.input("a");
        let mut last = a;
        for _ in 0..=cell {
            last = n.not(last);
        }
        let id = match n.net_source(last) {
            emtrust_netlist::graph::NetSource::Cell(c) => *c,
            _ => unreachable!(),
        };
        ToggleEvent {
            cell: id,
            level,
            rising: true,
        }
    }

    #[test]
    fn cycle_activity_accumulates() {
        let mut c = CycleActivity::new(3);
        assert_eq!(c.cycle(), 3);
        c.push(ev(0, 0));
        c.push(ev(1, 2));
        assert_eq!(c.toggle_count(), 2);
        assert_eq!(c.events()[1].level, 2);
    }

    #[test]
    fn trace_statistics() {
        let mut t = ActivityTrace::new();
        let mut c0 = CycleActivity::new(0);
        c0.push(ev(0, 0));
        let mut c1 = CycleActivity::new(1);
        c1.push(ev(0, 0));
        c1.push(ev(1, 1));
        t.push_cycle(c0);
        t.push_cycle(c1);
        assert_eq!(t.cycle_count(), 2);
        assert_eq!(t.total_toggles(), 3);
        assert!((t.mean_toggles_per_cycle() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = ActivityTrace::new();
        assert_eq!(t.total_toggles(), 0);
        assert_eq!(t.mean_toggles_per_cycle(), 0.0);
    }

    #[test]
    fn traces_concatenate() {
        let mut a = ActivityTrace::new();
        a.push_cycle(CycleActivity::new(0));
        let mut b = ActivityTrace::new();
        b.push_cycle(CycleActivity::new(1));
        a.extend_from(b);
        assert_eq!(a.cycle_count(), 2);
        assert_eq!(a.cycles()[1].cycle(), 1);
    }

    /// A small sequential design plus a seeded stimulus driver, for the
    /// `ToggleActivity` invariant tests: an input-fed XOR chain into a
    /// couple of flip-flops gives level-0 and combinational events.
    fn recorded_trace(seed: u64, cycles: usize) -> ActivityTrace {
        use emtrust_netlist::graph::Netlist;
        use rand::{Rng, SeedableRng};
        let mut n = Netlist::new("toggles");
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor2(a, b);
        let y = n.not(x);
        let q0 = n.dff(x);
        let q1 = n.dff(y);
        let z = n.and2(q0, q1);
        n.mark_output("z", z);
        let mut sim = crate::engine::Simulator::new(&n).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        sim.start_recording();
        for _ in 0..cycles {
            sim.set_input(a, rng.gen());
            sim.set_input(b, rng.gen());
            sim.step();
        }
        sim.take_recording()
    }

    #[test]
    fn toggle_activity_counts_are_monotone_in_cycles() {
        // Absorbing more cycles can only grow every counter: per-cell
        // counts, the total, and the cycle count are all monotone.
        let trace = recorded_trace(11, 48);
        let mut agg = ToggleActivity::new();
        let mut prev_counts: Vec<u64> = Vec::new();
        let mut prev_total = 0u64;
        let mut prev_cycles = 0u64;
        for cycle in trace.cycles() {
            let mut one = ActivityTrace::new();
            one.push_cycle(cycle.clone());
            agg.absorb(&one);
            assert!(agg.cycles() > prev_cycles);
            assert!(agg.total_toggles() >= prev_total);
            for (i, &p) in prev_counts.iter().enumerate() {
                assert!(
                    agg.toggle_count_at(i) >= p,
                    "cell {i} count shrank after absorbing a cycle"
                );
            }
            prev_counts = (0..agg.cell_count())
                .map(|i| agg.toggle_count_at(i))
                .collect();
            prev_total = agg.total_toggles();
            prev_cycles = agg.cycles();
        }
        assert_eq!(agg.cycles(), trace.cycle_count() as u64);
    }

    #[test]
    fn toggle_activity_is_deterministic_under_seed_replay() {
        // The same seeded stimulus must reproduce the aggregate bit for
        // bit; a different seed must not (the stimulus actually matters).
        let a = ToggleActivity::from_trace(&recorded_trace(7, 64));
        let b = ToggleActivity::from_trace(&recorded_trace(7, 64));
        assert_eq!(a, b);
        let c = ToggleActivity::from_trace(&recorded_trace(8, 64));
        assert_ne!(a, c, "a different stimulus seed should change the counts");
    }

    #[test]
    fn toggle_activity_statistics_are_consistent() {
        let trace = recorded_trace(3, 32);
        let agg = ToggleActivity::from_trace(&trace);
        // Per-cell counts sum to the total, which matches the trace's
        // own event count; the mean is exactly total / cycles.
        let summed: u64 = (0..agg.cell_count()).map(|i| agg.toggle_count_at(i)).sum();
        assert_eq!(summed, agg.total_toggles());
        assert_eq!(agg.total_toggles(), trace.total_toggles() as u64);
        assert_eq!(agg.cycles(), trace.cycle_count() as u64);
        let mean = agg.total_toggles() as f64 / agg.cycles() as f64;
        assert!((agg.mean_toggles_per_cycle() - mean).abs() < 1e-12);
        assert!((agg.mean_toggles_per_cycle() - trace.mean_toggles_per_cycle()).abs() < 1e-12);
        // Rates are counts over cycles, and unseen cells read zero.
        for i in 0..agg.cell_count() {
            let expect = agg.toggle_count_at(i) as f64 / agg.cycles() as f64;
            assert!((agg.rate_at(i) - expect).abs() < 1e-12);
        }
        assert_eq!(agg.toggle_count_at(agg.cell_count() + 5), 0);
        assert_eq!(agg.rate_at(agg.cell_count() + 5), 0.0);
    }

    #[test]
    fn toggle_activity_accumulates_across_traces() {
        // from_trace + absorb equals absorbing both traces in order, and
        // an empty aggregate reads all-zero statistics.
        let t1 = recorded_trace(1, 16);
        let t2 = recorded_trace(2, 16);
        let mut a = ToggleActivity::from_trace(&t1);
        a.absorb(&t2);
        let mut b = ToggleActivity::new();
        assert_eq!(b.mean_toggles_per_cycle(), 0.0);
        assert_eq!(b.total_toggles(), 0);
        b.absorb(&t1);
        b.absorb(&t2);
        assert_eq!(a, b);
        assert_eq!(a.cycles(), 32);
    }

    #[test]
    fn trace_collects_from_iterator() {
        let t: ActivityTrace = (0..4).map(CycleActivity::new).collect();
        assert_eq!(t.cycle_count(), 4);
        let mut t2 = ActivityTrace::new();
        t2.extend((0..2).map(CycleActivity::new));
        assert_eq!(t2.cycle_count(), 2);
    }
}
