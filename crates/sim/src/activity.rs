//! Switching-activity traces.
//!
//! A [`ToggleEvent`] is one output transition of one cell during one clock
//! cycle, annotated with the cell's combinational level. The power model
//! turns each event into a current pulse at
//! `t = cycle·T_clk + level·τ_gate`, which is how the within-cycle current
//! profile (and hence the EM spectrum) arises.
//!
//! Level convention: flip-flop `q` transitions are level 0 (they fire at
//! the clock edge); a combinational cell at levelization depth `d` reports
//! level `d + 1`.

use emtrust_netlist::graph::CellId;

/// One output transition of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleEvent {
    /// The toggling cell.
    pub cell: CellId,
    /// Switching slot within the cycle (0 = at the clock edge).
    pub level: u32,
    /// `true` for a rising output edge, `false` for falling.
    pub rising: bool,
}

/// All toggles of one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleActivity {
    cycle: u64,
    events: Vec<ToggleEvent>,
}

impl CycleActivity {
    /// Creates an empty record for clock cycle `cycle`.
    pub fn new(cycle: u64) -> Self {
        Self {
            cycle,
            events: Vec::new(),
        }
    }

    /// The clock cycle index this record belongs to.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Appends an event.
    pub fn push(&mut self, event: ToggleEvent) {
        self.events.push(event);
    }

    /// The recorded events, in evaluation order.
    pub fn events(&self) -> &[ToggleEvent] {
        &self.events
    }

    /// Number of toggles this cycle.
    pub fn toggle_count(&self) -> usize {
        self.events.len()
    }
}

/// A multi-cycle switching-activity trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityTrace {
    cycles: Vec<CycleActivity>,
}

impl ActivityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cycle of activity.
    pub fn push_cycle(&mut self, cycle: CycleActivity) {
        self.cycles.push(cycle);
    }

    /// The recorded cycles in order.
    pub fn cycles(&self) -> &[CycleActivity] {
        &self.cycles
    }

    /// Number of recorded cycles.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// Total toggles across all cycles.
    pub fn total_toggles(&self) -> usize {
        self.cycles.iter().map(CycleActivity::toggle_count).sum()
    }

    /// Mean toggles per cycle (0 for an empty trace).
    pub fn mean_toggles_per_cycle(&self) -> f64 {
        if self.cycles.is_empty() {
            0.0
        } else {
            self.total_toggles() as f64 / self.cycles.len() as f64
        }
    }

    /// Concatenates another trace after this one.
    pub fn extend_from(&mut self, other: ActivityTrace) {
        self.cycles.extend(other.cycles);
    }
}

impl FromIterator<CycleActivity> for ActivityTrace {
    fn from_iter<T: IntoIterator<Item = CycleActivity>>(iter: T) -> Self {
        Self {
            cycles: iter.into_iter().collect(),
        }
    }
}

impl Extend<CycleActivity> for ActivityTrace {
    fn extend<T: IntoIterator<Item = CycleActivity>>(&mut self, iter: T) {
        self.cycles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cell: u32, level: u32) -> ToggleEvent {
        // CellId's constructor is crate-private to emtrust-netlist; build
        // one through a real netlist.
        let mut n = emtrust_netlist::graph::Netlist::new("t");
        let a = n.input("a");
        let mut last = a;
        for _ in 0..=cell {
            last = n.not(last);
        }
        let id = match n.net_source(last) {
            emtrust_netlist::graph::NetSource::Cell(c) => *c,
            _ => unreachable!(),
        };
        ToggleEvent {
            cell: id,
            level,
            rising: true,
        }
    }

    #[test]
    fn cycle_activity_accumulates() {
        let mut c = CycleActivity::new(3);
        assert_eq!(c.cycle(), 3);
        c.push(ev(0, 0));
        c.push(ev(1, 2));
        assert_eq!(c.toggle_count(), 2);
        assert_eq!(c.events()[1].level, 2);
    }

    #[test]
    fn trace_statistics() {
        let mut t = ActivityTrace::new();
        let mut c0 = CycleActivity::new(0);
        c0.push(ev(0, 0));
        let mut c1 = CycleActivity::new(1);
        c1.push(ev(0, 0));
        c1.push(ev(1, 1));
        t.push_cycle(c0);
        t.push_cycle(c1);
        assert_eq!(t.cycle_count(), 2);
        assert_eq!(t.total_toggles(), 3);
        assert!((t.mean_toggles_per_cycle() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = ActivityTrace::new();
        assert_eq!(t.total_toggles(), 0);
        assert_eq!(t.mean_toggles_per_cycle(), 0.0);
    }

    #[test]
    fn traces_concatenate() {
        let mut a = ActivityTrace::new();
        a.push_cycle(CycleActivity::new(0));
        let mut b = ActivityTrace::new();
        b.push_cycle(CycleActivity::new(1));
        a.extend_from(b);
        assert_eq!(a.cycle_count(), 2);
        assert_eq!(a.cycles()[1].cycle(), 1);
    }

    #[test]
    fn trace_collects_from_iterator() {
        let t: ActivityTrace = (0..4).map(CycleActivity::new).collect();
        assert_eq!(t.cycle_count(), 4);
        let mut t2 = ActivityTrace::new();
        t2.extend((0..2).map(CycleActivity::new));
        assert_eq!(t2.cycle_count(), 2);
    }
}
