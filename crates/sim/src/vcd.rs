//! A minimal VCD (value change dump) writer for waveform inspection.
//!
//! Not used by the detection pipeline itself, but invaluable when checking
//! the AES datapath and the Trojan triggers cycle by cycle in a waveform
//! viewer.

use crate::engine::Simulator;
use emtrust_netlist::graph::NetId;
use std::io::{self, Write};

/// Streams selected nets of a running simulation into VCD.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    sink: W,
    signals: Vec<(NetId, String, String)>,
    last: Vec<Option<bool>>,
    timescale_ns: u64,
    header_done: bool,
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer with a timescale of `timescale_ns` nanoseconds per
    /// simulator cycle.
    pub fn new(sink: W, timescale_ns: u64) -> Self {
        Self {
            sink,
            signals: Vec::new(),
            last: Vec::new(),
            timescale_ns: timescale_ns.max(1),
            header_done: false,
        }
    }

    /// Registers `net` under `name`. All registrations must happen before
    /// the first [`VcdWriter::sample`].
    ///
    /// # Panics
    ///
    /// Panics if called after sampling has begun.
    pub fn add_signal(&mut self, net: NetId, name: &str) {
        assert!(!self.header_done, "signals must be added before sampling");
        let code = Self::id_code(self.signals.len());
        self.signals.push((net, name.to_string(), code));
        self.last.push(None);
    }

    /// Registers a bus as individual bit signals `name[i]`.
    ///
    /// # Panics
    ///
    /// Panics if called after sampling has begun.
    pub fn add_bus(&mut self, nets: &[NetId], name: &str) {
        for (i, &n) in nets.iter().enumerate() {
            self.add_signal(n, &format!("{name}[{i}]"));
        }
    }

    /// Samples the current values at the simulator's cycle time, emitting
    /// changes only.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        if !self.header_done {
            self.write_header(sim)?;
            self.header_done = true;
        }
        writeln!(self.sink, "#{}", sim.cycle() * self.timescale_ns)?;
        for (i, (net, _, code)) in self.signals.iter().enumerate() {
            let v = sim.value(*net);
            if self.last[i] != Some(v) {
                writeln!(self.sink, "{}{code}", u8::from(v))?;
                self.last[i] = Some(v);
            }
        }
        Ok(())
    }

    /// Finishes the stream and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }

    fn write_header(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        writeln!(self.sink, "$date emtrust simulation $end")?;
        writeln!(self.sink, "$version emtrust-sim $end")?;
        writeln!(self.sink, "$timescale 1ns $end")?;
        writeln!(self.sink, "$scope module {} $end", sim.netlist().name())?;
        for (_, name, code) in &self.signals {
            writeln!(self.sink, "$var wire 1 {code} {name} $end")?;
        }
        writeln!(self.sink, "$upscope $end")?;
        writeln!(self.sink, "$enddefinitions $end")?;
        Ok(())
    }

    /// VCD identifier codes: printable ASCII 33..=126, multi-character.
    fn id_code(mut index: usize) -> String {
        let mut code = String::new();
        loop {
            code.push((33 + (index % 94)) as u8 as char);
            index /= 94;
            if index == 0 {
                break;
            }
            index -= 1;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emtrust_netlist::graph::Netlist;

    fn toggle_netlist() -> Netlist {
        let mut n = Netlist::new("toggle");
        let (q, d) = n.dff_deferred();
        let nq = n.not(q);
        n.connect_dff_d(d, nq);
        n.mark_output("q", q);
        n
    }

    #[test]
    fn vcd_contains_header_and_changes() {
        let n = toggle_netlist();
        let q = n.primary_outputs()[0].1;
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdWriter::new(Vec::new(), 100);
        vcd.add_signal(q, "q");
        for _ in 0..3 {
            sim.step();
            vcd.sample(&sim).unwrap();
        }
        let text = String::from_utf8(vcd.finish().unwrap()).unwrap();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("$var wire 1 ! q $end"));
        assert!(text.contains("#100"));
        assert!(text.contains("1!"));
        assert!(text.contains("0!"));
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        let mut n = Netlist::new("const");
        let a = n.input("a");
        let y = n.buf(a);
        n.mark_output("y", y);
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdWriter::new(Vec::new(), 10);
        vcd.add_signal(y, "y");
        for _ in 0..4 {
            sim.step();
            vcd.sample(&sim).unwrap();
        }
        let text = String::from_utf8(vcd.finish().unwrap()).unwrap();
        // y stays 0 throughout: exactly one value line.
        assert_eq!(text.matches("0!").count(), 1);
    }

    #[test]
    fn bus_registration_names_bits() {
        let mut n = Netlist::new("bus");
        let ins = n.input_bus("d", 2);
        n.mark_output_bus("d", &ins);
        let sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdWriter::new(Vec::new(), 1);
        vcd.add_bus(&ins, "d");
        vcd.sample(&sim).unwrap();
        let text = String::from_utf8(vcd.finish().unwrap()).unwrap();
        assert!(text.contains("d[0]"));
        assert!(text.contains("d[1]"));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = VcdWriter::<Vec<u8>>::id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn late_signal_registration_panics() {
        let n = toggle_netlist();
        let q = n.primary_outputs()[0].1;
        let mut sim = Simulator::new(&n).unwrap();
        let mut vcd = VcdWriter::new(Vec::new(), 1);
        vcd.add_signal(q, "q");
        sim.step();
        vcd.sample(&sim).unwrap();
        vcd.add_signal(q, "late");
    }
}
