#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust-sim
//!
//! Cycle-based logic simulation with switching-activity capture for the
//! `emtrust` reproduction of the DAC 2020 on-chip EM sensor paper.
//!
//! The EM side channel is driven by *which cells toggle, and when within
//! the clock cycle*. The simulator therefore does two things:
//!
//! 1. **Functional simulation** — two-phase, cycle-based: on each
//!    [`engine::Simulator::step`] the flip-flops capture their `d` inputs,
//!    then the combinational cloud settles in levelized order. Zero-delay
//!    semantics; glitches below the cycle resolution are not modelled
//!    (documented substitution — the detectors operate on aggregate charge
//!    per transition window, which single-transition-per-cycle preserves).
//! 2. **Activity capture** — every output toggle is recorded per cycle as
//!    an [`activity::ToggleEvent`]; the power model later converts each
//!    event into a current pulse at `t = cycle·T + level·τ_gate`.
//!
//! There is also a small [`vcd`] writer for waveform inspection.
//!
//! # Examples
//!
//! Simulate a toggle flip-flop for four cycles:
//!
//! ```
//! use emtrust_netlist::graph::Netlist;
//! use emtrust_sim::engine::Simulator;
//!
//! let mut n = Netlist::new("toggle");
//! let (q, d) = n.dff_deferred();
//! let nq = n.not(q);
//! n.connect_dff_d(d, nq);
//! n.mark_output("q", q);
//!
//! let mut sim = Simulator::new(&n)?;
//! sim.settle(); // propagate the initial state through the inverter
//! let mut values = Vec::new();
//! for _ in 0..4 {
//!     sim.step();
//!     values.push(sim.value(q));
//! }
//! assert_eq!(values, [true, false, true, false]);
//! # Ok::<(), emtrust_netlist::NetlistError>(())
//! ```

pub mod activity;
pub mod engine;
pub mod vcd;

pub use activity::{ActivityTrace, CycleActivity, ToggleActivity, ToggleEvent};
pub use engine::Simulator;
