//! The frequency-domain detector (paper §III-E, §IV-D, Fig. 4, Fig. 6 i–l).
//!
//! The golden chip's EM spectrum concentrates at the clock frequency and
//! its harmonics. A Trojan's fast-flipping trigger either
//!
//! - boosts the magnitude of an existing spot (`T = g`), or
//! - adds a new spot (`T ≠ g`).
//!
//! The detector fits the golden spectrum once and then compares suspect
//! spectra bin-wise with a noise-calibrated margin.

use crate::TrustError;
use emtrust_dsp::sliding::SlidingDft;
use emtrust_dsp::spectrum::Spectrum;
use emtrust_dsp::stats::median;
use emtrust_dsp::window::Window;
use emtrust_em::emf::VoltageTrace;

/// How a spectral anomaly manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A spot the golden spectrum already has grew (`T = g`).
    BoostedSpot,
    /// A spot absent from the golden spectrum appeared (`T ≠ g`).
    NewSpot,
}

/// One anomalous frequency spot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralAnomaly {
    /// Spot frequency in hertz.
    pub frequency_hz: f64,
    /// Golden magnitude at that bin.
    pub golden_magnitude: f64,
    /// Suspect magnitude at that bin.
    pub suspect_magnitude: f64,
    /// Classification per the paper's `T = g` / `T ≠ g` cases.
    pub kind: AnomalyKind,
}

/// Configuration for the spectral comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// Welch segments for spectrum estimation.
    pub welch_segments: usize,
    /// Analysis window.
    pub window: Window,
    /// A bin is anomalous when the suspect magnitude exceeds
    /// `margin_ratio × golden + absolute_floor`.
    pub margin_ratio: f64,
    /// Multiple of the golden noise floor added to the decision margin.
    pub floor_multiplier: f64,
    /// Restrict the comparison to frequencies at or below this bound
    /// (`None` = the full Nyquist range). The paper's Fig. 4 inspects the
    /// band around the clock line and its low harmonics.
    pub analysis_band_hz: Option<f64>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            welch_segments: 4,
            window: Window::Hann,
            margin_ratio: 1.6,
            floor_multiplier: 5.0,
            analysis_band_hz: None,
        }
    }
}

/// A fitted spectral detector.
#[derive(Debug, Clone)]
pub struct SpectralDetector {
    golden: Spectrum,
    noise_floor: f64,
    config: SpectralConfig,
}

impl SpectralDetector {
    /// Fits the detector on a golden continuous trace.
    ///
    /// # Errors
    ///
    /// Propagates spectrum-estimation errors (empty/too-short traces).
    pub fn fit(golden: &VoltageTrace, config: SpectralConfig) -> Result<Self, TrustError> {
        let spectrum = Spectrum::welch(
            golden.samples(),
            golden.sample_rate_hz(),
            config.window,
            config.welch_segments,
        )?;
        let noise_floor = median(spectrum.magnitudes());
        Ok(Self {
            golden: spectrum,
            noise_floor,
            config,
        })
    }

    /// The golden spectrum.
    pub fn golden_spectrum(&self) -> &Spectrum {
        &self.golden
    }

    /// The estimated golden noise floor (median bin magnitude).
    pub fn noise_floor(&self) -> f64 {
        self.noise_floor
    }

    /// Estimates a suspect window's spectrum with the detector's own
    /// Welch settings, after checking the sample rate against the golden
    /// trace's. The pipeline's featurizer uses this so the spectrum is
    /// computed once and shared by every spectral consumer.
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if the suspect trace's sample
    ///   rate differs from the golden trace's,
    /// - forwarded spectrum-estimation errors.
    pub fn suspect_spectrum(&self, suspect: &VoltageTrace) -> Result<Spectrum, TrustError> {
        if (suspect.sample_rate_hz() - self.golden.sample_rate_hz()).abs()
            > 1e-6 * self.golden.sample_rate_hz()
        {
            return Err(TrustError::InvalidParameter {
                what: "suspect sample rate must match the golden trace",
            });
        }
        Ok(Spectrum::welch(
            suspect.samples(),
            suspect.sample_rate_hz(),
            self.config.window,
            self.config.welch_segments,
        )?)
    }

    /// Compares a suspect trace's spectrum against the golden spectrum,
    /// returning every anomalous spot (strongest first).
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if the suspect trace's sample
    ///   rate differs from the golden trace's,
    /// - forwarded spectrum-estimation errors.
    pub fn compare(&self, suspect: &VoltageTrace) -> Result<Vec<SpectralAnomaly>, TrustError> {
        let spec = self.suspect_spectrum(suspect)?;
        Ok(self.compare_spectrum(&spec))
    }

    /// Compares an already-estimated suspect spectrum against the golden
    /// spectrum, returning every anomalous spot (strongest first). This
    /// is the pure decision stage of [`Self::compare`]; the caller is
    /// responsible for estimating the spectrum at a matching sample rate
    /// (see [`Self::suspect_spectrum`]).
    pub fn compare_spectrum(&self, spec: &Spectrum) -> Vec<SpectralAnomaly> {
        let mut n = spec.magnitudes().len().min(self.golden.magnitudes().len());
        if let Some(band) = self.config.analysis_band_hz {
            let in_band = self
                .golden
                .freqs_hz()
                .iter()
                .take_while(|&&f| f <= band)
                .count();
            n = n.min(in_band);
        }
        let floor = self.config.floor_multiplier * self.noise_floor;
        let mut anomalies: Vec<SpectralAnomaly> = (1..n)
            .filter_map(|i| {
                let g = self.golden.magnitudes()[i];
                let s = spec.magnitudes()[i];
                if s > self.config.margin_ratio * g + floor {
                    // `T = g` when the golden spectrum already had a real
                    // spot of comparable scale there; `T ≠ g` when the
                    // suspect line rises out of what was floor.
                    let kind = if g > 2.0 * self.noise_floor && g > 0.2 * s {
                        AnomalyKind::BoostedSpot
                    } else {
                        AnomalyKind::NewSpot
                    };
                    Some(SpectralAnomaly {
                        frequency_hz: self.golden.freqs_hz()[i],
                        golden_magnitude: g,
                        suspect_magnitude: s,
                        kind,
                    })
                } else {
                    None
                }
            })
            .collect();
        anomalies.sort_by(|a, b| {
            b.suspect_magnitude
                .partial_cmp(&a.suspect_magnitude)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        anomalies
    }

    /// Convenience verdict: does the suspect trace contain any anomaly?
    ///
    /// # Errors
    ///
    /// Same as [`SpectralDetector::compare`].
    pub fn trojan_suspected(&self, suspect: &VoltageTrace) -> Result<bool, TrustError> {
        Ok(!self.compare(suspect)?.is_empty())
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> SpectralConfig {
        self.config
    }
}

/// Anomalies found in one analysis window of a streamed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnomalies {
    /// Index one past the window's last sample in the scanned trace
    /// (the window covers `end_sample - window_len .. end_sample`).
    pub end_sample: usize,
    /// Anomalous spots in that window, strongest first.
    pub anomalies: Vec<SpectralAnomaly>,
}

/// A streaming spectral detector over continuous acquisitions.
///
/// [`SpectralDetector`] re-estimates a Welch spectrum per suspect trace —
/// fine for block captures, wasteful for a continuous stream that should
/// be re-checked every few microseconds. `SpectralStream` instead slides a
/// rectangular window across the trace with an incremental DFT
/// ([`SlidingDft`], `O(window)` bin updates per sample instead of an
/// `O(window log window)` FFT per hop) and runs the same bin-wise decision
/// stage on every hop, so an anomaly is localized to the window where it
/// first appears.
#[derive(Debug, Clone)]
pub struct SpectralStream {
    detector: SpectralDetector,
    window_len: usize,
    hop: usize,
}

impl SpectralStream {
    /// Fits a streaming detector on a golden continuous trace: the golden
    /// baseline is the average of every hop's sliding-window magnitude
    /// spectrum, and the noise floor its median bin.
    ///
    /// `config.window` and `config.welch_segments` are ignored — the
    /// sliding estimator is inherently rectangular-windowed and averages
    /// across hops instead of Welch segments; the margin, floor and band
    /// settings apply unchanged.
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if `hop == 0` or the golden
    ///   trace is shorter than one window,
    /// - forwarded [`SlidingDft`] errors for an invalid `window_len`.
    pub fn fit(
        golden: &VoltageTrace,
        window_len: usize,
        hop: usize,
        config: SpectralConfig,
    ) -> Result<Self, TrustError> {
        if hop == 0 {
            return Err(TrustError::InvalidParameter {
                what: "hop must be at least one sample",
            });
        }
        if golden.samples().len() < window_len {
            return Err(TrustError::InvalidParameter {
                what: "golden trace is shorter than the analysis window",
            });
        }
        let fs = golden.sample_rate_hz();
        let mut dft = SlidingDft::new(window_len)?;
        let mut sum: Vec<f64> = Vec::new();
        let mut freqs: Vec<f64> = Vec::new();
        let mut windows = 0usize;
        for_each_window(&mut dft, golden.samples(), hop, |d| {
            let spec = d.spectrum(fs)?;
            if sum.is_empty() {
                sum = spec.magnitudes().to_vec();
                freqs = spec.freqs_hz().to_vec();
            } else {
                for (a, m) in sum.iter_mut().zip(spec.magnitudes()) {
                    *a += m;
                }
            }
            windows += 1;
            Ok(())
        })?;
        for a in sum.iter_mut() {
            *a /= windows as f64;
        }
        let golden_spectrum = Spectrum::from_one_sided_parts(freqs, sum, fs)?;
        // The absolute floor term must be calibrated on the bins that are
        // actually compared: an EM trace's high-frequency emphasis would
        // otherwise push the whole-axis median far above the quiet
        // low-frequency bins where trigger lines appear.
        let in_band = match config.analysis_band_hz {
            Some(band) => golden_spectrum
                .freqs_hz()
                .iter()
                .take_while(|&&f| f <= band)
                .count()
                .max(1),
            None => golden_spectrum.magnitudes().len(),
        };
        let noise_floor = median(&golden_spectrum.magnitudes()[..in_band]);
        Ok(Self {
            detector: SpectralDetector {
                golden: golden_spectrum,
                noise_floor,
                config,
            },
            window_len,
            hop,
        })
    }

    /// Scans a suspect trace, returning every window that contains at
    /// least one anomalous spot (in stream order). An empty result means
    /// the whole trace stayed within the golden margins.
    ///
    /// # Errors
    ///
    /// Returns [`TrustError::InvalidParameter`] if the suspect trace's
    /// sample rate differs from the golden trace's.
    pub fn scan(&self, suspect: &VoltageTrace) -> Result<Vec<WindowAnomalies>, TrustError> {
        let fs = self.detector.golden.sample_rate_hz();
        if (suspect.sample_rate_hz() - fs).abs() > 1e-6 * fs {
            return Err(TrustError::InvalidParameter {
                what: "suspect sample rate must match the golden trace",
            });
        }
        let mut dft = SlidingDft::new(self.window_len)?;
        let mut flagged = Vec::new();
        let mut end = self.window_len;
        let hop = self.hop;
        for_each_window(&mut dft, suspect.samples(), hop, |d| {
            let anomalies = self.detector.compare_spectrum(&d.spectrum(fs)?);
            if !anomalies.is_empty() {
                flagged.push(WindowAnomalies {
                    end_sample: end,
                    anomalies,
                });
            }
            end += hop;
            Ok(())
        })?;
        Ok(flagged)
    }

    /// The fitted per-window detector (golden spectrum, noise floor).
    pub fn detector(&self) -> &SpectralDetector {
        &self.detector
    }

    /// The analysis window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The hop between analyzed windows in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }
}

/// Streams `samples` through `dft`, invoking `emit` at the first full
/// window and every `hop` samples thereafter.
fn for_each_window(
    dft: &mut SlidingDft,
    samples: &[f64],
    hop: usize,
    mut emit: impl FnMut(&SlidingDft) -> Result<(), TrustError>,
) -> Result<(), TrustError> {
    let window_len = dft.window_len();
    for (i, &x) in samples.iter().enumerate() {
        dft.push(x);
        if i + 1 >= window_len && (i + 1 - window_len).is_multiple_of(hop) {
            emit(dft)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_trace(freqs: &[(f64, f64)], fs: f64, n: usize, noise: f64, seed: u64) -> VoltageTrace {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                freqs
                    .iter()
                    .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                    .sum::<f64>()
                    + noise * rng.gen_range(-1.0..1.0)
            })
            .collect();
        VoltageTrace::new(samples, fs)
    }

    const FS: f64 = 640e6;
    const CLOCK: f64 = 10e6;

    fn golden() -> VoltageTrace {
        // Clock line + 2nd harmonic, as the paper describes.
        tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 1)
    }

    #[test]
    fn identical_spectrum_raises_nothing() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let fresh = tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 2);
        assert!(det.compare(&fresh).unwrap().is_empty());
        assert!(!det.trojan_suspected(&fresh).unwrap());
    }

    #[test]
    fn new_spot_is_flagged_as_t_neq_g() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        // A2-style trigger line at 25 MHz, absent from the golden spectrum.
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.3)],
            FS,
            16384,
            0.01,
            3,
        );
        let anomalies = det.compare(&suspect).unwrap();
        assert!(!anomalies.is_empty());
        let top = anomalies[0];
        assert_eq!(top.kind, AnomalyKind::NewSpot);
        assert!(
            (top.frequency_hz - 25e6).abs() < 2.0 * det.golden_spectrum().resolution_hz(),
            "spot at {}",
            top.frequency_hz
        );
    }

    #[test]
    fn boosted_clock_line_is_flagged_as_t_eq_g() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(&[(CLOCK, 2.5), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 4);
        let anomalies = det.compare(&suspect).unwrap();
        assert!(anomalies.iter().any(|a| a.kind == AnomalyKind::BoostedSpot
            && (a.frequency_hz - CLOCK).abs() < 2.0 * det.golden_spectrum().resolution_hz()));
    }

    #[test]
    fn mismatched_sample_rates_are_rejected() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let wrong = tone_trace(&[(CLOCK, 1.0)], FS / 2.0, 4096, 0.01, 5);
        assert!(det.compare(&wrong).is_err());
    }

    #[test]
    fn noise_floor_is_estimated_from_the_median() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        assert!(det.noise_floor() > 0.0);
        // The clock line towers over the floor.
        let clock_mag = det.golden_spectrum().magnitude_at(CLOCK).unwrap();
        assert!(clock_mag > 20.0 * det.noise_floor());
    }

    #[test]
    fn analysis_band_limits_the_comparison() {
        let config = SpectralConfig {
            analysis_band_hz: Some(20e6),
            ..SpectralConfig::default()
        };
        let det = SpectralDetector::fit(&golden(), config).unwrap();
        // An out-of-band line is ignored; an in-band one is caught.
        let out_of_band = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (50e6, 0.5)],
            FS,
            16384,
            0.01,
            8,
        );
        assert!(det.compare(&out_of_band).unwrap().is_empty());
        let in_band = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (15e6, 0.5)],
            FS,
            16384,
            0.01,
            9,
        );
        assert!(!det.compare(&in_band).unwrap().is_empty());
    }

    #[test]
    fn compare_splits_into_spectrum_and_decision_stages() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.3)],
            FS,
            16384,
            0.01,
            3,
        );
        let spec = det.suspect_spectrum(&suspect).unwrap();
        assert_eq!(det.compare_spectrum(&spec), det.compare(&suspect).unwrap());
    }

    #[test]
    fn streaming_scan_of_a_clean_trace_raises_nothing() {
        let stream = SpectralStream::fit(&golden(), 1024, 512, SpectralConfig::default()).unwrap();
        let fresh = tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 12);
        assert!(stream.scan(&fresh).unwrap().is_empty());
    }

    #[test]
    fn streaming_scan_localizes_a_mid_trace_burst() {
        let stream = SpectralStream::fit(&golden(), 1024, 512, SpectralConfig::default()).unwrap();
        // Golden-looking trace with a 25 MHz intruder line only in the
        // second half (an intermittently-armed trigger).
        let n = 16384;
        let burst_start = n / 2;
        let base = tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, n, 0.01, 13);
        let samples: Vec<f64> = base
            .samples()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i >= burst_start {
                    v + 0.5 * (2.0 * std::f64::consts::PI * 25e6 * i as f64 / FS).sin()
                } else {
                    v
                }
            })
            .collect();
        let suspect = VoltageTrace::new(samples, FS);
        let flagged = stream.scan(&suspect).unwrap();
        assert!(!flagged.is_empty(), "the burst must be caught");
        for w in &flagged {
            assert!(
                w.end_sample > burst_start,
                "window ending at {} flagged before the burst",
                w.end_sample
            );
            assert!(!w.anomalies.is_empty());
        }
        // The burst is present once windows fully cover it.
        let fully_covered = flagged
            .iter()
            .any(|w| w.end_sample >= burst_start + stream.window_len());
        assert!(fully_covered);
    }

    #[test]
    fn streaming_detector_reuses_the_bin_wise_decision() {
        let stream = SpectralStream::fit(&golden(), 1024, 512, SpectralConfig::default()).unwrap();
        assert_eq!(stream.window_len(), 1024);
        assert_eq!(stream.hop(), 512);
        let det = stream.detector();
        assert!(det.noise_floor() > 0.0);
        // The averaged golden baseline keeps the clock line on its bin.
        let clock_mag = det.golden_spectrum().magnitude_at(CLOCK).unwrap();
        assert!(clock_mag > 20.0 * det.noise_floor());
    }

    #[test]
    fn streaming_fit_and_scan_reject_bad_input() {
        let g = golden();
        assert!(SpectralStream::fit(&g, 1024, 0, SpectralConfig::default()).is_err());
        assert!(SpectralStream::fit(&g, 1000, 512, SpectralConfig::default()).is_err());
        let short = tone_trace(&[(CLOCK, 1.0)], FS, 256, 0.01, 14);
        assert!(SpectralStream::fit(&short, 1024, 512, SpectralConfig::default()).is_err());
        let stream = SpectralStream::fit(&g, 1024, 512, SpectralConfig::default()).unwrap();
        let wrong_rate = tone_trace(&[(CLOCK, 1.0)], FS / 2.0, 4096, 0.01, 15);
        assert!(stream.scan(&wrong_rate).is_err());
    }

    #[test]
    fn anomalies_are_sorted_by_magnitude() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.5), (47e6, 0.2)],
            FS,
            16384,
            0.01,
            6,
        );
        let anomalies = det.compare(&suspect).unwrap();
        for w in anomalies.windows(2) {
            assert!(w[0].suspect_magnitude >= w[1].suspect_magnitude);
        }
    }
}
