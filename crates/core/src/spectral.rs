//! The frequency-domain detector (paper §III-E, §IV-D, Fig. 4, Fig. 6 i–l).
//!
//! The golden chip's EM spectrum concentrates at the clock frequency and
//! its harmonics. A Trojan's fast-flipping trigger either
//!
//! - boosts the magnitude of an existing spot (`T = g`), or
//! - adds a new spot (`T ≠ g`).
//!
//! The detector fits the golden spectrum once and then compares suspect
//! spectra bin-wise with a noise-calibrated margin.

use crate::TrustError;
use emtrust_dsp::spectrum::Spectrum;
use emtrust_dsp::stats::median;
use emtrust_dsp::window::Window;
use emtrust_em::emf::VoltageTrace;

/// How a spectral anomaly manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A spot the golden spectrum already has grew (`T = g`).
    BoostedSpot,
    /// A spot absent from the golden spectrum appeared (`T ≠ g`).
    NewSpot,
}

/// One anomalous frequency spot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralAnomaly {
    /// Spot frequency in hertz.
    pub frequency_hz: f64,
    /// Golden magnitude at that bin.
    pub golden_magnitude: f64,
    /// Suspect magnitude at that bin.
    pub suspect_magnitude: f64,
    /// Classification per the paper's `T = g` / `T ≠ g` cases.
    pub kind: AnomalyKind,
}

/// Configuration for the spectral comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// Welch segments for spectrum estimation.
    pub welch_segments: usize,
    /// Analysis window.
    pub window: Window,
    /// A bin is anomalous when the suspect magnitude exceeds
    /// `margin_ratio × golden + absolute_floor`.
    pub margin_ratio: f64,
    /// Multiple of the golden noise floor added to the decision margin.
    pub floor_multiplier: f64,
    /// Restrict the comparison to frequencies at or below this bound
    /// (`None` = the full Nyquist range). The paper's Fig. 4 inspects the
    /// band around the clock line and its low harmonics.
    pub analysis_band_hz: Option<f64>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            welch_segments: 4,
            window: Window::Hann,
            margin_ratio: 1.6,
            floor_multiplier: 5.0,
            analysis_band_hz: None,
        }
    }
}

/// A fitted spectral detector.
#[derive(Debug, Clone)]
pub struct SpectralDetector {
    golden: Spectrum,
    noise_floor: f64,
    config: SpectralConfig,
}

impl SpectralDetector {
    /// Fits the detector on a golden continuous trace.
    ///
    /// # Errors
    ///
    /// Propagates spectrum-estimation errors (empty/too-short traces).
    pub fn fit(golden: &VoltageTrace, config: SpectralConfig) -> Result<Self, TrustError> {
        let spectrum = Spectrum::welch(
            golden.samples(),
            golden.sample_rate_hz(),
            config.window,
            config.welch_segments,
        )?;
        let noise_floor = median(spectrum.magnitudes());
        Ok(Self {
            golden: spectrum,
            noise_floor,
            config,
        })
    }

    /// The golden spectrum.
    pub fn golden_spectrum(&self) -> &Spectrum {
        &self.golden
    }

    /// The estimated golden noise floor (median bin magnitude).
    pub fn noise_floor(&self) -> f64 {
        self.noise_floor
    }

    /// Estimates a suspect window's spectrum with the detector's own
    /// Welch settings, after checking the sample rate against the golden
    /// trace's. The pipeline's featurizer uses this so the spectrum is
    /// computed once and shared by every spectral consumer.
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if the suspect trace's sample
    ///   rate differs from the golden trace's,
    /// - forwarded spectrum-estimation errors.
    pub fn suspect_spectrum(&self, suspect: &VoltageTrace) -> Result<Spectrum, TrustError> {
        if (suspect.sample_rate_hz() - self.golden.sample_rate_hz()).abs()
            > 1e-6 * self.golden.sample_rate_hz()
        {
            return Err(TrustError::InvalidParameter {
                what: "suspect sample rate must match the golden trace",
            });
        }
        Ok(Spectrum::welch(
            suspect.samples(),
            suspect.sample_rate_hz(),
            self.config.window,
            self.config.welch_segments,
        )?)
    }

    /// Compares a suspect trace's spectrum against the golden spectrum,
    /// returning every anomalous spot (strongest first).
    ///
    /// # Errors
    ///
    /// - [`TrustError::InvalidParameter`] if the suspect trace's sample
    ///   rate differs from the golden trace's,
    /// - forwarded spectrum-estimation errors.
    pub fn compare(&self, suspect: &VoltageTrace) -> Result<Vec<SpectralAnomaly>, TrustError> {
        let spec = self.suspect_spectrum(suspect)?;
        Ok(self.compare_spectrum(&spec))
    }

    /// Compares an already-estimated suspect spectrum against the golden
    /// spectrum, returning every anomalous spot (strongest first). This
    /// is the pure decision stage of [`Self::compare`]; the caller is
    /// responsible for estimating the spectrum at a matching sample rate
    /// (see [`Self::suspect_spectrum`]).
    pub fn compare_spectrum(&self, spec: &Spectrum) -> Vec<SpectralAnomaly> {
        let mut n = spec.magnitudes().len().min(self.golden.magnitudes().len());
        if let Some(band) = self.config.analysis_band_hz {
            let in_band = self
                .golden
                .freqs_hz()
                .iter()
                .take_while(|&&f| f <= band)
                .count();
            n = n.min(in_band);
        }
        let floor = self.config.floor_multiplier * self.noise_floor;
        let mut anomalies: Vec<SpectralAnomaly> = (1..n)
            .filter_map(|i| {
                let g = self.golden.magnitudes()[i];
                let s = spec.magnitudes()[i];
                if s > self.config.margin_ratio * g + floor {
                    // `T = g` when the golden spectrum already had a real
                    // spot of comparable scale there; `T ≠ g` when the
                    // suspect line rises out of what was floor.
                    let kind = if g > 2.0 * self.noise_floor && g > 0.2 * s {
                        AnomalyKind::BoostedSpot
                    } else {
                        AnomalyKind::NewSpot
                    };
                    Some(SpectralAnomaly {
                        frequency_hz: self.golden.freqs_hz()[i],
                        golden_magnitude: g,
                        suspect_magnitude: s,
                        kind,
                    })
                } else {
                    None
                }
            })
            .collect();
        anomalies.sort_by(|a, b| {
            b.suspect_magnitude
                .partial_cmp(&a.suspect_magnitude)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        anomalies
    }

    /// Convenience verdict: does the suspect trace contain any anomaly?
    ///
    /// # Errors
    ///
    /// Same as [`SpectralDetector::compare`].
    pub fn trojan_suspected(&self, suspect: &VoltageTrace) -> Result<bool, TrustError> {
        Ok(!self.compare(suspect)?.is_empty())
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> SpectralConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_trace(freqs: &[(f64, f64)], fs: f64, n: usize, noise: f64, seed: u64) -> VoltageTrace {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                freqs
                    .iter()
                    .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                    .sum::<f64>()
                    + noise * rng.gen_range(-1.0..1.0)
            })
            .collect();
        VoltageTrace::new(samples, fs)
    }

    const FS: f64 = 640e6;
    const CLOCK: f64 = 10e6;

    fn golden() -> VoltageTrace {
        // Clock line + 2nd harmonic, as the paper describes.
        tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 1)
    }

    #[test]
    fn identical_spectrum_raises_nothing() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let fresh = tone_trace(&[(CLOCK, 1.0), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 2);
        assert!(det.compare(&fresh).unwrap().is_empty());
        assert!(!det.trojan_suspected(&fresh).unwrap());
    }

    #[test]
    fn new_spot_is_flagged_as_t_neq_g() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        // A2-style trigger line at 25 MHz, absent from the golden spectrum.
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.3)],
            FS,
            16384,
            0.01,
            3,
        );
        let anomalies = det.compare(&suspect).unwrap();
        assert!(!anomalies.is_empty());
        let top = anomalies[0];
        assert_eq!(top.kind, AnomalyKind::NewSpot);
        assert!(
            (top.frequency_hz - 25e6).abs() < 2.0 * det.golden_spectrum().resolution_hz(),
            "spot at {}",
            top.frequency_hz
        );
    }

    #[test]
    fn boosted_clock_line_is_flagged_as_t_eq_g() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(&[(CLOCK, 2.5), (2.0 * CLOCK, 0.4)], FS, 16384, 0.01, 4);
        let anomalies = det.compare(&suspect).unwrap();
        assert!(anomalies.iter().any(|a| a.kind == AnomalyKind::BoostedSpot
            && (a.frequency_hz - CLOCK).abs() < 2.0 * det.golden_spectrum().resolution_hz()));
    }

    #[test]
    fn mismatched_sample_rates_are_rejected() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let wrong = tone_trace(&[(CLOCK, 1.0)], FS / 2.0, 4096, 0.01, 5);
        assert!(det.compare(&wrong).is_err());
    }

    #[test]
    fn noise_floor_is_estimated_from_the_median() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        assert!(det.noise_floor() > 0.0);
        // The clock line towers over the floor.
        let clock_mag = det.golden_spectrum().magnitude_at(CLOCK).unwrap();
        assert!(clock_mag > 20.0 * det.noise_floor());
    }

    #[test]
    fn analysis_band_limits_the_comparison() {
        let config = SpectralConfig {
            analysis_band_hz: Some(20e6),
            ..SpectralConfig::default()
        };
        let det = SpectralDetector::fit(&golden(), config).unwrap();
        // An out-of-band line is ignored; an in-band one is caught.
        let out_of_band = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (50e6, 0.5)],
            FS,
            16384,
            0.01,
            8,
        );
        assert!(det.compare(&out_of_band).unwrap().is_empty());
        let in_band = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (15e6, 0.5)],
            FS,
            16384,
            0.01,
            9,
        );
        assert!(!det.compare(&in_band).unwrap().is_empty());
    }

    #[test]
    fn compare_splits_into_spectrum_and_decision_stages() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.3)],
            FS,
            16384,
            0.01,
            3,
        );
        let spec = det.suspect_spectrum(&suspect).unwrap();
        assert_eq!(det.compare_spectrum(&spec), det.compare(&suspect).unwrap());
    }

    #[test]
    fn anomalies_are_sorted_by_magnitude() {
        let det = SpectralDetector::fit(&golden(), SpectralConfig::default()).unwrap();
        let suspect = tone_trace(
            &[(CLOCK, 1.0), (2.0 * CLOCK, 0.4), (25e6, 0.5), (47e6, 0.2)],
            FS,
            16384,
            0.01,
            6,
        );
        let anomalies = det.compare(&suspect).unwrap();
        for w in anomalies.windows(2) {
            assert!(w[0].suspect_magnitude >= w[1].suspect_magnitude);
        }
    }
}
