//! Register-level Trojan attribution: the structured [`Attribution`]
//! result and its rank metrics.
//!
//! The PR 5 localization stops at placement-region granularity — "the
//! excess energy sits nearest `trojan3`". The scan-chain literature's
//! useful deliverable is finer: a **per-register suspicion vector**
//! scored with Precision@k / Recall@k / AUROC / IoU, so a silicon
//! validation team knows *which cells* to image first. This module is
//! that surface:
//!
//! - [`Attribution`] — the result of
//!   [`SensorArray::attribute`](crate::array::SensorArray::attribute):
//!   the region tier the old
//!   `ArrayVerdict` carried (typed [`RegionScore`] ranking, heat map,
//!   centroid, alarm) plus a new cell tier of ranked [`CellScore`]s,
//!   with `hit_at`, `precision_at`, `recall_at`, `auroc` and `iou` as
//!   methods on the result instead of ad-hoc free-floating helpers.
//! - [`CellEvidence`] — the switching-activity ingredient: a baseline
//!   and a suspect [`ToggleActivity`] from the same stimulus, as
//!   returned by `SensorArray::collect_with_activity`.
//! - Rank metrics ([`precision_at_k`], [`recall_at_k`], [`auroc`],
//!   [`iou_at_k`]) as plain free functions over ranked truth labels, so
//!   the `emtrust-bench` leave-one-Trojan-out harness can score model
//!   outputs without round-tripping through an `Attribution`.
//!
//! Per-cell features fuse two independent physics: **where** the EM
//! excess sits (the whitened per-tile margin map and its centroid) and
//! **what** switched more than the baseline says it should (toggle-rate
//! excess per cell). A dormant payload barely toggles, but its trigger
//! counts every cycle; a whole-die supply leak lifts every tile, but no
//! cell's toggle rate moves. The default suspicion score multiplies
//! activity excess with spatial weight; the learned detector's
//! [`LogisticModel`](crate::learned::LogisticModel) trains on the raw
//! [`CellFeatures`] when labeled material exists (the bench's
//! leave-one-Trojan-out protocol).

use crate::array::{Localizer, RegionScore, TileScore};
use crate::detector::DetectorVerdict;
use crate::TrustError;
use emtrust_layout::floorplan::Floorplan;
use emtrust_netlist::{CellId, CellKind, Netlist};
use emtrust_sim::ToggleActivity;

/// Switching-activity evidence for cell-level attribution: the same
/// stimulus observed with the chip in its baseline (golden or
/// calibration) state and in the suspect state.
#[derive(Debug, Clone, Copy)]
pub struct CellEvidence<'a> {
    /// Accumulated toggle activity of the baseline campaign.
    pub baseline: &'a ToggleActivity,
    /// Accumulated toggle activity of the suspect campaign.
    pub suspect: &'a ToggleActivity,
}

impl CellEvidence<'_> {
    /// Checks both activities cover at least one cycle (rates would
    /// otherwise be meaningless zeros).
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] on an empty activity.
    pub fn validate(&self) -> Result<(), TrustError> {
        if self.baseline.cycles() == 0 || self.suspect.cycles() == 0 {
            return Err(TrustError::InvalidParameter {
                what: "cell evidence needs at least one recorded cycle on both sides",
            });
        }
        Ok(())
    }
}

/// The per-cell feature vector behind a [`CellScore`] — the exact
/// inputs the learned attribution model trains on (see DESIGN.md §12
/// for the schema).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFeatures {
    /// Whitened margin of the cell's nearest sensor tile, normalized to
    /// the hottest tile (`[0, 1]`; 0 when the whole map is cold).
    pub tile_margin: f64,
    /// The cell's toggle rate in the suspect campaign
    /// (toggles / cycle).
    pub activity_rate: f64,
    /// Toggle-rate excess over the baseline campaign
    /// (suspect − baseline; negative when the cell quieted down).
    pub activity_excess: f64,
    /// `exp(−d/σ)` proximity to the anomaly centroid, with σ the tile
    /// pitch (0 when the campaign localized nothing).
    pub centroid_proximity: f64,
}

impl CellFeatures {
    /// Feature dimensionality.
    pub const DIMS: usize = 4;

    /// The features as a model-input row, in declaration order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.tile_margin,
            self.activity_rate,
            self.activity_excess,
            self.centroid_proximity,
        ]
    }
}

/// One cell's entry in the attribution ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// The cell in the netlist.
    pub cell: CellId,
    /// Gate kind of the cell.
    pub kind: CellKind,
    /// Full module path of the cell (`"trojan3/trigger"`, …).
    pub module: String,
    /// Top-level placement region the cell belongs to (`"aes"`,
    /// `"trojan1"`, …) — matches the [`RegionScore`] names.
    pub region: String,
    /// Placed location on the die, in µm.
    pub location_um: (f64, f64),
    /// The feature vector behind the score.
    pub features: CellFeatures,
    /// Suspicion score (higher = more suspect). The default combination
    /// multiplies positive activity excess with spatial weight;
    /// [`Attribution::rescore_cells`] replaces it with a learned
    /// model's probability.
    pub suspicion: f64,
}

/// The array's structured judgement of one suspect campaign: the tile
/// tier (heat map, centroid, alarm), the region tier (ranked
/// [`RegionScore`]s) and — when [`CellEvidence`] was supplied — the
/// cell tier (ranked [`CellScore`]s).
///
/// Replaces the ad-hoc `ArrayVerdict` + string-region surface; rankings
/// are stored sorted, metrics are methods on the result.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    heat: Vec<TileScore>,
    centroid_um: Option<(f64, f64)>,
    regions: Vec<RegionScore>,
    cells: Vec<CellScore>,
    alarmed: bool,
    consensus: Option<DetectorVerdict>,
}

impl Attribution {
    /// Assembles a result from already-ranked tiers (regions
    /// nearest-first as the [`Localizer`] emits them; cells are
    /// re-sorted here by descending suspicion).
    pub(crate) fn from_parts(
        heat: Vec<TileScore>,
        centroid_um: Option<(f64, f64)>,
        regions: Vec<RegionScore>,
        mut cells: Vec<CellScore>,
        alarmed: bool,
        consensus: Option<DetectorVerdict>,
    ) -> Self {
        sort_cells(&mut cells);
        Self {
            heat,
            centroid_um,
            regions,
            cells,
            alarmed,
            consensus,
        }
    }

    /// Per-tile scores, in tile (row-major) order.
    pub fn heat(&self) -> &[TileScore] {
        &self.heat
    }

    /// Score-weighted centroid of the common-mode-removed heat map, in
    /// µm. `None` when no tile carries excess energy (clean campaign).
    pub fn centroid_um(&self) -> Option<(f64, f64)> {
        self.centroid_um
    }

    /// Whether the campaign is judged suspected.
    pub fn alarmed(&self) -> bool {
        self.alarmed
    }

    /// The cross-sensor consensus vote, on reference-free arrays.
    pub fn consensus(&self) -> Option<&DetectorVerdict> {
        self.consensus.as_ref()
    }

    /// Ranked regions, nearest-to-centroid first. Empty when the
    /// campaign is clean.
    pub fn regions(&self) -> impl Iterator<Item = &RegionScore> {
        self.regions.iter()
    }

    /// The ranked region slice (rank order).
    pub fn region_scores(&self) -> &[RegionScore] {
        &self.regions
    }

    /// Ranked cells, most suspect first. Empty unless the campaign was
    /// attributed with [`CellEvidence`].
    pub fn cells(&self) -> impl Iterator<Item = &CellScore> {
        self.cells.iter()
    }

    /// The ranked cell slice (rank order).
    pub fn cell_scores(&self) -> &[CellScore] {
        &self.cells
    }

    /// The top `k` cells of the ranking.
    pub fn top_cells(&self, k: usize) -> &[CellScore] {
        &self.cells[..k.min(self.cells.len())]
    }

    /// The arg-max region — the localization's best guess.
    pub fn top_region(&self) -> Option<&str> {
        self.regions.first().map(|r| r.region.as_str())
    }

    /// Zero-based rank of `region` in the localization (0 = best).
    pub fn region_rank(&self, region: &str) -> Option<usize> {
        self.regions.iter().position(|r| r.region == region)
    }

    /// Whether `region` ranks within the top `k` (`hit@k`).
    pub fn hit_at(&self, region: &str, k: usize) -> bool {
        self.region_rank(region).is_some_and(|r| r < k)
    }

    /// Replaces every cell's suspicion with `score(features)` and
    /// re-ranks — the hook the learned attribution model plugs into.
    pub fn rescore_cells(&mut self, mut score: impl FnMut(&CellScore) -> f64) {
        for c in &mut self.cells {
            c.suspicion = score(c);
        }
        sort_cells(&mut self.cells);
    }

    /// Ranked truth labels: `truth(cell)` per cell, in rank order.
    fn ranked_truth(&self, truth: &mut impl FnMut(&CellScore) -> bool) -> Vec<bool> {
        self.cells.iter().map(truth).collect()
    }

    /// Precision@k of the cell ranking against a truth predicate.
    pub fn precision_at(&self, k: usize, mut truth: impl FnMut(&CellScore) -> bool) -> f64 {
        precision_at_k(&self.ranked_truth(&mut truth), k)
    }

    /// Recall@k of the cell ranking against a truth predicate.
    pub fn recall_at(&self, k: usize, mut truth: impl FnMut(&CellScore) -> bool) -> f64 {
        recall_at_k(&self.ranked_truth(&mut truth), k)
    }

    /// AUROC of the cell suspicion scores against a truth predicate
    /// (`None` when the truth is single-class).
    pub fn auroc(&self, mut truth: impl FnMut(&CellScore) -> bool) -> Option<f64> {
        let labels = self.ranked_truth(&mut truth);
        let scores: Vec<f64> = self.cells.iter().map(|c| c.suspicion).collect();
        auroc(&scores, &labels)
    }

    /// IoU (Jaccard) of the top-`|truth|` cells against the truth set —
    /// the natural operating point where predicted and true set sizes
    /// match.
    pub fn iou(&self, mut truth: impl FnMut(&CellScore) -> bool) -> f64 {
        let labels = self.ranked_truth(&mut truth);
        let k = labels.iter().filter(|&&l| l).count();
        iou_at_k(&labels, k)
    }
}

/// Descending suspicion, with the cell id as a total tie-break so the
/// ranking is deterministic.
fn sort_cells(cells: &mut [CellScore]) {
    cells.sort_by(|a, b| {
        b.suspicion
            .total_cmp(&a.suspicion)
            .then_with(|| a.cell.index().cmp(&b.cell.index()))
    });
}

/// Precision@k over ranked truth labels (`ranked_truth[i]` = whether
/// the rank-`i` item is truly positive). The denominator is the
/// *effective* k (`min(k, len)`); 0.0 when `k` is zero or the ranking
/// is empty.
pub fn precision_at_k(ranked_truth: &[bool], k: usize) -> f64 {
    let k = k.min(ranked_truth.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked_truth[..k].iter().filter(|&&t| t).count();
    hits as f64 / k as f64
}

/// Recall@k over ranked truth labels: the fraction of true positives
/// ranked within the top `k`. 0.0 when the truth set is empty.
pub fn recall_at_k(ranked_truth: &[bool], k: usize) -> f64 {
    let total = ranked_truth.iter().filter(|&&t| t).count();
    if total == 0 {
        return 0.0;
    }
    let k = k.min(ranked_truth.len());
    let hits = ranked_truth[..k].iter().filter(|&&t| t).count();
    hits as f64 / total as f64
}

/// IoU (Jaccard index) of the top-`k` set against the truth set over
/// ranked truth labels. 0.0 when both sets are empty.
pub fn iou_at_k(ranked_truth: &[bool], k: usize) -> f64 {
    let total = ranked_truth.iter().filter(|&&t| t).count();
    let k = k.min(ranked_truth.len());
    let hits = ranked_truth[..k].iter().filter(|&&t| t).count();
    let union = total + k - hits;
    if union == 0 {
        return 0.0;
    }
    hits as f64 / union as f64
}

/// AUROC via the rank-sum (Mann–Whitney) estimator with average ranks
/// for ties — exactly the probability a random positive outscores a
/// random negative, ties counted half.
///
/// `None` when the slices mismatch, are empty, or the truth is
/// single-class (the metric is undefined there, not zero).
pub fn auroc(scores: &[f64], truth: &[bool]) -> Option<f64> {
    if scores.len() != truth.len() || scores.is_empty() {
        return None;
    }
    if scores.iter().any(|s| !s.is_finite()) {
        return None;
    }
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average 1-based ranks within tie groups, accumulating the
    // positives' rank sum.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if truth[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    Some((rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg as f64))
}

/// Scores every placed cell from the tile heat map and the toggle
/// evidence. Rank order is finalized by [`Attribution::from_parts`].
pub(crate) fn score_cells(
    netlist: &Netlist,
    floorplan: &Floorplan,
    tile_centers: &[(f64, f64)],
    heat: &[TileScore],
    centroid_um: Option<(f64, f64)>,
    evidence: &CellEvidence<'_>,
) -> Result<Vec<CellScore>, TrustError> {
    evidence.validate()?;
    let locations = floorplan.locations();
    if locations.len() != netlist.cell_count() {
        return Err(TrustError::InvalidParameter {
            what: "floorplan does not cover the netlist",
        });
    }

    // Whitened tile margins, normalized to the hottest tile.
    let margins: Vec<f64> = heat.iter().map(|h| h.margin).collect();
    let whitened = Localizer::whiten(&margins);
    let max_w = whitened.iter().copied().fold(0.0_f64, f64::max);
    let tile_weight: Vec<f64> = whitened
        .iter()
        .map(|&w| if max_w > 0.0 { w / max_w } else { 0.0 })
        .collect();

    // Proximity length scale: the mean nearest-neighbour tile pitch
    // (a single-tile array has no pitch; proximity saturates at 1).
    let pitch = mean_nearest_distance(tile_centers);

    let mut cells = Vec::with_capacity(netlist.cell_count());
    for (id, cell) in netlist.cells() {
        let loc = locations[id.index()];
        let tile = nearest_index(tile_centers, (loc.x, loc.y));
        let suspect_rate = evidence.suspect.rate_at(id.index());
        let excess = suspect_rate - evidence.baseline.rate_at(id.index());
        let proximity = match (centroid_um, pitch) {
            (Some((cx, cy)), Some(p)) if p > 0.0 => {
                let d = ((loc.x - cx).powi(2) + (loc.y - cy).powi(2)).sqrt();
                (-d / p).exp()
            }
            (Some(_), _) => 1.0,
            (None, _) => 0.0,
        };
        let features = CellFeatures {
            tile_margin: tile.map_or(0.0, |t| tile_weight[t]),
            activity_rate: suspect_rate,
            activity_excess: excess,
            centroid_proximity: proximity,
        };
        // Default heuristic: a cell is suspect when it toggles more than
        // its baseline says it should, weighted up when the EM excess
        // points at it. The floor keeps pure activity evidence alive on
        // a cold map (and vice versa the spatial term never resurrects a
        // cell with zero excess — a supply-wide leak moves no toggles).
        let spatial = 0.5 * features.tile_margin + 0.5 * features.centroid_proximity;
        let suspicion = excess.max(0.0) * (0.25 + spatial);
        let module = netlist.module_path(cell.module()).to_string();
        let region = match module.split('/').next() {
            Some(tag) if !tag.is_empty() => tag.to_string(),
            _ => "aes".to_string(),
        };
        cells.push(CellScore {
            cell: id,
            kind: cell.kind(),
            module,
            region,
            location_um: (loc.x, loc.y),
            features,
            suspicion,
        });
    }
    Ok(cells)
}

/// Index of the nearest point to `p` (`None` on an empty set).
fn nearest_index(points: &[(f64, f64)], p: (f64, f64)) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in points.iter().enumerate() {
        let d2 = (c.0 - p.0).powi(2) + (c.1 - p.1).powi(2);
        if best.is_none_or(|(_, b)| d2 < b) {
            best = Some((i, d2));
        }
    }
    best.map(|(i, _)| i)
}

/// Mean nearest-neighbour distance (`None` below two points).
fn mean_nearest_distance(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let mut sum = 0.0;
    for (i, a) in points.iter().enumerate() {
        let mut best = f64::INFINITY;
        for (j, b) in points.iter().enumerate() {
            if i != j {
                let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
                best = best.min(d);
            }
        }
        sum += best;
    }
    Some(sum / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_and_recall_at_k() {
        let ranked = [true, false, true, false, false, true];
        assert!((precision_at_k(&ranked, 1) - 1.0).abs() < 1e-12);
        assert!((precision_at_k(&ranked, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, 3) - 2.0 / 3.0).abs() < 1e-12);
        // k past the end clamps to the effective length.
        assert!((precision_at_k(&ranked, 100) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&ranked, 0), 0.0);
        assert_eq!(precision_at_k(&[], 5), 0.0);

        assert!((recall_at_k(&ranked, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&ranked, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&ranked, 6) - 1.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&[false, false], 2), 0.0);
    }

    #[test]
    fn iou_matches_hand_computation() {
        let ranked = [true, false, true, false, false, true];
        // top-3 = {0,1,2}, truth = {0,2,5}: ∩ = 2, ∪ = 4.
        assert!((iou_at_k(&ranked, 3) - 0.5).abs() < 1e-12);
        // Perfect top-k.
        assert!((iou_at_k(&[true, true, false], 2) - 1.0).abs() < 1e-12);
        assert_eq!(iou_at_k(&[], 0), 0.0);
        assert_eq!(iou_at_k(&[false], 0), 0.0);
    }

    #[test]
    fn auroc_handles_separation_ties_and_degeneracy() {
        // Perfect separation.
        let s = [0.9, 0.8, 0.2, 0.1];
        let t = [true, true, false, false];
        assert!((auroc(&s, &t).unwrap() - 1.0).abs() < 1e-12);
        // Perfectly wrong.
        let t_inv = [false, false, true, true];
        assert!((auroc(&s, &t_inv).unwrap() - 0.0).abs() < 1e-12);
        // All tied: chance.
        assert!((auroc(&[0.5; 4], &t).unwrap() - 0.5).abs() < 1e-12);
        // One positive mid-pack: AUROC = fraction of negatives below.
        let s2 = [0.1, 0.4, 0.3, 0.9];
        let t2 = [false, true, false, false];
        assert!((auroc(&s2, &t2).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        // Degenerate inputs.
        assert!(auroc(&[], &[]).is_none());
        assert!(auroc(&[1.0], &[true]).is_none());
        assert!(auroc(&[1.0, 2.0], &[true]).is_none());
        assert!(auroc(&[f64::NAN, 2.0], &[true, false]).is_none());
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(nearest_index(&[], (0.0, 0.0)), None);
        let pts = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        assert_eq!(nearest_index(&pts, (1.0, 1.0)), Some(0));
        assert_eq!(nearest_index(&pts, (9.0, 1.0)), Some(1));
        assert_eq!(mean_nearest_distance(&pts[..1]), None);
        let p = mean_nearest_distance(&pts).unwrap();
        assert!((p - 10.0).abs() < 1e-12);
    }
}
