//! Prior-art comparison bench: global power fingerprinting.
//!
//! (Formerly the `baseline` module — renamed so the [`crate::baseline`]
//! contract, which decides where a detector's notion of "normal" comes
//! from, owns that name. This module is the Agrawal-style *power*
//! baseline the paper compares against.)
//!
//! The side-channel prior art the paper positions itself against
//! (Agrawal et al., "Trojan detection using IC fingerprinting", S&P 2007
//! — reference \[3\]) measures the chip's *total supply current* and
//! fingerprints it, with no spatial information. This module implements
//! that baseline over the same substrate so the two approaches can be
//! compared head to head:
//!
//! - the EM sensor sees `Σ_c k_c·dI_c/dt` — per-cell currents weighted by
//!   *where* they flow, with the spiral's strong spatial kernel,
//! - the power baseline sees `Σ_c I_c` — everything summed into one
//!   terminal, plus the (proportionally larger) supply-network noise.
//!
//! Because the Trojan strip sits at the die edge where the spiral still
//! couples well but the power measurement dilutes it into the full-chip
//! current, and because a VDD pin measurement carries regulator/board
//! noise, the EM sensor retains margin where the baseline thins out.

use crate::acquisition::{Stimulus, TraceSet};
use crate::TrustError;
use emtrust_aes::netlist::run_encryption_with;
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_trojan::{ProtectedChip, TrojanKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurement noise on the global supply-current sense path, as a
/// fraction of the golden trace's RMS current. Board-level current
/// sensing (shunt + amplifier across the VDD pin) is far noisier,
/// relatively, than the on-die sensor: board regulators, shared-plane
/// ripple and shunt-amplifier noise together sit around a tenth of the
/// dynamic current's scale.
pub const SUPPLY_SENSE_NOISE_FRACTION: f64 = 0.10;

/// Effective bandwidth of the VDD-pin measurement, hertz. The package
/// and decoupling network integrate the die's sub-nanosecond current
/// pulses before they reach the shunt — the physical reason global power
/// fingerprinting cannot see small fast radiators the way an on-die
/// sensor can.
pub const SUPPLY_SENSE_BANDWIDTH_HZ: f64 = 20e6;

/// A global power-fingerprinting bench over a [`ProtectedChip`].
#[derive(Debug)]
pub struct PowerBaseline<'c> {
    chip: &'c ProtectedChip,
    model: CurrentModel,
    noise_rms_a: f64,
}

impl<'c> PowerBaseline<'c> {
    /// Builds the baseline bench and calibrates its sense-path noise to
    /// the chip's golden current level.
    ///
    /// # Errors
    ///
    /// Propagates simulation/power-model errors from the calibration run.
    pub fn new(chip: &'c ProtectedChip) -> Result<Self, TrustError> {
        let model = CurrentModel::new(Library::generic_180nm(), ClockConfig::reference());
        let mut baseline = Self {
            chip,
            model,
            noise_rms_a: 0.0,
        };
        // Calibrate: one golden block sets the current scale.
        let golden =
            baseline.collect(*b"calibration-key!", Stimulus::Fixed([0; 16]), 1, None, 0)?;
        let rms = emtrust_dsp::stats::rms(&golden.traces()[0]);
        baseline.noise_rms_a = SUPPLY_SENSE_NOISE_FRACTION * rms;
        Ok(baseline)
    }

    /// The calibrated sense-path noise RMS in amperes.
    pub fn noise_rms_a(&self) -> f64 {
        self.noise_rms_a
    }

    /// Collects `n_traces` total-supply-current traces (amperes), one per
    /// encryption — the baseline's analogue of
    /// [`crate::acquisition::TestBench::collect_with`].
    ///
    /// # Errors
    ///
    /// Propagates simulation and power-model errors.
    pub fn collect(
        &self,
        key: [u8; 16],
        stimulus: Stimulus,
        n_traces: usize,
        armed: Option<TrojanKind>,
        seed: u64,
    ) -> Result<TraceSet, TrustError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noise_rng = StdRng::seed_from_u64(seed ^ 0x0b5e);
        let mut sim = self.chip.simulator()?;
        self.chip.disarm_all(&mut sim);
        if let Some(kind) = armed {
            self.chip.arm(&mut sim, kind, true);
        }
        let warmup: [u8; 16] = match stimulus {
            Stimulus::Fixed(block) => block,
            Stimulus::RandomPerTrace => rng.gen(),
        };
        let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, warmup, |_| {});
        let mut traces = Vec::with_capacity(n_traces);
        for _ in 0..n_traces {
            let pt: [u8; 16] = match stimulus {
                Stimulus::Fixed(block) => block,
                Stimulus::RandomPerTrace => rng.gen(),
            };
            sim.start_recording();
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, pt, |_| {});
            let activity = sim.take_recording();
            let trace = self
                .model
                .synthesize(self.chip.netlist(), &activity, None, None)
                .map_err(emtrust_em::EmError::from)?;
            let mut samples = trace.into_samples();
            // Package/decap low-pass, then sense noise.
            let fs = self.model.clock().sample_rate_hz();
            let rc = 1.0 / (2.0 * std::f64::consts::PI * SUPPLY_SENSE_BANDWIDTH_HZ);
            let alpha = (1.0 / fs) / (rc + 1.0 / fs);
            let mut state = samples.first().copied().unwrap_or(0.0);
            for s in samples.iter_mut() {
                state += alpha * (*s - state);
                *s = state + self.noise_rms_a * gaussian(&mut noise_rng);
            }
            traces.push(samples);
        }
        TraceSet::new(traces, self.model.clock().sample_rate_hz())
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};

    const KEY: [u8; 16] = *b"baseline-key-123";
    const STIM: Stimulus = Stimulus::Fixed(*b"baseline-block-1");

    #[test]
    fn baseline_collects_current_traces() {
        let chip = ProtectedChip::golden();
        let baseline = PowerBaseline::new(&chip).unwrap();
        let set = baseline.collect(KEY, STIM, 2, None, 1).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.traces()[0].len(), 12 * 64);
        // Currents are milliampere-class, positive on average.
        let mean = emtrust_dsp::stats::mean(&set.traces()[0]);
        assert!(mean > 0.0, "mean supply current must be positive");
        assert!(baseline.noise_rms_a() > 0.0);
    }

    #[test]
    fn power_baseline_catches_the_power_hog_but_misses_the_stealthy_leaker() {
        // The paper's motivation: modern Trojans are "small enough to
        // evade power consumption based fingerprinting". The global
        // power baseline must catch T4 (a deliberate power hog) yet lose
        // T3 (the stealthy CDMA leaker) — which the EM framework still
        // flags (see E3: 81-88% per-trace rate on-chip).
        use crate::acquisition::TestBench;
        use emtrust_silicon::Channel;
        let chip = ProtectedChip::with_all_trojans();

        let baseline = PowerBaseline::new(&chip).unwrap();
        let cfg = FingerprintConfig {
            pca_components: None,
            ..FingerprintConfig::default()
        };
        let golden = baseline.collect(KEY, STIM, 12, None, 2).unwrap();
        let fp = GoldenFingerprint::fit(&golden, cfg).unwrap();
        let margin = |kind| {
            let armed = baseline.collect(KEY, STIM, 8, Some(kind), 3).unwrap();
            fp.centroid_distance(&armed).unwrap() / fp.threshold()
        };
        let t4 = margin(TrojanKind::T4PowerDegrader);
        let t3 = margin(TrojanKind::T3CdmaLeaker);
        assert!(t4 > 1.0, "power baseline must catch T4 ({t4:.2})");
        assert!(
            t3 < 2.0 && t3 < t4 / 3.0,
            "power baseline must be marginal on T3 (t3 {t3:.2}, t4 {t4:.2})"
        );

        // The EM sensor's per-trace alarms still catch T3.
        let bench = TestBench::simulation(&chip).unwrap();
        let golden_em = bench
            .collect_with(KEY, STIM, 16, None, Channel::OnChipSensor, 2)
            .unwrap();
        let fp_em = GoldenFingerprint::fit(&golden_em, cfg).unwrap();
        let armed_em = bench
            .collect_with(
                KEY,
                STIM,
                8,
                Some(TrojanKind::T3CdmaLeaker),
                Channel::OnChipSensor,
                3,
            )
            .unwrap();
        let over = fp_em
            .set_distances(&armed_em)
            .unwrap()
            .into_iter()
            .filter(|&d| d > fp_em.threshold())
            .count();
        assert!(
            over * 2 >= 8,
            "EM sensor must flag the majority of T3 traces ({over}/8)"
        );
    }

    #[test]
    fn baseline_misses_the_leakage_channel() {
        // T2's *leakage* channel is a DC effect buried in the supply
        // noise; the power baseline's per-trace verdicts should be far
        // weaker on T3 (tiny radiator) than on T4.
        let chip = ProtectedChip::with_all_trojans();
        let baseline = PowerBaseline::new(&chip).unwrap();
        let cfg = FingerprintConfig {
            pca_components: None,
            ..FingerprintConfig::default()
        };
        let golden = baseline.collect(KEY, STIM, 12, None, 5).unwrap();
        let fp = GoldenFingerprint::fit(&golden, cfg).unwrap();
        let d3 = fp
            .centroid_distance(
                &baseline
                    .collect(KEY, STIM, 8, Some(TrojanKind::T3CdmaLeaker), 6)
                    .unwrap(),
            )
            .unwrap();
        let d4 = fp
            .centroid_distance(
                &baseline
                    .collect(KEY, STIM, 8, Some(TrojanKind::T4PowerDegrader), 6)
                    .unwrap(),
            )
            .unwrap();
        assert!(d4 > 3.0 * d3, "T4 ({d4:.3}) must dwarf T3 ({d3:.3})");
    }

    #[test]
    fn deterministic_per_seed() {
        let chip = ProtectedChip::golden();
        let baseline = PowerBaseline::new(&chip).unwrap();
        let a = baseline.collect(KEY, STIM, 1, None, 9).unwrap();
        let b = baseline.collect(KEY, STIM, 1, None, 9).unwrap();
        let c = baseline.collect(KEY, STIM, 1, None, 10).unwrap();
        assert_eq!(a.traces(), b.traces());
        assert_ne!(a.traces(), c.traces());
    }
}
