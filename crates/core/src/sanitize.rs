//! Trace sanitization: measurement-quality screening before scoring.
//!
//! The monitor runs post-deployment for the chip's whole lifetime, so
//! the scoring path must assume the sensor channel *will* eventually
//! misbehave — a saturated ADC, a dropped transfer window, a dead
//! channel. Scoring such a trace would not crash, but worse: its inflated
//! Euclidean distance masquerades as a Trojan detection. The sanitizer
//! classifies each trace **before** it reaches the fingerprint:
//!
//! - [`TraceVerdict::Clean`] — scored normally;
//! - [`TraceVerdict::Degraded`] — scored, but flagged (mild defects);
//! - [`TraceVerdict::Rejected`] — excluded from scoring *and* from
//!   [`alarm_rate`](crate::TrustMonitor::alarm_rate) bookkeeping, and
//!   fed to the sensor-health state machine instead.
//!
//! Every check is a pure function of the samples (plus the optional
//! golden energy ratio), so sanitized runs replay deterministically.

/// A concrete defect the sanitizer can attribute to a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceDefect {
    /// The trace carries no samples at all.
    Empty,
    /// NaN or ±Inf samples (corrupted transfer, uninitialized memory).
    NonFinite {
        /// Number of non-finite samples.
        count: usize,
    },
    /// The trace length does not match the fingerprint's fit length.
    WrongLength {
        /// Expected sample count.
        expected: usize,
        /// Observed sample count.
        actual: usize,
    },
    /// The window's sample rate does not match the golden spectrum's.
    SampleRateMismatch {
        /// Expected rate in hertz.
        expected_hz: f64,
        /// Observed rate in hertz.
        actual_hz: f64,
    },
    /// Many samples pinned exactly at the extreme values — ADC clipping.
    Saturated {
        /// Fraction of samples at the positive or negative extreme.
        pinned_fraction: f64,
    },
    /// Every sample holds one value — a dead sensor channel.
    Flatline,
    /// A long run of identical consecutive samples — dropout or a
    /// partially dead channel.
    DeadSamples {
        /// Length of the longest identical run.
        longest_run: usize,
    },
    /// Crest factor (peak / RMS) far beyond the physical waveform's —
    /// glitch bursts or ESD spikes.
    GlitchSuspected {
        /// Observed crest factor.
        crest_factor: f64,
    },
    /// The trace's energy is implausibly far from the golden scale —
    /// amplifier gain fault, not circuit activity.
    EnergyOutOfRange {
        /// Energy ratio relative to the golden fit scale.
        ratio: f64,
    },
    /// The samples never approach zero — a stuck ADC bit or a biased
    /// front-end (a faithful EM trace crosses zero constantly).
    StuckRange {
        /// Smallest |sample| relative to the peak.
        floor_ratio: f64,
    },
    /// Adjacent samples repeat bit-identically far beyond chance — a
    /// jittering sampling clock re-reads held values (a continuous-valued
    /// channel essentially never emits the exact same value twice in a
    /// row).
    RepeatedSamples {
        /// Fraction of adjacent sample pairs that are bit-identical.
        duplicate_fraction: f64,
    },
    /// Scoring failed for a reason the structural checks could not
    /// anticipate (forwarded per-trace evaluation error).
    EvaluationFailed,
}

impl TraceDefect {
    /// Stable snake_case label (telemetry fields, JSON artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            TraceDefect::Empty => "empty",
            TraceDefect::NonFinite { .. } => "non_finite",
            TraceDefect::WrongLength { .. } => "wrong_length",
            TraceDefect::SampleRateMismatch { .. } => "sample_rate_mismatch",
            TraceDefect::Saturated { .. } => "saturated",
            TraceDefect::Flatline => "flatline",
            TraceDefect::DeadSamples { .. } => "dead_samples",
            TraceDefect::GlitchSuspected { .. } => "glitch_suspected",
            TraceDefect::EnergyOutOfRange { .. } => "energy_out_of_range",
            TraceDefect::StuckRange { .. } => "stuck_range",
            TraceDefect::RepeatedSamples { .. } => "repeated_samples",
            TraceDefect::EvaluationFailed => "evaluation_failed",
        }
    }
}

/// The sanitizer's classification of one trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceVerdict {
    /// No defect found; scored normally.
    Clean,
    /// Mild defects; scored, but flagged and counted.
    Degraded {
        /// Every mild defect found, in check order.
        reasons: Vec<TraceDefect>,
    },
    /// Severe defect; excluded from scoring and alarm bookkeeping.
    Rejected {
        /// The first severe defect found.
        reason: TraceDefect,
    },
}

impl TraceVerdict {
    /// Whether the trace was rejected.
    pub fn is_rejected(&self) -> bool {
        matches!(self, TraceVerdict::Rejected { .. })
    }

    /// Whether the trace is clean.
    pub fn is_clean(&self) -> bool {
        matches!(self, TraceVerdict::Clean)
    }

    /// Whether the trace is degraded (scored but flagged).
    pub fn is_degraded(&self) -> bool {
        matches!(self, TraceVerdict::Degraded { .. })
    }

    /// Stable label for telemetry and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            TraceVerdict::Clean => "clean",
            TraceVerdict::Degraded { .. } => "degraded",
            TraceVerdict::Rejected { .. } => "rejected",
        }
    }
}

/// Thresholds for the structural checks.
///
/// The defaults are calibrated against the simulated EM substrate: clean
/// traces (impulsive per-edge spikes, crest factor well under 12, unique
/// float values, zero crossings every cycle) classify `Clean`, while the
/// `emtrust::faults` taxonomy at its default intensity trips the matching
/// detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanitizerConfig {
    /// Required trace length (`None` = any; the monitor fills this from
    /// the fingerprint's fit length).
    pub expected_len: Option<usize>,
    /// Reject when at least this fraction of samples sits exactly at the
    /// positive/negative extreme value…
    pub saturation_reject_fraction: f64,
    /// …and at least this many samples are pinned. Continuous-valued
    /// measurements repeat their exact extreme essentially never (a clean
    /// trace pins exactly two samples: its own min and max), while a
    /// clipped impulsive trace pins every spike tip — so the count, not
    /// the run length, is the discriminator.
    pub saturation_min_pinned: usize,
    /// Degrade when the longest identical-sample run exceeds this
    /// fraction of the trace.
    pub dead_run_degrade_fraction: f64,
    /// Reject when the longest identical-sample run exceeds this
    /// fraction of the trace.
    pub dead_run_reject_fraction: f64,
    /// Degrade when the crest factor exceeds this.
    pub crest_degrade: f64,
    /// Reject when the crest factor exceeds this.
    pub crest_reject: f64,
    /// Reject when the smallest |sample| exceeds this fraction of the
    /// peak (samples never approach zero: stuck ADC bit / bias fault).
    /// A faithful EM trace rings down toward zero between switching
    /// edges, so its floor sits orders of magnitude under the peak; the
    /// stuck-bit fault model pins the floor at ≥ 3 % of the peak.
    pub zero_floor_ratio: f64,
    /// Reject when at least this fraction of adjacent sample pairs is
    /// bit-identical. Dropout and flatline are caught by the run checks
    /// first; what this screen isolates is *scattered* repetition — the
    /// clock-jitter signature (≥ 16 % of pairs at every sweep intensity,
    /// vs. exactly zero on a clean continuous-valued trace).
    pub duplicate_reject_fraction: f64,
    /// Accept only energy ratios (trace feature norm / golden scale)
    /// inside these bounds (`None` disables the screen).
    pub energy_bounds: Option<(f64, f64)>,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        Self {
            expected_len: None,
            saturation_reject_fraction: 0.01,
            saturation_min_pinned: 4,
            dead_run_degrade_fraction: 1.0 / 64.0,
            dead_run_reject_fraction: 1.0 / 16.0,
            crest_degrade: 12.0,
            crest_reject: 20.0,
            zero_floor_ratio: 0.02,
            duplicate_reject_fraction: 0.05,
            energy_bounds: None,
        }
    }
}

/// The trace-quality screen (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSanitizer {
    config: SanitizerConfig,
}

impl TraceSanitizer {
    /// A sanitizer with the given thresholds.
    pub fn new(config: SanitizerConfig) -> Self {
        Self { config }
    }

    /// The thresholds in effect.
    pub fn config(&self) -> SanitizerConfig {
        self.config
    }

    /// Overrides the expected trace length (the monitor calls this with
    /// the fingerprint's fit length).
    pub fn with_expected_len(mut self, expected_len: usize) -> Self {
        self.config.expected_len = Some(expected_len);
        self
    }

    /// Classifies one trace from its samples alone (no golden context).
    pub fn inspect(&self, samples: &[f64]) -> TraceVerdict {
        self.inspect_scaled(samples, None)
    }

    /// Classifies one trace, additionally screening `energy_ratio`
    /// (trace feature norm relative to the golden scale) against the
    /// configured bounds when both are present.
    pub fn inspect_scaled(&self, samples: &[f64], energy_ratio: Option<f64>) -> TraceVerdict {
        let cfg = &self.config;
        let len = samples.len();
        if len == 0 {
            return TraceVerdict::Rejected {
                reason: TraceDefect::Empty,
            };
        }
        let non_finite = samples.iter().filter(|x| !x.is_finite()).count();
        if non_finite > 0 {
            return TraceVerdict::Rejected {
                reason: TraceDefect::NonFinite { count: non_finite },
            };
        }
        if let Some(expected) = cfg.expected_len {
            if len != expected {
                return TraceVerdict::Rejected {
                    reason: TraceDefect::WrongLength {
                        expected,
                        actual: len,
                    },
                };
            }
        }

        // One pass: extremes, energy, pinned counts/runs, identical runs.
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut min_abs = f64::INFINITY;
        let mut sum_sq = 0.0;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
            min_abs = min_abs.min(x.abs());
            sum_sq += x * x;
        }
        if min == max {
            return TraceVerdict::Rejected {
                reason: TraceDefect::Flatline,
            };
        }
        let mut longest_equal_run = 1usize;
        let mut equal_run = 1usize;
        let mut duplicates = 0usize;
        let mut pinned = 0usize;
        for (i, &x) in samples.iter().enumerate() {
            if i > 0 {
                if x == samples[i - 1] {
                    equal_run += 1;
                    duplicates += 1;
                } else {
                    equal_run = 1;
                }
                longest_equal_run = longest_equal_run.max(equal_run);
            }
            if x == min || x == max {
                pinned += 1;
            }
        }

        let run_frac = longest_equal_run as f64 / len as f64;
        if run_frac >= cfg.dead_run_reject_fraction {
            return TraceVerdict::Rejected {
                reason: TraceDefect::DeadSamples {
                    longest_run: longest_equal_run,
                },
            };
        }
        let pinned_fraction = pinned as f64 / len as f64;
        if pinned_fraction >= cfg.saturation_reject_fraction && pinned >= cfg.saturation_min_pinned
        {
            return TraceVerdict::Rejected {
                reason: TraceDefect::Saturated { pinned_fraction },
            };
        }
        let peak = min.abs().max(max.abs());
        let rms = (sum_sq / len as f64).sqrt();
        let crest = if rms > 0.0 { peak / rms } else { 0.0 };
        if crest >= cfg.crest_reject {
            return TraceVerdict::Rejected {
                reason: TraceDefect::GlitchSuspected {
                    crest_factor: crest,
                },
            };
        }
        if peak > 0.0 && min_abs > cfg.zero_floor_ratio * peak {
            return TraceVerdict::Rejected {
                reason: TraceDefect::StuckRange {
                    floor_ratio: min_abs / peak,
                },
            };
        }
        let duplicate_fraction = duplicates as f64 / (len - 1).max(1) as f64;
        if duplicate_fraction >= cfg.duplicate_reject_fraction {
            return TraceVerdict::Rejected {
                reason: TraceDefect::RepeatedSamples { duplicate_fraction },
            };
        }
        if let (Some((lo, hi)), Some(ratio)) = (cfg.energy_bounds, energy_ratio) {
            if ratio < lo || ratio > hi {
                return TraceVerdict::Rejected {
                    reason: TraceDefect::EnergyOutOfRange { ratio },
                };
            }
        }

        let mut reasons = Vec::new();
        if run_frac >= cfg.dead_run_degrade_fraction {
            reasons.push(TraceDefect::DeadSamples {
                longest_run: longest_equal_run,
            });
        }
        if crest >= cfg.crest_degrade {
            reasons.push(TraceDefect::GlitchSuspected {
                crest_factor: crest,
            });
        }
        if reasons.is_empty() {
            TraceVerdict::Clean
        } else {
            TraceVerdict::Degraded { reasons }
        }
    }
}

impl Default for TraceSanitizer {
    fn default() -> Self {
        Self::new(SanitizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_trace() -> Vec<f64> {
        // Impulsive-ish waveform with noise: decaying spikes per "cycle".
        (0..768)
            .map(|i| {
                let phase = (i % 64) as f64;
                let spike = (-phase / 6.0).exp() * if (i / 64) % 2 == 0 { 1.0 } else { -1.0 };
                spike + 0.01 * ((i as f64 * 0.7371).sin())
            })
            .collect()
    }

    fn sanitizer() -> TraceSanitizer {
        TraceSanitizer::default()
    }

    #[test]
    fn clean_traces_pass() {
        assert_eq!(sanitizer().inspect(&clean_trace()), TraceVerdict::Clean);
    }

    #[test]
    fn empty_and_non_finite_and_wrong_length_reject() {
        let s = sanitizer();
        assert!(matches!(
            s.inspect(&[]),
            TraceVerdict::Rejected {
                reason: TraceDefect::Empty
            }
        ));
        let mut t = clean_trace();
        t[5] = f64::NAN;
        t[9] = f64::INFINITY;
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::NonFinite { count: 2 }
            }
        ));
        let s = s.with_expected_len(100);
        assert!(matches!(
            s.inspect(&clean_trace()),
            TraceVerdict::Rejected {
                reason: TraceDefect::WrongLength { expected: 100, .. }
            }
        ));
    }

    #[test]
    fn flatline_and_dead_runs_reject() {
        let s = sanitizer();
        assert!(matches!(
            s.inspect(&[0.25; 512]),
            TraceVerdict::Rejected {
                reason: TraceDefect::Flatline
            }
        ));
        let mut t = clean_trace();
        let n = t.len();
        for x in &mut t[100..100 + n / 8] {
            *x = 0.0;
        }
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::DeadSamples { .. }
            }
        ));
    }

    #[test]
    fn short_dead_runs_only_degrade() {
        let s = sanitizer();
        let mut t = clean_trace();
        let run = t.len() / 32; // between degrade (1/64) and reject (1/16)
        for x in &mut t[200..200 + run] {
            *x = 0.0;
        }
        match s.inspect(&t) {
            TraceVerdict::Degraded { reasons } => {
                assert!(matches!(reasons[0], TraceDefect::DeadSamples { .. }));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn clipping_rejects_as_saturated() {
        let s = sanitizer();
        let mut t = clean_trace();
        let peak = t.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let clip = 0.5 * peak;
        for x in &mut t {
            *x = x.clamp(-clip, clip);
        }
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::Saturated { .. }
            }
        ));
    }

    #[test]
    fn glitch_spikes_reject_on_crest_factor() {
        let s = sanitizer();
        let mut t = clean_trace();
        let peak = t.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        t[300] = 40.0 * peak;
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::GlitchSuspected { .. }
            }
        ));
    }

    #[test]
    fn biased_baseline_rejects_as_stuck_range() {
        let s = sanitizer();
        let t: Vec<f64> = clean_trace()
            .iter()
            .map(|x| x.signum() * (x.abs() + 0.2))
            .collect();
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::StuckRange { .. }
            }
        ));
    }

    #[test]
    fn scattered_repeats_reject_as_repeated_samples() {
        let s = sanitizer();
        // Jitter model: every few samples re-read the held previous value.
        let mut t = clean_trace();
        for i in (1..t.len()).step_by(8) {
            t[i] = t[i - 1];
        }
        assert!(matches!(
            s.inspect(&t),
            TraceVerdict::Rejected {
                reason: TraceDefect::RepeatedSamples { .. }
            }
        ));
    }

    #[test]
    fn energy_screen_uses_the_provided_ratio() {
        let cfg = SanitizerConfig {
            energy_bounds: Some((0.5, 2.0)),
            ..SanitizerConfig::default()
        };
        let s = TraceSanitizer::new(cfg);
        let t = clean_trace();
        assert_eq!(s.inspect_scaled(&t, Some(1.0)), TraceVerdict::Clean);
        assert!(matches!(
            s.inspect_scaled(&t, Some(3.0)),
            TraceVerdict::Rejected {
                reason: TraceDefect::EnergyOutOfRange { .. }
            }
        ));
        // No ratio supplied: the screen cannot fire.
        assert_eq!(s.inspect_scaled(&t, None), TraceVerdict::Clean);
    }

    #[test]
    fn defect_labels_are_stable() {
        assert_eq!(TraceDefect::Empty.label(), "empty");
        assert_eq!(TraceDefect::Flatline.label(), "flatline");
        assert_eq!(
            TraceDefect::Saturated {
                pinned_fraction: 0.5
            }
            .label(),
            "saturated"
        );
        assert_eq!(TraceVerdict::Clean.label(), "clean");
        assert_eq!(
            TraceVerdict::Rejected {
                reason: TraceDefect::Empty
            }
            .label(),
            "rejected"
        );
    }
}
