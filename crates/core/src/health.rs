//! Sensor-health state machine: graceful degradation under faults.
//!
//! The sanitizer (see [`crate::sanitize`]) classifies individual traces;
//! this module aggregates those per-trace outcomes into a slow-moving
//! judgement about the *sensor channel itself*. A single rejected trace
//! is noise; a sustained rejection rate is a hardware condition the
//! operator must know about — and one that must not silently inflate the
//! Trojan alarm rate.
//!
//! The tracker keeps an exponentially weighted moving average of the
//! rejection indicator and walks a three-state machine:
//!
//! ```text
//!              rate > degrade_above            rate > fault_above
//!   Healthy ─────────────────────▶ Degraded ─────────────────────▶ SensorFault
//!      ▲                              │ ▲                              │
//!      └──────────────────────────────┘ └──────────────────────────────┘
//!              rate < recover_below         rate < degrade_above
//! ```
//!
//! Transitions only ever move to an **adjacent** state, and recovery
//! thresholds sit below their escalation counterparts (hysteresis), so a
//! rate hovering at a boundary cannot flap the state every observation.

use emtrust_telemetry::{self as telemetry, FieldValue};

/// The channel-level health judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorHealth {
    /// Rejection rate near zero; trust verdicts are fully credible.
    Healthy,
    /// Elevated rejection rate; verdicts still produced but suspect.
    Degraded,
    /// Rejection rate so high the channel is effectively down; trust
    /// evaluation on it should be considered unavailable.
    SensorFault,
}

impl SensorHealth {
    /// Stable snake_case label (telemetry fields, JSON artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            SensorHealth::Healthy => "healthy",
            SensorHealth::Degraded => "degraded",
            SensorHealth::SensorFault => "sensor_fault",
        }
    }

    /// Whether the channel needs operator follow-up: `Degraded` and
    /// `SensorFault` chips carry evidence an overload policy must not
    /// discard (the fleet's shed-newest rule exempts them).
    pub fn needs_followup(&self) -> bool {
        !matches!(self, SensorHealth::Healthy)
    }
}

/// EWMA and hysteresis thresholds for [`HealthTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
    /// Escalate `Healthy → Degraded` above this rejection rate.
    pub degrade_above: f64,
    /// Escalate `Degraded → SensorFault` above this rejection rate.
    pub fault_above: f64,
    /// Recover `Degraded → Healthy` below this rejection rate
    /// (hysteresis: strictly below `degrade_above`).
    pub recover_below: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            degrade_above: 0.35,
            fault_above: 0.75,
            recover_below: 0.1,
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Index of the observation (0-based) that triggered the change.
    pub observation: u64,
    /// State before.
    pub from: SensorHealth,
    /// State after (always adjacent to `from`).
    pub to: SensorHealth,
}

/// Aggregates per-trace rejection outcomes into a [`SensorHealth`]
/// judgement (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTracker {
    config: HealthConfig,
    rate: f64,
    state: SensorHealth,
    observations: u64,
    consecutive_rejections: u64,
    transitions: Vec<HealthTransition>,
}

impl HealthTracker {
    /// A tracker starting `Healthy` with a zero rejection rate.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            rate: 0.0,
            state: SensorHealth::Healthy,
            observations: 0,
            consecutive_rejections: 0,
            transitions: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Current health state.
    pub fn state(&self) -> SensorHealth {
        self.state
    }

    /// Current smoothed rejection rate in `[0, 1]`.
    pub fn rejection_rate(&self) -> f64 {
        self.rate
    }

    /// Observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Length of the current unbroken run of rejected observations
    /// (reset to zero by any accepted trace). The fleet's per-chip
    /// circuit breaker trips on this — it reacts to a hard failure
    /// burst faster than the smoothed EWMA rate can.
    pub fn consecutive_rejections(&self) -> u64 {
        self.consecutive_rejections
    }

    /// Every state change so far, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// The most recent state change, if any occurred yet.
    pub fn last_transition(&self) -> Option<&HealthTransition> {
        self.transitions.last()
    }

    /// Feeds one trace outcome (`rejected` = the sanitizer excluded it)
    /// and returns the possibly-updated state.
    pub fn observe(&mut self, rejected: bool) -> SensorHealth {
        let x = if rejected { 1.0 } else { 0.0 };
        if rejected {
            self.consecutive_rejections += 1;
        } else {
            self.consecutive_rejections = 0;
        }
        self.rate += self.config.alpha * (x - self.rate);
        let next = match self.state {
            SensorHealth::Healthy if self.rate > self.config.degrade_above => {
                SensorHealth::Degraded
            }
            SensorHealth::Degraded if self.rate > self.config.fault_above => {
                SensorHealth::SensorFault
            }
            SensorHealth::Degraded if self.rate < self.config.recover_below => {
                SensorHealth::Healthy
            }
            SensorHealth::SensorFault if self.rate < self.config.degrade_above => {
                SensorHealth::Degraded
            }
            current => current,
        };
        if next != self.state {
            let transition = HealthTransition {
                observation: self.observations,
                from: self.state,
                to: next,
            };
            self.transitions.push(transition);
            telemetry::counter("monitor.health_transitions", 1);
            telemetry::event(
                "sensor_health",
                &[
                    ("from", FieldValue::from(transition.from.label())),
                    ("to", FieldValue::from(transition.to.label())),
                    ("rejection_rate", FieldValue::F64(self.rate)),
                    ("observation", FieldValue::U64(transition.observation)),
                ],
            );
            self.state = next;
        }
        self.observations += 1;
        self.state
    }
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacent(a: SensorHealth, b: SensorHealth) -> bool {
        !matches!(
            (a, b),
            (SensorHealth::Healthy, SensorHealth::SensorFault)
                | (SensorHealth::SensorFault, SensorHealth::Healthy)
        )
    }

    #[test]
    fn starts_healthy_and_stays_healthy_on_clean_stream() {
        let mut t = HealthTracker::default();
        for _ in 0..100 {
            assert_eq!(t.observe(false), SensorHealth::Healthy);
        }
        assert!(t.transitions().is_empty());
        assert_eq!(t.rejection_rate(), 0.0);
    }

    #[test]
    fn sustained_rejections_escalate_through_degraded_to_fault() {
        let mut t = HealthTracker::default();
        let mut seen = vec![t.state()];
        for _ in 0..50 {
            seen.push(t.observe(true));
        }
        assert_eq!(t.state(), SensorHealth::SensorFault);
        assert!(
            seen.contains(&SensorHealth::Degraded),
            "must pass through Degraded"
        );
        for w in seen.windows(2) {
            assert!(
                adjacent(w[0], w[1]),
                "non-adjacent jump {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovery_walks_back_down_with_hysteresis() {
        let mut t = HealthTracker::default();
        for _ in 0..50 {
            t.observe(true);
        }
        assert_eq!(t.state(), SensorHealth::SensorFault);
        for _ in 0..100 {
            t.observe(false);
        }
        assert_eq!(t.state(), SensorHealth::Healthy);
        for w in t.transitions().windows(2) {
            assert!(adjacent(w[0].to, w[1].to));
        }
        // Full round trip: up twice, down twice.
        assert_eq!(t.transitions().len(), 4);
    }

    #[test]
    fn boundary_rate_does_not_flap() {
        // Alternate rejected/clean: EWMA settles near 0.5, which is above
        // degrade_above (0.35) but the recovery bound (0.1) keeps the
        // state pinned at Degraded instead of oscillating.
        let mut t = HealthTracker::default();
        for i in 0..400 {
            t.observe(i % 2 == 0);
        }
        assert_eq!(t.state(), SensorHealth::Degraded);
        assert_eq!(t.transitions().len(), 1);
    }

    #[test]
    fn consecutive_rejections_count_runs_and_reset() {
        let mut t = HealthTracker::default();
        assert_eq!(t.consecutive_rejections(), 0);
        for i in 1..=5 {
            t.observe(true);
            assert_eq!(t.consecutive_rejections(), i);
        }
        t.observe(false);
        assert_eq!(t.consecutive_rejections(), 0);
        t.observe(true);
        assert_eq!(t.consecutive_rejections(), 1);
    }

    #[test]
    fn followup_covers_degraded_and_fault() {
        assert!(!SensorHealth::Healthy.needs_followup());
        assert!(SensorHealth::Degraded.needs_followup());
        assert!(SensorHealth::SensorFault.needs_followup());
    }

    #[test]
    fn labels_and_ordering() {
        assert_eq!(SensorHealth::Healthy.label(), "healthy");
        assert_eq!(SensorHealth::Degraded.label(), "degraded");
        assert_eq!(SensorHealth::SensorFault.label(), "sensor_fault");
        assert!(SensorHealth::Healthy < SensorHealth::Degraded);
        assert!(SensorHealth::Degraded < SensorHealth::SensorFault);
    }
}
