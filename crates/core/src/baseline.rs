//! The baseline contract: where a detector's notion of "normal" comes
//! from.
//!
//! The paper's pipeline fits every detector on *golden* material —
//! Trojan-free traces or a golden window — but post-deployment monitors
//! do not always have any (the programmable sensor-array and
//! reference-free lines of related work detect Trojans with no golden
//! model at all). This module makes the choice explicit:
//!
//! - [`BaselineSource::Golden`] wraps the classic [`GoldenContext`]
//!   path, bit-identically — fitting through it produces exactly the
//!   pipeline the direct [`GoldenContext`] path produces;
//! - [`BaselineSource::SelfCalibrating`] asks each detector to learn
//!   its own baseline from live traffic: robust rolling statistics
//!   (per-dimension median centre, median/MAD distance spread) over a
//!   warm-up ring, with drift-tracked updates afterwards that the
//!   pipeline gates on sensor health so a faulty channel or a
//!   suspected observation can never poison the learned normal.
//!
//! Readiness becomes explicit too: every [`Detector`] reports a
//! [`DetectorReadiness`], and the pipeline aggregates them into a
//! [`CalibrationState`] (`Calibrating → Armed`). During calibration a
//! self-calibrating detector scores benign (statistic strictly under
//! its threshold), so nothing can alarm before the baseline is armed.
//!
//! [`Detector`]: crate::detector::Detector

use crate::detector::GoldenContext;
use crate::features::DEFAULT_RMS_BIN;
use crate::TrustError;
use emtrust_dsp::stats::median;
use std::collections::VecDeque;

/// Configuration of a self-calibrating (golden-model-free) baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfCalibratingConfig {
    /// Observations collected in the warm-up ring before the baseline
    /// arms. Must be ≥ 2 (robust statistics need a spread).
    pub warmup: usize,
    /// Threshold head-room: the armed decision threshold is
    /// `median + mad_multiplier × MAD` over the warm-up distances.
    pub mad_multiplier: f64,
    /// EWMA rate for post-arming drift tracking of the centre, in
    /// `[0, 1)`. `0.0` freezes the centre at its warm-up value.
    pub drift_alpha: f64,
    /// Samples per RMS feature bin for trace-domain detectors (matches
    /// [`crate::fingerprint::FingerprintConfig::rms_bin`]).
    pub rms_bin: usize,
}

impl Default for SelfCalibratingConfig {
    fn default() -> Self {
        Self {
            warmup: 16,
            mad_multiplier: 8.0,
            drift_alpha: 0.05,
            rms_bin: DEFAULT_RMS_BIN,
        }
    }
}

impl SelfCalibratingConfig {
    /// Checks every invariant the rolling baseline relies on.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] naming the violated bound.
    pub fn validate(&self) -> Result<(), TrustError> {
        if self.warmup < 2 {
            return Err(TrustError::InvalidParameter {
                what: "self-calibrating warmup must be >= 2",
            });
        }
        if !(self.mad_multiplier.is_finite() && self.mad_multiplier > 0.0) {
            return Err(TrustError::InvalidParameter {
                what: "mad_multiplier must be positive and finite",
            });
        }
        if !(0.0..1.0).contains(&self.drift_alpha) {
            return Err(TrustError::InvalidParameter {
                what: "drift_alpha must be in [0, 1)",
            });
        }
        if self.rms_bin == 0 {
            return Err(TrustError::InvalidParameter {
                what: "rms_bin must be >= 1",
            });
        }
        Ok(())
    }
}

/// Where a detector's baseline comes from (see module docs).
#[derive(Debug, Clone, Copy)]
pub enum BaselineSource<'a> {
    /// Fit on golden material — exactly today's [`GoldenContext`] path.
    Golden(GoldenContext<'a>),
    /// Learn the baseline online from live traffic; no golden material
    /// is ever consulted.
    SelfCalibrating(SelfCalibratingConfig),
}

impl<'a> BaselineSource<'a> {
    /// A golden source over the given context.
    pub fn golden(ctx: GoldenContext<'a>) -> Self {
        BaselineSource::Golden(ctx)
    }

    /// A self-calibrating source with the given configuration.
    pub fn self_calibrating(config: SelfCalibratingConfig) -> Self {
        BaselineSource::SelfCalibrating(config)
    }

    /// Whether this source uses no golden material at all.
    pub fn is_reference_free(&self) -> bool {
        matches!(self, BaselineSource::SelfCalibrating(_))
    }
}

/// A detector's explicit readiness judgement — the truth the old
/// boolean `is_fitted` hid (a reference-free detector reported *fitted*
/// while still learning its whitelist).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorReadiness {
    /// Unfitted; needs golden per-encryption traces.
    NeedsGoldenTraces,
    /// Unfitted; needs a golden continuous window.
    NeedsGoldenWindow,
    /// Learning its own baseline from live traffic; cannot vote
    /// suspected yet.
    Calibrating {
        /// Observations absorbed into the warm-up so far.
        seen: u32,
        /// Observations required before the detector arms.
        required: u32,
    },
    /// Armed: scores are live and can vote suspected.
    Ready,
}

impl DetectorReadiness {
    /// Whether the detector can vote suspected.
    pub fn is_ready(&self) -> bool {
        matches!(self, DetectorReadiness::Ready)
    }

    /// Stable label for telemetry and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorReadiness::NeedsGoldenTraces => "needs_golden_traces",
            DetectorReadiness::NeedsGoldenWindow => "needs_golden_window",
            DetectorReadiness::Calibrating { .. } => "calibrating",
            DetectorReadiness::Ready => "ready",
        }
    }
}

/// The pipeline-level calibration state machine: `Calibrating` until
/// every registered detector reports [`DetectorReadiness::Ready`], then
/// `Armed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationState {
    /// At least one detector is not ready yet.
    Calibrating {
        /// Detectors already ready.
        ready: usize,
        /// Detectors registered.
        total: usize,
    },
    /// Every detector is ready; alarms are live.
    Armed,
}

impl CalibrationState {
    /// Whether every detector is ready.
    pub fn is_armed(&self) -> bool {
        matches!(self, CalibrationState::Armed)
    }

    /// Stable label for telemetry and decision records.
    pub fn label(&self) -> &'static str {
        match self {
            CalibrationState::Calibrating { .. } => "calibrating",
            CalibrationState::Armed => "armed",
        }
    }
}

/// The armed statistics of a [`RollingBaseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct RobustModel {
    /// Scale divisor (mean warm-up feature-vector norm) making
    /// distances dimensionless, like the golden fingerprint's.
    pub scale: f64,
    /// Per-dimension median of the scaled warm-up features — the robust
    /// centre distances are measured from.
    pub center: Vec<f64>,
    /// Median of the warm-up distances to the centre.
    pub median_distance: f64,
    /// Median absolute deviation of the warm-up distances.
    pub mad_distance: f64,
    /// Decision threshold: `median + mad_multiplier × MAD` (floored at
    /// the smallest positive value when the warm-up spread is exactly
    /// zero, so a degenerate constant baseline still flags deviations).
    pub threshold: f64,
}

/// Online rolling robust statistics over feature vectors: a warm-up
/// ring of the last `warmup` observations, armed into a [`RobustModel`]
/// (median centre, median/MAD distance spread) once full, with optional
/// EWMA drift tracking of the centre afterwards.
///
/// The engine is deliberately policy-free: callers decide *which*
/// observations to feed it (the pipeline gates on sensor health and on
/// the detector's own verdict), and it never updates its threshold
/// after arming — only the centre drifts.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingBaseline {
    config: SelfCalibratingConfig,
    ring: VecDeque<Vec<f64>>,
    seen: u64,
    drift: f64,
    model: Option<RobustModel>,
}

impl RollingBaseline {
    /// An empty baseline; arms after `config.warmup` observations.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the configuration is out of
    /// range.
    pub fn new(config: SelfCalibratingConfig) -> Result<Self, TrustError> {
        config.validate()?;
        Ok(Self {
            config,
            ring: VecDeque::with_capacity(config.warmup),
            seen: 0,
            drift: 0.0,
            model: None,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> SelfCalibratingConfig {
        self.config
    }

    /// Whether the warm-up ring has filled and the statistics are live.
    pub fn is_armed(&self) -> bool {
        self.model.is_some()
    }

    /// Observations absorbed so far (warm-up and drift phases).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Observations required before arming.
    pub fn required(&self) -> usize {
        self.config.warmup
    }

    /// The armed statistics, if any.
    pub fn model(&self) -> Option<&RobustModel> {
        self.model.as_ref()
    }

    /// Cumulative L2 movement of the centre under drift tracking since
    /// arming (0.0 with `drift_alpha == 0`).
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The armed decision threshold.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] while still warming up.
    pub fn threshold(&self) -> Result<f64, TrustError> {
        self.model
            .as_ref()
            .map(|m| m.threshold)
            .ok_or(TrustError::InvalidParameter {
                what: "rolling baseline is still warming up",
            })
    }

    /// Scaled Euclidean distance of a feature vector to the armed
    /// centre.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] while warming up or on a
    /// feature-length mismatch.
    pub fn distance(&self, feats: &[f64]) -> Result<f64, TrustError> {
        let m = self.model.as_ref().ok_or(TrustError::InvalidParameter {
            what: "rolling baseline is still warming up",
        })?;
        if feats.len() != m.center.len() {
            return Err(TrustError::InvalidParameter {
                what: "feature length does not match the rolling baseline",
            });
        }
        Ok(feats
            .iter()
            .zip(&m.center)
            .map(|(&x, &c)| {
                let d = x / m.scale - c;
                d * d
            })
            .sum::<f64>()
            .sqrt())
    }

    /// Feeds one observation: during warm-up it joins the ring (arming
    /// the statistics once the ring fills); afterwards it drift-tracks
    /// the centre. Returns whether the baseline is armed after the
    /// update.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] on a non-finite sample or a
    /// feature-length mismatch with the ring; the observation is
    /// dropped and the state is unchanged.
    pub fn observe(&mut self, feats: &[f64]) -> Result<bool, TrustError> {
        if feats.is_empty() || feats.iter().any(|x| !x.is_finite()) {
            return Err(TrustError::InvalidParameter {
                what: "baseline observation must be non-empty and finite",
            });
        }
        if let Some(first) = self.ring.front() {
            if feats.len() != first.len() {
                return Err(TrustError::InvalidParameter {
                    what: "baseline observation length changed mid-stream",
                });
            }
        }
        if let Some(m) = &mut self.model {
            // Drift phase: EWMA the centre toward the scaled features.
            if self.config.drift_alpha > 0.0 {
                let a = self.config.drift_alpha;
                let mut step = 0.0;
                for (c, &x) in m.center.iter_mut().zip(feats) {
                    let next = (1.0 - a) * *c + a * (x / m.scale);
                    let d = next - *c;
                    step += d * d;
                    *c = next;
                }
                self.drift += step.sqrt();
            }
            self.seen += 1;
            return Ok(true);
        }
        self.ring.push_back(feats.to_vec());
        self.seen += 1;
        if self.ring.len() >= self.config.warmup {
            self.arm()?;
        }
        Ok(self.is_armed())
    }

    /// Computes the robust model from the full warm-up ring.
    fn arm(&mut self) -> Result<(), TrustError> {
        let n = self.ring.len();
        let dims = self.ring.front().map_or(0, Vec::len);
        let scale = self
            .ring
            .iter()
            .map(|f| f.iter().map(|x| x * x).sum::<f64>().sqrt())
            .sum::<f64>()
            / n as f64;
        if scale <= 0.0 {
            return Err(TrustError::InvalidParameter {
                what: "warm-up observations contain no energy",
            });
        }
        let mut center = Vec::with_capacity(dims);
        let mut column = Vec::with_capacity(n);
        for d in 0..dims {
            column.clear();
            column.extend(self.ring.iter().map(|f| f[d] / scale));
            center.push(median(&column));
        }
        let distances: Vec<f64> = self
            .ring
            .iter()
            .map(|f| {
                f.iter()
                    .zip(&center)
                    .map(|(&x, &c)| {
                        let d = x / scale - c;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        let median_distance = median(&distances);
        let deviations: Vec<f64> = distances
            .iter()
            .map(|&d| (d - median_distance).abs())
            .collect();
        let mad_distance = median(&deviations);
        let raw = median_distance + self.config.mad_multiplier * mad_distance;
        let threshold = if raw > 0.0 { raw } else { f64::MIN_POSITIVE };
        self.model = Some(RobustModel {
            scale,
            center,
            median_distance,
            mad_distance,
            threshold,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(base: f64, jitter: f64, seed: u64) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..8)
            .map(|i| base + (i as f64 * 0.3).sin() + jitter * rng.gen_range(-1.0..1.0))
            .collect()
    }

    #[test]
    fn config_bounds_are_enforced() {
        assert!(SelfCalibratingConfig::default().validate().is_ok());
        let cases = [
            SelfCalibratingConfig {
                warmup: 1,
                ..Default::default()
            },
            SelfCalibratingConfig {
                mad_multiplier: 0.0,
                ..Default::default()
            },
            SelfCalibratingConfig {
                drift_alpha: 1.0,
                ..Default::default()
            },
            SelfCalibratingConfig {
                rms_bin: 0,
                ..Default::default()
            },
        ];
        for cfg in cases {
            assert!(cfg.validate().is_err(), "{cfg:?} must be rejected");
        }
    }

    #[test]
    fn warmup_then_arm_then_drift() {
        let cfg = SelfCalibratingConfig {
            warmup: 4,
            drift_alpha: 0.1,
            ..Default::default()
        };
        let mut rb = RollingBaseline::new(cfg).unwrap();
        assert!(!rb.is_armed());
        assert!(rb.threshold().is_err());
        for seed in 0..3 {
            assert!(!rb.observe(&feats(2.0, 0.05, seed)).unwrap());
        }
        assert!(rb.observe(&feats(2.0, 0.05, 3)).unwrap());
        assert!(rb.is_armed());
        let th = rb.threshold().unwrap();
        assert!(th > 0.0);
        // Clean traffic stays under the threshold; a 40 % energy bump
        // does not.
        assert!(rb.distance(&feats(2.0, 0.05, 9)).unwrap() < th);
        let hot: Vec<f64> = feats(2.0, 0.05, 9).iter().map(|x| 1.4 * x).collect();
        assert!(rb.distance(&hot).unwrap() > th);
        // Drift tracking moves the centre but never the threshold.
        let before = rb.model().unwrap().clone();
        rb.observe(&feats(2.05, 0.05, 11)).unwrap();
        let after = rb.model().unwrap();
        assert!(rb.drift() > 0.0);
        assert_ne!(before.center, after.center);
        assert_eq!(before.threshold, after.threshold);
    }

    #[test]
    fn bad_observations_are_rejected_without_state_change() {
        let mut rb = RollingBaseline::new(SelfCalibratingConfig {
            warmup: 3,
            ..Default::default()
        })
        .unwrap();
        rb.observe(&feats(1.0, 0.02, 0)).unwrap();
        assert!(rb.observe(&[f64::NAN; 8]).is_err());
        assert!(rb.observe(&[1.0; 4]).is_err());
        assert!(rb.observe(&[]).is_err());
        assert_eq!(rb.seen(), 1);
    }

    #[test]
    fn degenerate_constant_warmup_still_detects_deviation() {
        let mut rb = RollingBaseline::new(SelfCalibratingConfig {
            warmup: 3,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..3 {
            rb.observe(&[1.0, 2.0, 3.0]).unwrap();
        }
        let th = rb.threshold().unwrap();
        assert!(th > 0.0, "threshold must stay positive");
        assert!(rb.distance(&[1.5, 2.0, 3.0]).unwrap() > th);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DetectorReadiness::Ready.label(), "ready");
        assert_eq!(
            DetectorReadiness::Calibrating {
                seen: 1,
                required: 4
            }
            .label(),
            "calibrating"
        );
        assert_eq!(
            DetectorReadiness::NeedsGoldenTraces.label(),
            "needs_golden_traces"
        );
        assert_eq!(
            DetectorReadiness::NeedsGoldenWindow.label(),
            "needs_golden_window"
        );
        assert_eq!(CalibrationState::Armed.label(), "armed");
        assert!(CalibrationState::Armed.is_armed());
        let c = CalibrationState::Calibrating { ready: 0, total: 2 };
        assert_eq!(c.label(), "calibrating");
        assert!(!c.is_armed());
        assert!(
            BaselineSource::self_calibrating(SelfCalibratingConfig::default()).is_reference_free()
        );
        assert!(!BaselineSource::golden(GoldenContext::new()).is_reference_free());
    }
}
