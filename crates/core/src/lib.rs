#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

//! # emtrust
//!
//! Runtime trust evaluation and hardware Trojan detection using on-chip
//! EM sensors — a full reproduction of the DAC 2020 paper of the same
//! name (He, Guo, Ma, Liu, Zhao, Jin).
//!
//! The framework continuously measures a circuit's EM radiation through a
//! spiral sensor on the top metal layer (or, for comparison, an external
//! probe), and analyses the traces in a trusted software module:
//!
//! - **time domain** ([`euclidean`]): traces are reduced to energy
//!   features, optionally PCA-projected, and compared against a golden
//!   fingerprint with the paper's Eq. 1 threshold
//!   `EDth = max‖Di − Dj‖₂` over the Trojan-free set;
//! - **frequency domain** ([`spectral`]): the EM spectrum is compared
//!   bin-wise against the golden spectrum to catch fast-flipping analog
//!   Trojan triggers (A2), either boosting an existing spot (`T = g`) or
//!   adding a new one (`T ≠ g`).
//!
//! - **reference-free** ([`persistence`]): a self-referencing
//!   spectral-persistence detector whitelists the chip's own spectral
//!   lines during a warm-up phase and alarms when a fresh line persists
//!   across consecutive windows — no golden model required.
//!
//! Detection runs as a staged pipeline
//! ([`pipeline::DetectionPipeline`]): every observation is sanitized,
//! featurized once into a shared [`features::FeatureFrame`], scored by
//! every registered [`detector::Detector`], and the per-detector votes
//! are fused into one alarm decision by a [`fusion::FusionPolicy`].
//!
//! [`acquisition::TestBench`] assembles the full experiment: the
//! Trojan-carrying AES chip (`emtrust-trojan`), the measurement physics
//! (`emtrust-em`), and optionally the fabricated-chip non-idealities
//! (`emtrust-silicon`). [`monitor::TrustMonitor`] is the runtime loop
//! that turns detections into alarms — today a thin compatibility
//! wrapper over a pipeline with an Euclidean detector, an optional
//! spectral detector, and [`fusion::FusionPolicy::Or`].
//!
//! Every pipeline stage is instrumented through [`telemetry`]
//! (re-exported from `emtrust-telemetry`): install a
//! [`telemetry::Recorder`] to capture hierarchical timing spans,
//! counters, and distance histograms; alarms carry correlation ids and a
//! ring-buffer forensic bundle (see [`monitor::AlarmRecord`]). With no
//! recorder installed every instrumentation point costs a single relaxed
//! atomic load.
//!
//! # Examples
//!
//! Fit a fingerprint on golden traces and screen a suspect set (tiny
//! synthetic workload for speed; the examples directory runs the real
//! AES):
//!
//! ```
//! use emtrust::fingerprint::{FingerprintConfig, GoldenFingerprint};
//! use emtrust::acquisition::TraceSet;
//!
//! // 16 golden traces and one suspect with 30 % more energy.
//! let golden: Vec<Vec<f64>> = (0..16)
//!     .map(|i| (0..64).map(|j| ((i * 7 + j) as f64 * 0.37).sin()).collect())
//!     .collect();
//! let suspect: Vec<f64> = golden[0].iter().map(|x| 1.3 * x).collect();
//!
//! let set = TraceSet::new(golden, 640e6)?;
//! let fp = GoldenFingerprint::fit(&set, FingerprintConfig::default())?;
//! assert!(fp.evaluate(&suspect)?.trojan_suspected);
//! # Ok::<(), emtrust::TrustError>(())
//! ```

pub use emtrust_faults as faults;
pub use emtrust_telemetry as telemetry;

pub mod acquisition;
pub mod array;
pub mod attribution;
pub mod baseline;
pub mod detector;
pub mod error;
pub mod euclidean;
pub mod features;
pub mod fingerprint;
pub mod fusion;
pub mod health;
pub mod learned;
pub mod monitor;
pub mod parallel;
pub mod persistence;
pub mod pipeline;
pub mod power_baseline;
pub mod sanitize;
pub mod spectral;

pub use acquisition::{RetryPolicy, RobustCollection, TestBench, TraceReport, TraceSet};
pub use array::{
    ArrayBuilder, ArrayConfig, ArrayVerdict, ConsensusConfig, ConsensusDetector, Localizer,
    RegionScore, SensorArray, TileScore,
};
pub use attribution::{Attribution, CellEvidence, CellFeatures, CellScore};
pub use baseline::{
    BaselineSource, CalibrationState, DetectorReadiness, RobustModel, RollingBaseline,
    SelfCalibratingConfig,
};
pub use detector::{
    Detector, DetectorDomain, DetectorVerdict, EuclideanDetector, GoldenContext, Score,
    ScoreDetail, SpectralWindowDetector,
};
pub use error::Error;
pub use features::FeatureFrame;
pub use fingerprint::{FingerprintConfig, GoldenFingerprint};
pub use fusion::FusionPolicy;
pub use health::{HealthConfig, HealthTracker, HealthTransition, SensorHealth};
pub use learned::{LearnedConfig, LearnedDetector, LogisticModel, TrainSpec};
pub use monitor::{Alarm, TrustMonitor, TrustMonitorBuilder};
pub use parallel::ParallelConfig;
pub use persistence::{PersistenceConfig, SpectralPersistenceDetector};
pub use pipeline::{
    BatchOutcome, DetectionPipeline, DetectorConfig, PipelineAlarm, PipelineBuilder, TraceOutcome,
    WindowOutcome,
};
pub use sanitize::{SanitizerConfig, TraceDefect, TraceSanitizer, TraceVerdict};
pub use spectral::SpectralDetector;

use std::fmt;

/// Errors produced by the trust-evaluation framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrustError {
    /// A configuration or input value was out of range.
    InvalidParameter {
        /// Description of the violated constraint.
        what: &'static str,
    },
    /// A trace carried a NaN or ±Inf sample (corrupted acquisition).
    NonFiniteSample {
        /// Index of the offending trace in its set.
        trace: usize,
        /// Index of the first non-finite sample inside that trace.
        sample: usize,
    },
    /// A trace's length disagreed with the rest of its set.
    TraceLengthMismatch {
        /// Index of the offending trace in its set.
        trace: usize,
        /// Length of the set's first trace.
        expected: usize,
        /// Length of the offending trace.
        actual: usize,
    },
    /// Re-acquisition could not bring the rejected-trace fraction under
    /// the retry policy's bound: the sensor channel is effectively down.
    SensorFault {
        /// Traces still rejected after every attempt.
        rejected: usize,
        /// Traces requested.
        total: usize,
    },
    /// Forwarded from the DSP substrate.
    Dsp(emtrust_dsp::DspError),
    /// Forwarded from the EM pipeline.
    Em(emtrust_em::EmError),
    /// Forwarded from the silicon model.
    Silicon(emtrust_silicon::SiliconError),
    /// Forwarded from netlist construction or simulation.
    Netlist(emtrust_netlist::NetlistError),
    /// Forwarded from the layout substrate.
    Layout(emtrust_layout::LayoutError),
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            TrustError::NonFiniteSample { trace, sample } => {
                write!(f, "trace {trace} sample {sample} is not finite")
            }
            TrustError::TraceLengthMismatch {
                trace,
                expected,
                actual,
            } => write!(
                f,
                "trace {trace} has {actual} samples, set expects {expected}"
            ),
            TrustError::SensorFault { rejected, total } => write!(
                f,
                "sensor fault: {rejected}/{total} traces still rejected after retries"
            ),
            TrustError::Dsp(e) => write!(f, "dsp: {e}"),
            TrustError::Em(e) => write!(f, "em: {e}"),
            TrustError::Silicon(e) => write!(f, "silicon: {e}"),
            TrustError::Netlist(e) => write!(f, "netlist: {e}"),
            TrustError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl std::error::Error for TrustError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrustError::Dsp(e) => Some(e),
            TrustError::Em(e) => Some(e),
            TrustError::Silicon(e) => Some(e),
            TrustError::Netlist(e) => Some(e),
            TrustError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emtrust_dsp::DspError> for TrustError {
    fn from(e: emtrust_dsp::DspError) -> Self {
        TrustError::Dsp(e)
    }
}

impl From<emtrust_em::EmError> for TrustError {
    fn from(e: emtrust_em::EmError) -> Self {
        TrustError::Em(e)
    }
}

impl From<emtrust_silicon::SiliconError> for TrustError {
    fn from(e: emtrust_silicon::SiliconError) -> Self {
        TrustError::Silicon(e)
    }
}

impl From<emtrust_netlist::NetlistError> for TrustError {
    fn from(e: emtrust_netlist::NetlistError) -> Self {
        TrustError::Netlist(e)
    }
}

impl From<emtrust_layout::LayoutError> for TrustError {
    fn from(e: emtrust_layout::LayoutError) -> Self {
        TrustError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = TrustError::InvalidParameter { what: "traces" };
        assert!(e.to_string().contains("traces"));
        let e: TrustError = emtrust_dsp::DspError::EmptyInput.into();
        assert!(e.to_string().contains("dsp"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrustError>();
    }
}
