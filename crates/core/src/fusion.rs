//! Verdict fusion: combining per-detector votes into one alarm decision.
//!
//! Each [`Detector`](crate::detector::Detector) in a
//! [`DetectionPipeline`](crate::pipeline::DetectionPipeline) votes
//! independently on every observation; a [`FusionPolicy`] reduces the
//! votes of one domain (per-encryption traces and continuous windows
//! fuse separately) to the single suspected/clean decision that raises
//! or withholds the alarm.
//!
//! All policies return `false` for an empty vote slice — an observation
//! no detector judged can never alarm (there is no vacuous [`And`]).
//!
//! [`And`]: FusionPolicy::And

/// How per-detector votes combine into one alarm decision.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub enum FusionPolicy {
    /// Alarm when any detector votes suspected (maximum sensitivity —
    /// the union of the detectors' coverage). This is the default, and
    /// what the legacy `TrustMonitor` semantics correspond to.
    #[default]
    Or,
    /// Alarm only when every detector votes suspected (minimum false
    /// positives — each detector must confirm).
    And,
    /// Alarm when strictly more than half the detectors vote suspected.
    Majority,
    /// Alarm when the summed weight of the suspected votes reaches
    /// `threshold`. Votes beyond the weight list count as weight `0.0`.
    Weighted {
        /// Per-detector weights, in the pipeline's registration order.
        weights: Vec<f64>,
        /// Minimum suspected-weight sum that alarms (inclusive).
        threshold: f64,
    },
}

impl FusionPolicy {
    /// Reduces one domain's votes (`true` = suspected, in detector
    /// registration order) to the fused alarm decision.
    ///
    /// An empty slice is always `false`, for every policy.
    pub fn decide(&self, votes: &[bool]) -> bool {
        if votes.is_empty() {
            return false;
        }
        match self {
            FusionPolicy::Or => votes.iter().any(|&v| v),
            FusionPolicy::And => votes.iter().all(|&v| v),
            FusionPolicy::Majority => 2 * votes.iter().filter(|&&v| v).count() > votes.len(),
            FusionPolicy::Weighted { weights, threshold } => {
                let sum: f64 = votes
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v)
                    .map(|(i, _)| weights.get(i).copied().unwrap_or(0.0))
                    .sum();
                sum >= *threshold
            }
        }
    }

    /// Stable label for telemetry and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            FusionPolicy::Or => "or",
            FusionPolicy::And => "and",
            FusionPolicy::Majority => "majority",
            FusionPolicy::Weighted { .. } => "weighted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_fires_on_any_vote() {
        let p = FusionPolicy::Or;
        assert!(!p.decide(&[false, false, false]));
        assert!(p.decide(&[false, true, false]));
        assert!(p.decide(&[true, true, true]));
    }

    #[test]
    fn and_requires_every_vote() {
        let p = FusionPolicy::And;
        assert!(!p.decide(&[true, false, true]));
        assert!(p.decide(&[true, true, true]));
        assert!(p.decide(&[true]));
    }

    #[test]
    fn majority_needs_a_strict_majority() {
        let p = FusionPolicy::Majority;
        assert!(!p.decide(&[true, false])); // 1/2 is a tie, not a majority
        assert!(p.decide(&[true, true, false]));
        assert!(!p.decide(&[true, false, false]));
        assert!(p.decide(&[true]));
    }

    #[test]
    fn weighted_sums_the_suspected_weights() {
        let p = FusionPolicy::Weighted {
            weights: vec![0.5, 0.3, 0.2],
            threshold: 0.5,
        };
        assert!(p.decide(&[true, false, false])); // 0.5 >= 0.5 (inclusive)
        assert!(p.decide(&[false, true, true])); // 0.3 + 0.2
        assert!(!p.decide(&[false, true, false]));
        // A vote past the weight list carries weight 0.
        assert!(!p.decide(&[false, false, false, true]));
    }

    #[test]
    fn empty_votes_never_alarm() {
        for p in [
            FusionPolicy::Or,
            FusionPolicy::And,
            FusionPolicy::Majority,
            FusionPolicy::Weighted {
                weights: vec![],
                threshold: 0.0,
            },
        ] {
            assert!(!p.decide(&[]), "{p:?} must not fire vacuously");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FusionPolicy::Or.label(), "or");
        assert_eq!(FusionPolicy::And.label(), "and");
        assert_eq!(FusionPolicy::Majority.label(), "majority");
        assert_eq!(
            FusionPolicy::Weighted {
                weights: vec![1.0],
                threshold: 1.0
            }
            .label(),
            "weighted"
        );
        assert_eq!(FusionPolicy::default(), FusionPolicy::Or);
    }
}
