//! A reference-free spectral-persistence detector.
//!
//! The reference-based detectors need golden material — Trojan-free
//! traces or a golden spectrum — which post-deployment monitors do not
//! always have. Related work ("Reference-Free Spectral Analysis of EM
//! Side-Channels for Always-on Hardware Trojan Detection") shows the
//! A2-style trigger signature can be caught *self-referentially*: the
//! legitimate spectrum's strong lines (clock and harmonics) are stable
//! fixtures, so the detector can learn them from the chip's **own**
//! early windows and then watch for a *new* line that both rises out of
//! the noise floor and **persists** across consecutive windows — a
//! transient glitch dies within a window or two, a parked fast-flipping
//! trigger does not.
//!
//! [`SpectralPersistenceDetector`] implements that check behind the
//! [`Detector`] trait:
//!
//! 1. **warm-up** — for the first `warmup_windows` windows, every bin
//!    that is *hot* (magnitude above `floor_multiplier ×` the
//!    spectrum's own median) joins the baseline whitelist; nothing can
//!    alarm yet;
//! 2. **watch** — afterwards, each non-baseline hot bin extends a
//!    per-bin consecutive-window run; the statistic is the longest such
//!    run (current window included) and the detector votes suspected
//!    once it reaches `persistence_windows`.
//!
//! Everything is a pure function of the window sequence, so replays are
//! deterministic; scoring is read-only and the run bookkeeping happens
//! in the serial [`absorb`](Detector::absorb) stage.

use crate::baseline::{BaselineSource, DetectorReadiness};
use crate::detector::{
    Detector, DetectorDomain, FeaturePlan, GoldenContext, Score, ScoreDetail, WelchSpec,
};
use crate::features::FeatureFrame;
use crate::TrustError;
use emtrust_dsp::spectrum::Spectrum;
use emtrust_dsp::stats::median;
use emtrust_dsp::window::Window;

/// Configuration of the self-referencing persistence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistenceConfig {
    /// A bin is *hot* when its magnitude exceeds this multiple of the
    /// spectrum's own median magnitude (a robust per-window noise-floor
    /// estimate — no golden reference involved).
    pub floor_multiplier: f64,
    /// Windows spent learning the baseline whitelist before the
    /// detector can vote suspected.
    pub warmup_windows: u32,
    /// Consecutive windows a non-baseline bin must stay hot (current
    /// window included) to vote suspected.
    pub persistence_windows: u32,
    /// Hysteresis on the warm-up whitelist: baseline learning uses
    /// `whitelist_ratio × floor_multiplier` as its floor, so the skirt
    /// bins of a legitimate line that hover *near* the watch floor are
    /// whitelisted instead of flickering hot later. Must be in
    /// `(0, 1]`; `1.0` disables the hysteresis.
    pub whitelist_ratio: f64,
    /// Welch segments used when this detector is the pipeline's
    /// spectrum provider (a registered reference-based spectral
    /// detector takes precedence).
    pub welch_segments: usize,
    /// Analysis window for the same case.
    pub window: Window,
}

impl Default for PersistenceConfig {
    fn default() -> Self {
        Self {
            floor_multiplier: 8.0,
            warmup_windows: 4,
            persistence_windows: 3,
            whitelist_ratio: 0.5,
            welch_segments: 4,
            window: Window::Hann,
        }
    }
}

/// The reference-free spectral-persistence detector (see module docs).
#[derive(Debug, Clone)]
pub struct SpectralPersistenceDetector {
    config: PersistenceConfig,
    /// Windows absorbed so far (warm-up bookkeeping).
    windows_absorbed: u32,
    /// Bins whitelisted during warm-up (the chip's own legitimate
    /// lines).
    baseline: Vec<bool>,
    /// Per-bin consecutive-hot-window run counts, *excluding* the
    /// current window (scoring projects the current window on top).
    runs: Vec<u32>,
}

impl SpectralPersistenceDetector {
    /// A fresh detector (warm-up starts at the first absorbed window).
    pub fn new(config: PersistenceConfig) -> Self {
        Self {
            config,
            windows_absorbed: 0,
            baseline: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> PersistenceConfig {
        self.config
    }

    /// Whether the detector is still learning its baseline whitelist.
    pub fn in_warmup(&self) -> bool {
        self.windows_absorbed < self.config.warmup_windows
    }

    /// Windows absorbed so far.
    pub fn windows_absorbed(&self) -> u32 {
        self.windows_absorbed
    }

    /// Number of bins currently whitelisted as legitimate lines.
    pub fn baseline_bins(&self) -> usize {
        self.baseline.iter().filter(|&&b| b).count()
    }

    /// Hot-bin mask of one spectrum: magnitude above `multiplier ×` the
    /// spectrum's own median. The DC bin is never hot.
    fn hot_bins_at(&self, spectrum: &Spectrum, multiplier: f64) -> Vec<bool> {
        let mags = spectrum.magnitudes();
        let floor = multiplier * median(mags);
        mags.iter()
            .enumerate()
            .map(|(i, &m)| i > 0 && m > floor)
            .collect()
    }

    /// The watch-phase hot mask (the `floor_multiplier` floor).
    fn hot_bins(&self, spectrum: &Spectrum) -> Vec<bool> {
        self.hot_bins_at(spectrum, self.config.floor_multiplier)
    }

    /// The warm-up whitelist mask (the lower hysteresis floor).
    fn whitelist_bins(&self, spectrum: &Spectrum) -> Vec<bool> {
        self.hot_bins_at(
            spectrum,
            self.config.whitelist_ratio * self.config.floor_multiplier,
        )
    }
}

impl Detector for SpectralPersistenceDetector {
    fn name(&self) -> &'static str {
        "spectral_persistence"
    }

    fn domain(&self) -> DetectorDomain {
        DetectorDomain::ContinuousWindow
    }

    fn feature_plan(&self) -> FeaturePlan {
        FeaturePlan {
            needs_projection: false,
            needs_spectrum: true,
        }
    }

    /// Reference-free: resets the learned state and succeeds on any
    /// context (the golden material, if present, is ignored). The
    /// readiness contract makes the warm-up explicit — after a reset
    /// [`Detector::readiness`] reports `Calibrating`, not `Ready`.
    fn fit(&mut self, _ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        self.windows_absorbed = 0;
        self.baseline.clear();
        self.runs.clear();
        Ok(())
    }

    /// Reference-free: both baseline sources reset the learned state
    /// (the detector has always calibrated itself from live windows).
    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(cfg) => {
                cfg.validate()?;
                self.fit(&GoldenContext::new())
            }
        }
    }

    /// Always fitted — the baseline is learned on the fly.
    fn is_fitted(&self) -> bool {
        true
    }

    /// `Calibrating` while the warm-up whitelist is still learning —
    /// the truth the boolean `is_fitted` hides.
    fn readiness(&self) -> DetectorReadiness {
        if self.in_warmup() {
            DetectorReadiness::Calibrating {
                seen: self.windows_absorbed,
                required: self.config.warmup_windows,
            }
        } else {
            DetectorReadiness::Ready
        }
    }

    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError> {
        let spectrum = frame.spectrum().ok_or(TrustError::InvalidParameter {
            what: "feature frame is missing the spectrum",
        })?;
        let threshold = f64::from(self.config.persistence_windows);
        if self.in_warmup() {
            return Ok(Score {
                statistic: 0.0,
                threshold,
                detail: ScoreDetail::Persistence {
                    fresh_hot_bins: 0,
                    longest_run: 0,
                },
            });
        }
        let hot = self.hot_bins(spectrum);
        let mut fresh_hot_bins = 0usize;
        let mut longest_run = 0u32;
        for (i, &h) in hot.iter().enumerate() {
            if !h || self.baseline.get(i).copied().unwrap_or(false) {
                continue;
            }
            fresh_hot_bins += 1;
            // The run if this window is counted on top of the history.
            let projected = self.runs.get(i).copied().unwrap_or(0) + 1;
            longest_run = longest_run.max(projected);
        }
        Ok(Score {
            statistic: f64::from(longest_run),
            threshold,
            detail: ScoreDetail::Persistence {
                fresh_hot_bins,
                longest_run,
            },
        })
    }

    /// Votes suspected once the run *reaches* the persistence bound
    /// (inclusive — `statistic ≥ threshold`, unlike the default strict
    /// comparison).
    fn verdict(&self, score: &Score) -> bool {
        score.statistic >= score.threshold
    }

    fn absorb(&mut self, frame: &FeatureFrame<'_>, _score: &Score) {
        let Some(spectrum) = frame.spectrum() else {
            return;
        };
        let hot = self.hot_bins(spectrum);
        if self.baseline.len() < hot.len() {
            self.baseline.resize(hot.len(), false);
            self.runs.resize(hot.len(), 0);
        }
        if self.in_warmup() {
            for (i, &w) in self.whitelist_bins(spectrum).iter().enumerate() {
                if w {
                    self.baseline[i] = true;
                }
            }
        } else {
            for (i, &h) in hot.iter().enumerate() {
                self.runs[i] = if h && !self.baseline[i] {
                    self.runs[i] + 1
                } else {
                    0
                };
            }
        }
        self.windows_absorbed += 1;
    }

    fn welch_spec(&self) -> Option<WelchSpec> {
        Some(WelchSpec {
            window: self.config.window,
            segments: self.config.welch_segments,
            expected_rate_hz: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 640e6;

    fn tone_window(freqs: &[(f64, f64)], seed: u64) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..8192)
            .map(|i| {
                let t = i as f64 / FS;
                freqs
                    .iter()
                    .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                    .sum::<f64>()
                    + 0.01 * rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    /// Scores a window then absorbs it, like the pipeline does.
    fn step(det: &mut SpectralPersistenceDetector, samples: &[f64]) -> (Score, bool) {
        let spectrum = Spectrum::welch(
            samples,
            FS,
            det.config().window,
            det.config().welch_segments,
        )
        .unwrap();
        let mut frame = FeatureFrame::window(samples, FS);
        frame.set_spectrum(spectrum);
        let score = det.score(&frame).unwrap();
        let suspected = det.verdict(&score);
        det.absorb(&frame, &score);
        (score, suspected)
    }

    #[test]
    fn warmup_whitelists_the_chips_own_lines() {
        let mut det = SpectralPersistenceDetector::new(PersistenceConfig::default());
        assert!(det.in_warmup());
        for seed in 0..4 {
            let (_, suspected) = step(&mut det, &tone_window(&[(10e6, 1.0), (20e6, 0.4)], seed));
            assert!(!suspected, "warm-up must not alarm");
        }
        assert!(!det.in_warmup());
        assert!(det.baseline_bins() > 0);
        // The whitelisted lines stay silent forever after.
        for seed in 10..20 {
            let (score, suspected) =
                step(&mut det, &tone_window(&[(10e6, 1.0), (20e6, 0.4)], seed));
            assert!(!suspected);
            assert_eq!(score.statistic, 0.0);
        }
    }

    #[test]
    fn persistent_new_line_alarms_after_the_run_bound() {
        let mut det = SpectralPersistenceDetector::new(PersistenceConfig::default());
        for seed in 0..4 {
            step(&mut det, &tone_window(&[(10e6, 1.0)], seed));
        }
        // A new line appears far from the legitimate one's leakage
        // skirt and stays parked.
        let mut first_alarm = None;
        for k in 0..5u32 {
            let (score, suspected) = step(
                &mut det,
                &tone_window(&[(10e6, 1.0), (100e6, 0.4)], 100 + u64::from(k)),
            );
            assert_eq!(score.statistic, f64::from(k + 1), "run grows per window");
            if suspected && first_alarm.is_none() {
                first_alarm = Some(k + 1);
            }
        }
        assert_eq!(
            first_alarm,
            Some(PersistenceConfig::default().persistence_windows),
            "must alarm exactly when the run reaches the bound"
        );
    }

    #[test]
    fn transient_glitch_never_reaches_the_bound() {
        let mut det = SpectralPersistenceDetector::new(PersistenceConfig::default());
        for seed in 0..4 {
            step(&mut det, &tone_window(&[(10e6, 1.0)], seed));
        }
        // The spur flickers: present one window, gone the next.
        for k in 0..8u64 {
            let freqs: &[(f64, f64)] = if k % 2 == 0 {
                &[(10e6, 1.0), (100e6, 0.4)]
            } else {
                &[(10e6, 1.0)]
            };
            let (_, suspected) = step(&mut det, &tone_window(freqs, 200 + k));
            assert!(!suspected, "an intermittent spur must not alarm");
        }
    }

    #[test]
    fn fit_resets_the_learned_state() {
        let mut det = SpectralPersistenceDetector::new(PersistenceConfig::default());
        for seed in 0..6 {
            step(&mut det, &tone_window(&[(10e6, 1.0)], seed));
        }
        assert!(!det.in_warmup());
        det.fit(&GoldenContext::new()).unwrap();
        assert!(det.in_warmup());
        assert_eq!(det.windows_absorbed(), 0);
        assert_eq!(det.baseline_bins(), 0);
        assert!(det.is_fitted(), "reference-free: always fitted");
    }

    #[test]
    fn replays_are_deterministic() {
        let run = || {
            let mut det = SpectralPersistenceDetector::new(PersistenceConfig::default());
            let mut stats = Vec::new();
            for seed in 0..8 {
                let (score, suspected) =
                    step(&mut det, &tone_window(&[(10e6, 1.0), (31e6, 0.3)], seed));
                stats.push((score.statistic.to_bits(), suspected));
            }
            stats
        };
        assert_eq!(run(), run());
    }
}
