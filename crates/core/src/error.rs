//! The one error type that spans the whole workspace.
//!
//! Each layer of the reproduction owns a focused error enum
//! ([`emtrust_layout::LayoutError`], [`emtrust_power::PowerError`],
//! [`emtrust_em::EmError`], [`crate::TrustError`], …). Application code
//! stacking several layers — the examples, the `exp_*` experiment
//! binaries — previously had to unify them by hand. [`Error`] is that
//! unification: every layer error converts into it with `?`.
//!
//! The fault-injection crate (`emtrust-faults`) deliberately has no error
//! type — corrupted traces are *data*, reported through
//! [`crate::sanitize::TraceVerdict`], not failures. The benchmark crate's
//! JSON [`ParseError`](../../emtrust_bench/json/enum.ParseError.html) is
//! string-typed here ([`Error::Bench`]) because `emtrust` does not depend
//! on `emtrust-bench`; the `From` impl lives on the bench side.

use crate::TrustError;
use std::fmt;

/// Top-level error for code composing multiple `emtrust` layers.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Layout substrate: die geometry, placement, coil design rules.
    Layout(emtrust_layout::LayoutError),
    /// Netlist construction or logic simulation.
    Netlist(emtrust_netlist::NetlistError),
    /// DSP substrate: FFT, filtering, feature extraction.
    Dsp(emtrust_dsp::DspError),
    /// Power model: switching-current synthesis.
    Power(emtrust_power::PowerError),
    /// EM solver: coupling maps, emf synthesis, measurement.
    Em(emtrust_em::EmError),
    /// Silicon model: process variation, fabricated-chip non-idealities.
    Silicon(emtrust_silicon::SiliconError),
    /// Trust evaluation: fingerprinting, detection, acquisition.
    Trust(TrustError),
    /// Benchmark tooling (artifact parsing/validation), carried as a
    /// rendered message — see the module docs for why.
    Bench(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Layout(e) => write!(f, "layout: {e}"),
            Error::Netlist(e) => write!(f, "netlist: {e}"),
            Error::Dsp(e) => write!(f, "dsp: {e}"),
            Error::Power(e) => write!(f, "power: {e}"),
            Error::Em(e) => write!(f, "em: {e}"),
            Error::Silicon(e) => write!(f, "silicon: {e}"),
            Error::Trust(e) => write!(f, "trust: {e}"),
            Error::Bench(msg) => write!(f, "bench: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Layout(e) => Some(e),
            Error::Netlist(e) => Some(e),
            Error::Dsp(e) => Some(e),
            Error::Power(e) => Some(e),
            Error::Em(e) => Some(e),
            Error::Silicon(e) => Some(e),
            Error::Trust(e) => Some(e),
            Error::Bench(_) => None,
        }
    }
}

impl From<emtrust_layout::LayoutError> for Error {
    fn from(e: emtrust_layout::LayoutError) -> Self {
        Error::Layout(e)
    }
}

impl From<emtrust_netlist::NetlistError> for Error {
    fn from(e: emtrust_netlist::NetlistError) -> Self {
        Error::Netlist(e)
    }
}

impl From<emtrust_dsp::DspError> for Error {
    fn from(e: emtrust_dsp::DspError) -> Self {
        Error::Dsp(e)
    }
}

impl From<emtrust_power::PowerError> for Error {
    fn from(e: emtrust_power::PowerError) -> Self {
        Error::Power(e)
    }
}

impl From<emtrust_em::EmError> for Error {
    fn from(e: emtrust_em::EmError) -> Self {
        Error::Em(e)
    }
}

impl From<emtrust_silicon::SiliconError> for Error {
    fn from(e: emtrust_silicon::SiliconError) -> Self {
        Error::Silicon(e)
    }
}

impl From<TrustError> for Error {
    fn from(e: TrustError) -> Self {
        Error::Trust(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_error_converts_and_chains() {
        let cases: Vec<Error> = vec![
            emtrust_layout::LayoutError::InvalidParameter { what: "a" }.into(),
            emtrust_netlist::NetlistError::UnknownNet { net: 3 }.into(),
            emtrust_dsp::DspError::EmptyInput.into(),
            emtrust_power::PowerError::InvalidParameter { what: "c" }.into(),
            emtrust_em::EmError::InvalidParameter { what: "d" }.into(),
            emtrust_silicon::SiliconError::InvalidParameter { what: "f" }.into(),
            TrustError::InvalidParameter { what: "e" }.into(),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some(), "{e}");
        }
        let b = Error::Bench("bad json".into());
        assert!(b.to_string().contains("bad json"));
        assert!(std::error::Error::source(&b).is_none());
    }

    #[test]
    fn nested_errors_flatten_through_question_mark() {
        fn build_coil() -> Result<(), Error> {
            let die = emtrust_layout::floorplan::Die::square(600.0)?;
            // Far too many turns for the metal pitch — a layout error
            // surfacing through the top-level type.
            emtrust_layout::spiral::SpiralSensor::with_turns(die, 10_000)?;
            Ok(())
        }
        assert!(matches!(build_coil(), Err(Error::Layout(_))));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
