//! The runtime trust monitor — the data-analysis module of paper Fig. 1.
//!
//! "The proposed framework works in parallel with the circuit's normal
//! execution hence there is no runtime performance degradation. […] The
//! monitor keeps reading the EM sensor output in the format of voltages"
//! and triggers an alarm once the analysis detects Trojans or attacks.

use crate::fingerprint::GoldenFingerprint;
use crate::spectral::{SpectralAnomaly, SpectralDetector};
use crate::TrustError;
use emtrust_em::emf::VoltageTrace;
use emtrust_telemetry::sink::{json_escape, json_number};
use emtrust_telemetry::{self as telemetry, FieldValue, RingBuffer};

/// An alarm raised by the monitor.
///
/// Every alarm carries a process-unique, strictly monotonic
/// `correlation_id` that ties it to its [`AlarmRecord`] forensic bundle
/// and to any telemetry events it emitted. Correlation ids are forensic
/// metadata, not part of the detection result: [`PartialEq`] for `Alarm`
/// deliberately ignores them, so replayed runs compare equal alarm for
/// alarm even though each run draws fresh ids.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Alarm {
    /// A trace's Euclidean distance exceeded the Eq. 1 threshold.
    TimeDomain {
        /// Index of the offending trace (monotonic ingest counter).
        trace_index: u64,
        /// Measured distance.
        distance: f64,
        /// Threshold in effect.
        threshold: f64,
        /// Forensic correlation id (see [`AlarmRecord`]).
        correlation_id: u64,
    },
    /// The spectrum grew an anomalous spot.
    Spectral {
        /// The strongest offending spot.
        anomaly: SpectralAnomaly,
        /// Total anomalous spots in the window.
        spot_count: usize,
        /// Forensic correlation id (see [`AlarmRecord`]).
        correlation_id: u64,
    },
}

impl Alarm {
    /// The forensic correlation id this alarm was stamped with.
    pub fn correlation_id(&self) -> u64 {
        match self {
            Alarm::TimeDomain { correlation_id, .. } | Alarm::Spectral { correlation_id, .. } => {
                *correlation_id
            }
        }
    }
}

impl PartialEq for Alarm {
    /// Detection-level equality: compares what was detected, ignoring the
    /// per-run `correlation_id`.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Alarm::TimeDomain {
                    trace_index: i1,
                    distance: d1,
                    threshold: t1,
                    ..
                },
                Alarm::TimeDomain {
                    trace_index: i2,
                    distance: d2,
                    threshold: t2,
                    ..
                },
            ) => i1 == i2 && d1 == d2 && t1 == t2,
            (
                Alarm::Spectral {
                    anomaly: a1,
                    spot_count: n1,
                    ..
                },
                Alarm::Spectral {
                    anomaly: a2,
                    spot_count: n2,
                    ..
                },
            ) => a1 == a2 && n1 == n2,
            _ => false,
        }
    }
}

/// One recent time-domain observation held in the forensic ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSample {
    /// Ingest index of the trace.
    pub trace_index: u64,
    /// Euclidean distance to the golden centroid.
    pub distance: f64,
}

/// One recent spectral observation held in the forensic ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotSample {
    /// Ingest index of the continuous window.
    pub window_index: u64,
    /// Spot frequency in hertz.
    pub frequency_hz: f64,
    /// Suspect magnitude at that bin.
    pub suspect_magnitude: f64,
}

/// The post-mortem bundle captured at the instant an alarm fired: the
/// alarm itself plus the last-`N` ring of distances and spectral spots
/// that preceded it (the offending observation included).
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmRecord {
    /// The alarm's correlation id (same value as the alarm's).
    pub correlation_id: u64,
    /// The alarm as raised.
    pub alarm: Alarm,
    /// Recent distances, oldest first; the last entry is the offending
    /// trace for time-domain alarms.
    pub recent_distances: Vec<DistanceSample>,
    /// Recent spectral spots, oldest first.
    pub recent_spots: Vec<SpotSample>,
}

impl AlarmRecord {
    /// Renders the bundle as one self-contained JSON object — the
    /// post-mortem format the `exp_*` binaries dump.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let kind = match &self.alarm {
            Alarm::TimeDomain { .. } => "time_domain",
            Alarm::Spectral { .. } => "spectral",
        };
        let mut out = format!(
            "{{\"correlation_id\":{},\"kind\":\"{}\"",
            self.correlation_id,
            json_escape(kind)
        );
        match &self.alarm {
            Alarm::TimeDomain {
                trace_index,
                distance,
                threshold,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"trace_index\":{trace_index},\"distance\":{},\"threshold\":{}",
                    json_number(*distance),
                    json_number(*threshold)
                );
            }
            Alarm::Spectral {
                anomaly,
                spot_count,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"spot_count\":{spot_count},\"frequency_hz\":{},\"suspect_magnitude\":{}",
                    json_number(anomaly.frequency_hz),
                    json_number(anomaly.suspect_magnitude)
                );
            }
        }
        out.push_str(",\"recent_distances\":[");
        for (i, s) in self.recent_distances.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace_index\":{},\"distance\":{}}}",
                s.trace_index,
                json_number(s.distance)
            );
        }
        out.push_str("],\"recent_spots\":[");
        for (i, s) in self.recent_spots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"window_index\":{},\"frequency_hz\":{},\"suspect_magnitude\":{}}}",
                s.window_index,
                json_number(s.frequency_hz),
                json_number(s.suspect_magnitude)
            );
        }
        out.push_str("]}");
        out
    }
}

/// The runtime monitor: consumes sensor output, raises [`Alarm`]s.
#[derive(Debug)]
pub struct TrustMonitor {
    fingerprint: GoldenFingerprint,
    spectral: Option<SpectralDetector>,
    traces_seen: u64,
    windows_seen: u64,
    alarms: Vec<Alarm>,
    recent_distances: RingBuffer<DistanceSample>,
    recent_spots: RingBuffer<SpotSample>,
    forensics: Vec<AlarmRecord>,
}

impl TrustMonitor {
    /// Default depth of the forensic rings (last `N` observations kept).
    pub const DEFAULT_FORENSIC_DEPTH: usize = 32;

    /// Creates a monitor from a fitted fingerprint and an optional
    /// spectral detector.
    pub fn new(fingerprint: GoldenFingerprint, spectral: Option<SpectralDetector>) -> Self {
        Self {
            fingerprint,
            spectral,
            traces_seen: 0,
            windows_seen: 0,
            alarms: Vec::new(),
            recent_distances: RingBuffer::new(Self::DEFAULT_FORENSIC_DEPTH),
            recent_spots: RingBuffer::new(Self::DEFAULT_FORENSIC_DEPTH),
            forensics: Vec::new(),
        }
    }

    /// Resizes the forensic rings to hold the last `depth` observations
    /// (clamped ≥ 1). Intended at construction time; resizing mid-run
    /// drops the rings' current contents.
    pub fn with_forensic_depth(mut self, depth: usize) -> Self {
        self.recent_distances = RingBuffer::new(depth);
        self.recent_spots = RingBuffer::new(depth);
        self
    }

    /// Stamps an alarm's forensic bundle and telemetry events.
    fn record_alarm(&mut self, alarm: Alarm) -> Alarm {
        telemetry::counter("monitor.alarms", 1);
        match &alarm {
            Alarm::TimeDomain {
                trace_index,
                distance,
                threshold,
                correlation_id,
            } => telemetry::event(
                "alarm",
                &[
                    ("kind", FieldValue::from("time_domain")),
                    ("correlation_id", FieldValue::U64(*correlation_id)),
                    ("trace_index", FieldValue::U64(*trace_index)),
                    ("distance", FieldValue::F64(*distance)),
                    ("threshold", FieldValue::F64(*threshold)),
                ],
            ),
            Alarm::Spectral {
                anomaly,
                spot_count,
                correlation_id,
            } => telemetry::event(
                "alarm",
                &[
                    ("kind", FieldValue::from("spectral")),
                    ("correlation_id", FieldValue::U64(*correlation_id)),
                    ("frequency_hz", FieldValue::F64(anomaly.frequency_hz)),
                    ("spot_count", FieldValue::U64(*spot_count as u64)),
                ],
            ),
        }
        self.forensics.push(AlarmRecord {
            correlation_id: alarm.correlation_id(),
            alarm: alarm.clone(),
            recent_distances: self.recent_distances.to_vec(),
            recent_spots: self.recent_spots.to_vec(),
        });
        self.alarms.push(alarm.clone());
        alarm
    }

    /// Evaluates one verdict-shaped observation: updates counters, the
    /// forensic ring, and raises the alarm if the threshold was crossed.
    fn ingest_verdict(&mut self, verdict: crate::fingerprint::Verdict) -> Option<Alarm> {
        let idx = self.traces_seen;
        self.traces_seen += 1;
        telemetry::counter("monitor.traces", 1);
        telemetry::observe("monitor.distance", verdict.distance);
        self.recent_distances.push(DistanceSample {
            trace_index: idx,
            distance: verdict.distance,
        });
        if verdict.trojan_suspected {
            let alarm = Alarm::TimeDomain {
                trace_index: idx,
                distance: verdict.distance,
                threshold: verdict.threshold,
                correlation_id: telemetry::next_correlation_id(),
            };
            Some(self.record_alarm(alarm))
        } else {
            None
        }
    }

    /// Ingests one per-encryption trace; returns the alarm if one fired.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length).
    pub fn ingest_trace(&mut self, samples: &[f64]) -> Result<Option<Alarm>, TrustError> {
        let verdict = self.fingerprint.evaluate(samples)?;
        Ok(self.ingest_verdict(verdict))
    }

    /// Ingests a batch of per-encryption traces: evaluation fans across
    /// the fingerprint's worker pool, then verdicts are merged serially in
    /// trace order, so the alarm log, trace indices, and counters end up
    /// exactly as if [`Self::ingest_trace`] had been called on each trace
    /// in order. Returns the alarms this batch raised, in order.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length). On error the
    /// monitor is unchanged — no trace of the batch is counted.
    pub fn ingest_batch(&mut self, traces: &[Vec<f64>]) -> Result<Vec<Alarm>, TrustError> {
        let _span = telemetry::span("ingest_batch");
        let verdicts = self.fingerprint.evaluate_batch(traces)?;
        let mut raised = Vec::new();
        for verdict in verdicts {
            if let Some(alarm) = self.ingest_verdict(verdict) {
                raised.push(alarm);
            }
        }
        Ok(raised)
    }

    /// Ingests a continuous monitoring window for spectral inspection;
    /// returns the alarm if one fired. No-op (returns `Ok(None)`) when no
    /// spectral detector is installed.
    ///
    /// # Errors
    ///
    /// Forwarded spectral-comparison errors.
    pub fn ingest_window(&mut self, window: &VoltageTrace) -> Result<Option<Alarm>, TrustError> {
        let _span = telemetry::span("ingest_window");
        let Some(det) = &self.spectral else {
            return Ok(None);
        };
        let anomalies = det.compare(window)?;
        let idx = self.windows_seen;
        self.windows_seen += 1;
        telemetry::counter("monitor.windows", 1);
        for a in &anomalies {
            self.recent_spots.push(SpotSample {
                window_index: idx,
                frequency_hz: a.frequency_hz,
                suspect_magnitude: a.suspect_magnitude,
            });
        }
        if let Some(&top) = anomalies.first() {
            let alarm = Alarm::Spectral {
                anomaly: top,
                spot_count: anomalies.len(),
                correlation_id: telemetry::next_correlation_id(),
            };
            Ok(Some(self.record_alarm(alarm)))
        } else {
            Ok(None)
        }
    }

    /// All alarms raised so far, in order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// The forensic bundle of every alarm raised so far, in order —
    /// parallel to [`Self::alarms`] and keyed by correlation id.
    pub fn forensics(&self) -> &[AlarmRecord] {
        &self.forensics
    }

    /// Number of per-encryption traces ingested.
    pub fn traces_seen(&self) -> u64 {
        self.traces_seen
    }

    /// Number of continuous windows ingested through the spectral path.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Fraction of ingested traces that raised a time-domain alarm.
    pub fn alarm_rate(&self) -> f64 {
        if self.traces_seen == 0 {
            return 0.0;
        }
        let td = self
            .alarms
            .iter()
            .filter(|a| matches!(a, Alarm::TimeDomain { .. }))
            .count();
        td as f64 / self.traces_seen as f64
    }

    /// Clears the alarm log and its forensic bundles (the paper's
    /// "further investigations" step acknowledges alarms).
    pub fn acknowledge_alarms(&mut self) {
        self.alarms.clear();
        self.forensics.clear();
    }

    /// The fitted fingerprint.
    pub fn fingerprint(&self) -> &GoldenFingerprint {
        &self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::TraceSet;
    use crate::fingerprint::FingerprintConfig;
    use crate::spectral::SpectralConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 9.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    fn monitor() -> TrustMonitor {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        TrustMonitor::new(fp, None)
    }

    #[test]
    fn clean_traces_raise_no_alarm() {
        let mut m = monitor();
        for t in synthetic_set(8, 1.0, 2).traces() {
            assert!(m.ingest_trace(t).unwrap().is_none());
        }
        assert_eq!(m.alarms().len(), 0);
        assert_eq!(m.traces_seen(), 8);
        assert_eq!(m.alarm_rate(), 0.0);
    }

    #[test]
    fn anomalous_traces_raise_time_domain_alarms() {
        let mut m = monitor();
        for t in synthetic_set(4, 1.4, 3).traces() {
            let alarm = m.ingest_trace(t).unwrap();
            assert!(matches!(alarm, Some(Alarm::TimeDomain { .. })));
        }
        assert_eq!(m.alarms().len(), 4);
        assert!((m.alarm_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alarm_indices_are_monotonic() {
        let mut m = monitor();
        let _ = m
            .ingest_trace(&synthetic_set(1, 1.0, 4).traces()[0])
            .unwrap();
        let a = m
            .ingest_trace(&synthetic_set(1, 1.5, 5).traces()[0])
            .unwrap();
        match a {
            Some(Alarm::TimeDomain { trace_index, .. }) => assert_eq!(trace_index, 1),
            other => panic!("expected time-domain alarm, got {other:?}"),
        }
    }

    #[test]
    fn spectral_window_path_raises_alarms() {
        let fs = 640e6;
        let tone = |freqs: &[(f64, f64)], seed: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            VoltageTrace::new(
                (0..16384)
                    .map(|i| {
                        let t = i as f64 / fs;
                        freqs
                            .iter()
                            .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                            .sum::<f64>()
                            + 0.01 * rng.gen_range(-1.0..1.0)
                    })
                    .collect(),
                fs,
            )
        };
        let golden_window = tone(&[(10e6, 1.0)], 1);
        let det = SpectralDetector::fit(&golden_window, SpectralConfig::default()).unwrap();
        let fpset = synthetic_set(4, 1.0, 1);
        let fp = GoldenFingerprint::fit(&fpset, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::new(fp, Some(det));
        assert!(m.ingest_window(&tone(&[(10e6, 1.0)], 2)).unwrap().is_none());
        let alarm = m
            .ingest_window(&tone(&[(10e6, 1.0), (25e6, 0.4)], 3))
            .unwrap();
        assert!(matches!(alarm, Some(Alarm::Spectral { .. })));
        assert_eq!(m.alarms().len(), 1);
        m.acknowledge_alarms();
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn monitor_without_spectral_detector_ignores_windows() {
        let mut m = monitor();
        let window = VoltageTrace::new(vec![0.0; 1024], 640e6);
        assert!(m.ingest_window(&window).unwrap().is_none());
    }

    #[test]
    fn alarms_capture_a_forensic_ring_with_the_offending_distance() {
        let mut m = monitor().with_forensic_depth(4);
        for t in synthetic_set(3, 1.0, 7).traces() {
            assert!(m.ingest_trace(t).unwrap().is_none());
        }
        let alarm = m
            .ingest_trace(&synthetic_set(1, 1.5, 8).traces()[0])
            .unwrap()
            .expect("anomaly must alarm");
        assert_eq!(m.forensics().len(), 1);
        let record = &m.forensics()[0];
        assert_eq!(record.correlation_id, alarm.correlation_id());
        assert_eq!(record.alarm, alarm);
        // Ring depth 4: the last clean distances plus the offender.
        assert_eq!(record.recent_distances.len(), 4);
        let last = record.recent_distances.last().unwrap();
        assert_eq!(last.trace_index, 3);
        match alarm {
            Alarm::TimeDomain { distance, .. } => assert_eq!(last.distance, distance),
            other => panic!("expected time-domain alarm, got {other:?}"),
        }
        let json = record.to_json();
        assert!(json.contains("\"kind\":\"time_domain\""));
        assert!(json.contains("\"recent_distances\":["));
        m.acknowledge_alarms();
        assert!(m.forensics().is_empty());
    }

    #[test]
    fn correlation_ids_are_unique_and_monotonic_across_monitors() {
        let mut a = monitor();
        let mut b = monitor();
        let mut ids = Vec::new();
        for seed in 0..3 {
            for m in [&mut a, &mut b] {
                if let Some(alarm) = m
                    .ingest_trace(&synthetic_set(1, 1.5, 40 + seed).traces()[0])
                    .unwrap()
                {
                    ids.push(alarm.correlation_id());
                }
            }
        }
        assert_eq!(ids.len(), 6);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids {ids:?}");
    }

    #[test]
    fn alarm_equality_ignores_the_correlation_id() {
        let a = Alarm::TimeDomain {
            trace_index: 1,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 10,
        };
        let b = Alarm::TimeDomain {
            trace_index: 1,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 99,
        };
        assert_eq!(a, b);
        let c = Alarm::TimeDomain {
            trace_index: 2,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 10,
        };
        assert_ne!(a, c);
    }
}
