//! The runtime trust monitor — the data-analysis module of paper Fig. 1.
//!
//! "The proposed framework works in parallel with the circuit's normal
//! execution hence there is no runtime performance degradation. […] The
//! monitor keeps reading the EM sensor output in the format of voltages"
//! and triggers an alarm once the analysis detects Trojans or attacks.

use crate::fingerprint::GoldenFingerprint;
use crate::spectral::{SpectralAnomaly, SpectralDetector};
use crate::TrustError;
use emtrust_em::emf::VoltageTrace;

/// An alarm raised by the monitor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Alarm {
    /// A trace's Euclidean distance exceeded the Eq. 1 threshold.
    TimeDomain {
        /// Index of the offending trace (monotonic ingest counter).
        trace_index: u64,
        /// Measured distance.
        distance: f64,
        /// Threshold in effect.
        threshold: f64,
    },
    /// The spectrum grew an anomalous spot.
    Spectral {
        /// The strongest offending spot.
        anomaly: SpectralAnomaly,
        /// Total anomalous spots in the window.
        spot_count: usize,
    },
}

/// The runtime monitor: consumes sensor output, raises [`Alarm`]s.
#[derive(Debug)]
pub struct TrustMonitor {
    fingerprint: GoldenFingerprint,
    spectral: Option<SpectralDetector>,
    traces_seen: u64,
    alarms: Vec<Alarm>,
}

impl TrustMonitor {
    /// Creates a monitor from a fitted fingerprint and an optional
    /// spectral detector.
    pub fn new(fingerprint: GoldenFingerprint, spectral: Option<SpectralDetector>) -> Self {
        Self {
            fingerprint,
            spectral,
            traces_seen: 0,
            alarms: Vec::new(),
        }
    }

    /// Ingests one per-encryption trace; returns the alarm if one fired.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length).
    pub fn ingest_trace(&mut self, samples: &[f64]) -> Result<Option<Alarm>, TrustError> {
        let verdict = self.fingerprint.evaluate(samples)?;
        let idx = self.traces_seen;
        self.traces_seen += 1;
        if verdict.trojan_suspected {
            let alarm = Alarm::TimeDomain {
                trace_index: idx,
                distance: verdict.distance,
                threshold: verdict.threshold,
            };
            self.alarms.push(alarm.clone());
            Ok(Some(alarm))
        } else {
            Ok(None)
        }
    }

    /// Ingests a batch of per-encryption traces: evaluation fans across
    /// the fingerprint's worker pool, then verdicts are merged serially in
    /// trace order, so the alarm log, trace indices, and counters end up
    /// exactly as if [`Self::ingest_trace`] had been called on each trace
    /// in order. Returns the alarms this batch raised, in order.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length). On error the
    /// monitor is unchanged — no trace of the batch is counted.
    pub fn ingest_batch(&mut self, traces: &[Vec<f64>]) -> Result<Vec<Alarm>, TrustError> {
        let verdicts = self.fingerprint.evaluate_batch(traces)?;
        let mut raised = Vec::new();
        for verdict in verdicts {
            let idx = self.traces_seen;
            self.traces_seen += 1;
            if verdict.trojan_suspected {
                let alarm = Alarm::TimeDomain {
                    trace_index: idx,
                    distance: verdict.distance,
                    threshold: verdict.threshold,
                };
                self.alarms.push(alarm.clone());
                raised.push(alarm);
            }
        }
        Ok(raised)
    }

    /// Ingests a continuous monitoring window for spectral inspection;
    /// returns the alarm if one fired. No-op (returns `Ok(None)`) when no
    /// spectral detector is installed.
    ///
    /// # Errors
    ///
    /// Forwarded spectral-comparison errors.
    pub fn ingest_window(&mut self, window: &VoltageTrace) -> Result<Option<Alarm>, TrustError> {
        let Some(det) = &self.spectral else {
            return Ok(None);
        };
        let anomalies = det.compare(window)?;
        if let Some(&top) = anomalies.first() {
            let alarm = Alarm::Spectral {
                anomaly: top,
                spot_count: anomalies.len(),
            };
            self.alarms.push(alarm.clone());
            Ok(Some(alarm))
        } else {
            Ok(None)
        }
    }

    /// All alarms raised so far, in order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Number of per-encryption traces ingested.
    pub fn traces_seen(&self) -> u64 {
        self.traces_seen
    }

    /// Fraction of ingested traces that raised a time-domain alarm.
    pub fn alarm_rate(&self) -> f64 {
        if self.traces_seen == 0 {
            return 0.0;
        }
        let td = self
            .alarms
            .iter()
            .filter(|a| matches!(a, Alarm::TimeDomain { .. }))
            .count();
        td as f64 / self.traces_seen as f64
    }

    /// Clears the alarm log (the paper's "further investigations" step
    /// acknowledges alarms).
    pub fn acknowledge_alarms(&mut self) {
        self.alarms.clear();
    }

    /// The fitted fingerprint.
    pub fn fingerprint(&self) -> &GoldenFingerprint {
        &self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::TraceSet;
    use crate::fingerprint::FingerprintConfig;
    use crate::spectral::SpectralConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 9.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    fn monitor() -> TrustMonitor {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        TrustMonitor::new(fp, None)
    }

    #[test]
    fn clean_traces_raise_no_alarm() {
        let mut m = monitor();
        for t in synthetic_set(8, 1.0, 2).traces() {
            assert!(m.ingest_trace(t).unwrap().is_none());
        }
        assert_eq!(m.alarms().len(), 0);
        assert_eq!(m.traces_seen(), 8);
        assert_eq!(m.alarm_rate(), 0.0);
    }

    #[test]
    fn anomalous_traces_raise_time_domain_alarms() {
        let mut m = monitor();
        for t in synthetic_set(4, 1.4, 3).traces() {
            let alarm = m.ingest_trace(t).unwrap();
            assert!(matches!(alarm, Some(Alarm::TimeDomain { .. })));
        }
        assert_eq!(m.alarms().len(), 4);
        assert!((m.alarm_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alarm_indices_are_monotonic() {
        let mut m = monitor();
        let _ = m
            .ingest_trace(&synthetic_set(1, 1.0, 4).traces()[0])
            .unwrap();
        let a = m
            .ingest_trace(&synthetic_set(1, 1.5, 5).traces()[0])
            .unwrap();
        match a {
            Some(Alarm::TimeDomain { trace_index, .. }) => assert_eq!(trace_index, 1),
            other => panic!("expected time-domain alarm, got {other:?}"),
        }
    }

    #[test]
    fn spectral_window_path_raises_alarms() {
        let fs = 640e6;
        let tone = |freqs: &[(f64, f64)], seed: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            VoltageTrace::new(
                (0..16384)
                    .map(|i| {
                        let t = i as f64 / fs;
                        freqs
                            .iter()
                            .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                            .sum::<f64>()
                            + 0.01 * rng.gen_range(-1.0..1.0)
                    })
                    .collect(),
                fs,
            )
        };
        let golden_window = tone(&[(10e6, 1.0)], 1);
        let det = SpectralDetector::fit(&golden_window, SpectralConfig::default()).unwrap();
        let fpset = synthetic_set(4, 1.0, 1);
        let fp = GoldenFingerprint::fit(&fpset, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::new(fp, Some(det));
        assert!(m.ingest_window(&tone(&[(10e6, 1.0)], 2)).unwrap().is_none());
        let alarm = m
            .ingest_window(&tone(&[(10e6, 1.0), (25e6, 0.4)], 3))
            .unwrap();
        assert!(matches!(alarm, Some(Alarm::Spectral { .. })));
        assert_eq!(m.alarms().len(), 1);
        m.acknowledge_alarms();
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn monitor_without_spectral_detector_ignores_windows() {
        let mut m = monitor();
        let window = VoltageTrace::new(vec![0.0; 1024], 640e6);
        assert!(m.ingest_window(&window).unwrap().is_none());
    }
}
