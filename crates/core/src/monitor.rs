//! The runtime trust monitor — the data-analysis module of paper Fig. 1.
//!
//! "The proposed framework works in parallel with the circuit's normal
//! execution hence there is no runtime performance degradation. […] The
//! monitor keeps reading the EM sensor output in the format of voltages"
//! and triggers an alarm once the analysis detects Trojans or attacks.
//!
//! [`TrustMonitor`] is the legacy two-detector API, kept as a thin
//! compatibility wrapper over a [`crate::pipeline::DetectionPipeline`]
//! holding an [`crate::detector::EuclideanDetector`], optionally a
//! [`crate::detector::SpectralWindowDetector`], and
//! [`crate::fusion::FusionPolicy::Or`]. The
//! wrapper translates the pipeline's generic outcomes back into the
//! historical [`Alarm`] shapes and keeps the forensic rings those alarms
//! snapshot; every counter, telemetry event, and alarm decision is
//! bit-identical to the pre-pipeline monitor. New code composing its own
//! detector set should use the pipeline directly.

use crate::detector::ScoreDetail;
use crate::fingerprint::GoldenFingerprint;
use crate::fusion::FusionPolicy;
use crate::health::{HealthConfig, HealthTracker, SensorHealth};
use crate::persistence::{PersistenceConfig, SpectralPersistenceDetector};
use crate::pipeline::{DetectionPipeline, TraceOutcome, WindowOutcome};
use crate::sanitize::{TraceSanitizer, TraceVerdict};
use crate::spectral::{SpectralAnomaly, SpectralDetector};
use crate::TrustError;
use emtrust_em::emf::VoltageTrace;
use emtrust_telemetry::sink::{json_escape, json_number};
use emtrust_telemetry::{DecisionRecord, FlightWindow, ForensicsConfig, LabelSet, RingBuffer};

/// An alarm raised by the monitor.
///
/// Every alarm carries a process-unique, strictly monotonic
/// `correlation_id` that ties it to its [`AlarmRecord`] forensic bundle
/// and to any telemetry events it emitted. Correlation ids are forensic
/// metadata, not part of the detection result: [`PartialEq`] for `Alarm`
/// deliberately ignores them, so replayed runs compare equal alarm for
/// alarm even though each run draws fresh ids.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Alarm {
    /// A trace's Euclidean distance exceeded the Eq. 1 threshold.
    TimeDomain {
        /// Index of the offending trace (monotonic ingest counter).
        trace_index: u64,
        /// Measured distance.
        distance: f64,
        /// Threshold in effect.
        threshold: f64,
        /// Forensic correlation id (see [`AlarmRecord`]).
        correlation_id: u64,
    },
    /// The spectrum grew an anomalous spot.
    Spectral {
        /// The strongest offending spot.
        anomaly: SpectralAnomaly,
        /// Total anomalous spots in the window.
        spot_count: usize,
        /// Forensic correlation id (see [`AlarmRecord`]).
        correlation_id: u64,
    },
}

impl Alarm {
    /// The forensic correlation id this alarm was stamped with.
    pub fn correlation_id(&self) -> u64 {
        match self {
            Alarm::TimeDomain { correlation_id, .. } | Alarm::Spectral { correlation_id, .. } => {
                *correlation_id
            }
        }
    }
}

impl PartialEq for Alarm {
    /// Detection-level equality: compares what was detected, ignoring the
    /// per-run `correlation_id`.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Alarm::TimeDomain {
                    trace_index: i1,
                    distance: d1,
                    threshold: t1,
                    ..
                },
                Alarm::TimeDomain {
                    trace_index: i2,
                    distance: d2,
                    threshold: t2,
                    ..
                },
            ) => i1 == i2 && d1 == d2 && t1 == t2,
            (
                Alarm::Spectral {
                    anomaly: a1,
                    spot_count: n1,
                    ..
                },
                Alarm::Spectral {
                    anomaly: a2,
                    spot_count: n2,
                    ..
                },
            ) => a1 == a2 && n1 == n2,
            _ => false,
        }
    }
}

/// One recent time-domain observation held in the forensic ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSample {
    /// Ingest index of the trace.
    pub trace_index: u64,
    /// Euclidean distance to the golden centroid.
    pub distance: f64,
}

/// One recent spectral observation held in the forensic ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotSample {
    /// Ingest index of the continuous window.
    pub window_index: u64,
    /// Spot frequency in hertz.
    pub frequency_hz: f64,
    /// Suspect magnitude at that bin.
    pub suspect_magnitude: f64,
}

/// The post-mortem bundle captured at the instant an alarm fired: the
/// alarm itself plus the last-`N` ring of distances and spectral spots
/// that preceded it (the offending observation included).
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmRecord {
    /// The alarm's correlation id (same value as the alarm's).
    pub correlation_id: u64,
    /// The alarm as raised.
    pub alarm: Alarm,
    /// Recent distances, oldest first; the last entry is the offending
    /// trace for time-domain alarms.
    pub recent_distances: Vec<DistanceSample>,
    /// Recent spectral spots, oldest first.
    pub recent_spots: Vec<SpotSample>,
}

impl AlarmRecord {
    /// Renders the bundle as one self-contained JSON object — the
    /// post-mortem format the `exp_*` binaries dump.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let kind = match &self.alarm {
            Alarm::TimeDomain { .. } => "time_domain",
            Alarm::Spectral { .. } => "spectral",
        };
        let mut out = format!(
            "{{\"correlation_id\":{},\"kind\":\"{}\"",
            self.correlation_id,
            json_escape(kind)
        );
        match &self.alarm {
            Alarm::TimeDomain {
                trace_index,
                distance,
                threshold,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"trace_index\":{trace_index},\"distance\":{},\"threshold\":{}",
                    json_number(*distance),
                    json_number(*threshold)
                );
            }
            Alarm::Spectral {
                anomaly,
                spot_count,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"spot_count\":{spot_count},\"frequency_hz\":{},\"suspect_magnitude\":{}",
                    json_number(anomaly.frequency_hz),
                    json_number(anomaly.suspect_magnitude)
                );
            }
        }
        out.push_str(",\"recent_distances\":[");
        for (i, s) in self.recent_distances.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace_index\":{},\"distance\":{}}}",
                s.trace_index,
                json_number(s.distance)
            );
        }
        out.push_str("],\"recent_spots\":[");
        for (i, s) in self.recent_spots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"window_index\":{},\"frequency_hz\":{},\"suspect_magnitude\":{}}}",
                s.window_index,
                json_number(s.frequency_hz),
                json_number(s.suspect_magnitude)
            );
        }
        out.push_str("]}");
        out
    }
}

/// The sanitized outcome of ingesting one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The sanitizer's classification (always [`TraceVerdict::Clean`]
    /// when no sanitizer is installed).
    pub verdict: TraceVerdict,
    /// The alarm this trace raised, if it was scored and crossed the
    /// threshold. Rejected traces never alarm.
    pub alarm: Option<Alarm>,
    /// Sensor health after absorbing this trace's outcome.
    pub health: SensorHealth,
}

/// The sanitized outcome of ingesting a batch of traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchIngest {
    /// One report per input trace, in trace order.
    pub reports: Vec<IngestReport>,
    /// The alarms the batch raised, in trace order (a flattened view of
    /// the reports' alarms).
    pub alarms: Vec<Alarm>,
}

impl BatchIngest {
    /// Number of traces the sanitizer passed as clean.
    pub fn clean(&self) -> usize {
        self.reports.iter().filter(|r| r.verdict.is_clean()).count()
    }

    /// Number of traces scored despite mild defects.
    pub fn degraded(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.verdict.is_degraded())
            .count()
    }

    /// Number of traces excluded from scoring.
    pub fn rejected(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.verdict.is_rejected())
            .count()
    }
}

/// Fluent constructor for [`TrustMonitor`] — obtained from
/// [`TrustMonitor::builder`], which takes the one required ingredient
/// (the fitted fingerprint). Everything else is opt-in:
///
/// ```no_run
/// # use emtrust::monitor::TrustMonitor;
/// # use emtrust::fusion::FusionPolicy;
/// # fn demo(fp: emtrust::fingerprint::GoldenFingerprint,
/// #         det: emtrust::spectral::SpectralDetector) {
/// let monitor = TrustMonitor::builder(fp)
///     .with_spectral(det)
///     .with_fusion(FusionPolicy::Or)
///     .build();
/// # let _ = monitor;
/// # }
/// ```
///
/// With only the fingerprint (optionally plus `with_spectral`), the
/// built monitor is bit-identical to the paper's fixed two-detector
/// data-analysis module.
#[derive(Debug)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct TrustMonitorBuilder {
    fingerprint: GoldenFingerprint,
    spectral: Option<SpectralDetector>,
    persistence: Option<PersistenceConfig>,
    fusion: FusionPolicy,
    forensic_depth: usize,
    sanitizer: Option<TraceSanitizer>,
    health: Option<HealthConfig>,
    labels: LabelSet,
    decision_forensics: Option<ForensicsConfig>,
}

impl TrustMonitorBuilder {
    /// Adds the golden-referenced spectral window detector (paper
    /// §IV-C's spectrum comparison).
    pub fn with_spectral(mut self, detector: SpectralDetector) -> Self {
        self.spectral = Some(detector);
        self
    }

    /// Adds the reference-free spectral persistence detector. Its votes
    /// feed the pipeline's fusion and counters; the legacy
    /// [`Alarm::Spectral`] shape is still only raised for windows carrying
    /// a golden-referenced spectral vote.
    pub fn with_persistence(mut self, config: PersistenceConfig) -> Self {
        self.persistence = Some(config);
        self
    }

    /// Sets the fusion policy combining the detectors' votes
    /// ([`FusionPolicy::Or`] by default — the legacy behaviour).
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.fusion = fusion;
        self
    }

    /// Sets the depth of the forensic rings
    /// ([`TrustMonitor::DEFAULT_FORENSIC_DEPTH`] by default).
    pub fn with_forensic_depth(mut self, depth: usize) -> Self {
        self.forensic_depth = depth;
        self
    }

    /// Installs a trace sanitizer on the ingestion path (see
    /// [`TrustMonitor::with_sanitizer`]).
    pub fn with_sanitizer(mut self, sanitizer: TraceSanitizer) -> Self {
        self.sanitizer = Some(sanitizer);
        self
    }

    /// Replaces the sensor-health tracker's configuration (see
    /// [`TrustMonitor::with_health_config`]).
    pub fn with_health_config(mut self, config: HealthConfig) -> Self {
        self.health = Some(config);
        self
    }

    /// Stamps a `chip_id` identity label on every metric series and
    /// decision record this monitor emits (shorthand for
    /// [`Self::with_labels`] with a single pair).
    pub fn with_chip_id(self, chip_id: &str) -> Self {
        let labels = self.labels.with("chip_id", chip_id);
        self.with_labels(labels)
    }

    /// Sets the full bounded identity label set (`chip_id`, `tile`,
    /// deployment site, …) stamped on labeled metric series and decision
    /// records.
    pub fn with_labels(mut self, labels: LabelSet) -> Self {
        self.labels = labels;
        self
    }

    /// Enables decision forensics: a bounded per-decision record log and
    /// the alarm flight recorder (see [`DetectionPipeline::decisions`]).
    pub fn with_forensics(mut self, config: ForensicsConfig) -> Self {
        self.decision_forensics = Some(config);
        self
    }

    /// Assembles the monitor. Detector registration order (and hence
    /// vote order) is fixed: Euclidean, then spectral, then persistence.
    pub fn build(self) -> TrustMonitor {
        let mut builder = DetectionPipeline::builder()
            .detector(Box::new(crate::detector::EuclideanDetector::new(
                self.fingerprint.clone(),
            )))
            .fusion(self.fusion)
            .labels(self.labels);
        if let Some(cfg) = self.decision_forensics {
            builder = builder.forensics(cfg);
        }
        if let Some(det) = self.spectral {
            builder = builder.detector(Box::new(crate::detector::SpectralWindowDetector::new(det)));
        }
        if let Some(cfg) = self.persistence {
            builder = builder.detector(Box::new(SpectralPersistenceDetector::new(cfg)));
        }
        let mut pipeline = builder.build();
        if let Some(s) = self.sanitizer {
            pipeline.install_sanitizer(s);
        }
        if let Some(h) = self.health {
            pipeline.set_health_config(h);
        }
        TrustMonitor {
            pipeline,
            fingerprint: self.fingerprint,
            alarms: Vec::new(),
            recent_distances: RingBuffer::new(self.forensic_depth),
            recent_spots: RingBuffer::new(self.forensic_depth),
            forensics: Vec::new(),
        }
    }
}

/// The runtime monitor: consumes sensor output, raises [`Alarm`]s.
///
/// A compatibility wrapper over [`DetectionPipeline`] — see the module
/// docs for the exact composition.
#[derive(Debug)]
pub struct TrustMonitor {
    pipeline: DetectionPipeline,
    /// The wrapper keeps its own copy of the fitted fingerprint so the
    /// historical [`Self::fingerprint`] accessor stays infallible.
    fingerprint: GoldenFingerprint,
    alarms: Vec<Alarm>,
    recent_distances: RingBuffer<DistanceSample>,
    recent_spots: RingBuffer<SpotSample>,
    forensics: Vec<AlarmRecord>,
}

impl TrustMonitor {
    /// Default depth of the forensic rings (last `N` observations kept).
    pub const DEFAULT_FORENSIC_DEPTH: usize = 32;

    /// Starts a fluent builder from the one required ingredient: the
    /// fitted golden fingerprint. See [`TrustMonitorBuilder`].
    pub fn builder(fingerprint: GoldenFingerprint) -> TrustMonitorBuilder {
        TrustMonitorBuilder {
            fingerprint,
            spectral: None,
            persistence: None,
            fusion: FusionPolicy::Or,
            forensic_depth: Self::DEFAULT_FORENSIC_DEPTH,
            sanitizer: None,
            health: None,
            labels: LabelSet::new(),
            decision_forensics: None,
        }
    }

    /// Resizes the forensic rings to hold the last `depth` observations
    /// (clamped ≥ 1). Intended at construction time; resizing mid-run
    /// drops the rings' current contents.
    pub fn with_forensic_depth(mut self, depth: usize) -> Self {
        self.recent_distances = RingBuffer::new(depth);
        self.recent_spots = RingBuffer::new(depth);
        self
    }

    /// Installs a trace sanitizer on the ingestion path. If the
    /// sanitizer carries no expected length it inherits the
    /// fingerprint's fit length, so mis-sized traces are rejected before
    /// scoring instead of erroring out of it.
    pub fn with_sanitizer(mut self, sanitizer: TraceSanitizer) -> Self {
        self.pipeline.install_sanitizer(sanitizer);
        self
    }

    /// Replaces the sensor-health tracker's configuration (resets the
    /// tracker; intended at construction time).
    pub fn with_health_config(mut self, config: HealthConfig) -> Self {
        self.pipeline.set_health_config(config);
        self
    }

    /// Appends an alarm to the log with its forensic ring snapshot.
    fn log_alarm(&mut self, alarm: Alarm) -> Alarm {
        self.forensics.push(AlarmRecord {
            correlation_id: alarm.correlation_id(),
            alarm: alarm.clone(),
            recent_distances: self.recent_distances.to_vec(),
            recent_spots: self.recent_spots.to_vec(),
        });
        self.alarms.push(alarm.clone());
        alarm
    }

    /// Translates a scored trace outcome into the legacy shape: feeds
    /// the distance ring and re-raises the fused alarm as
    /// [`Alarm::TimeDomain`].
    fn settle_trace(&mut self, outcome: &TraceOutcome) -> Option<Alarm> {
        let trace_index = outcome.index?;
        let vote = outcome.votes.first()?;
        self.recent_distances.push(DistanceSample {
            trace_index,
            distance: vote.score.statistic,
        });
        let fused = outcome.alarm.as_ref()?;
        let alarm = Alarm::TimeDomain {
            trace_index,
            distance: vote.score.statistic,
            threshold: vote.score.threshold,
            correlation_id: fused.correlation_id,
        };
        Some(self.log_alarm(alarm))
    }

    /// Translates a scored window outcome into the legacy shape: feeds
    /// the spot ring from the spectral score's anomaly list and
    /// re-raises the fused alarm as [`Alarm::Spectral`].
    fn settle_window(&mut self, outcome: &WindowOutcome) -> Option<Alarm> {
        let window_index = outcome.index?;
        // The golden-referenced spectral vote, wherever it sits in the
        // vote order (a persistence detector may vote on windows too).
        let vote = outcome
            .votes
            .iter()
            .find(|v| matches!(v.score.detail, ScoreDetail::Spectral { .. }))?;
        let ScoreDetail::Spectral { anomalies } = &vote.score.detail else {
            return None;
        };
        for a in anomalies {
            self.recent_spots.push(SpotSample {
                window_index,
                frequency_hz: a.frequency_hz,
                suspect_magnitude: a.suspect_magnitude,
            });
        }
        let fused = outcome.alarm.as_ref()?;
        let top = *anomalies.first()?;
        let alarm = Alarm::Spectral {
            anomaly: top,
            spot_count: anomalies.len(),
            correlation_id: fused.correlation_id,
        };
        Some(self.log_alarm(alarm))
    }

    /// Ingests one trace through the sanitized path: classify, score if
    /// not rejected, update sensor health. Never fails — traces that
    /// cannot be scored come back [`TraceVerdict::Rejected`].
    pub fn ingest_checked(&mut self, samples: &[f64]) -> IngestReport {
        let outcome = self.pipeline.ingest_trace(samples);
        let alarm = self.settle_trace(&outcome);
        IngestReport {
            verdict: outcome.verdict,
            alarm,
            health: outcome.health,
        }
    }

    /// Ingests a batch through the sanitized path. Screening and scoring
    /// fan across the pipeline's worker pool; outcomes are merged
    /// serially in trace order, so the result is exactly what
    /// [`Self::ingest_checked`] on each trace in order would produce.
    /// Per-trace failures are reported in place — one corrupted trace no
    /// longer aborts its whole batch.
    pub fn ingest_batch_report(&mut self, traces: &[Vec<f64>]) -> BatchIngest {
        let batch = self.pipeline.ingest_batch(traces);
        let mut reports = Vec::with_capacity(batch.outcomes.len());
        let mut alarms = Vec::new();
        for outcome in batch.outcomes {
            let alarm = self.settle_trace(&outcome);
            if let Some(a) = &alarm {
                alarms.push(a.clone());
            }
            reports.push(IngestReport {
                verdict: outcome.verdict,
                alarm,
                health: outcome.health,
            });
        }
        BatchIngest { reports, alarms }
    }

    /// Ingests one per-encryption trace; returns the alarm if one fired.
    /// With a sanitizer installed this delegates to
    /// [`Self::ingest_checked`]; rejected traces return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length) — only without a
    /// sanitizer.
    pub fn ingest_trace(&mut self, samples: &[f64]) -> Result<Option<Alarm>, TrustError> {
        if self.pipeline.sanitizer().is_some() {
            return Ok(self.ingest_checked(samples).alarm);
        }
        let outcome = self.pipeline.try_ingest_trace(samples)?;
        Ok(self.settle_trace(&outcome))
    }

    /// Ingests a batch of per-encryption traces: evaluation fans across
    /// the pipeline's worker pool, then verdicts are merged serially in
    /// trace order, so the alarm log, trace indices, and counters end up
    /// exactly as if [`Self::ingest_trace`] had been called on each trace
    /// in order. Returns the alarms this batch raised, in order.
    ///
    /// With a sanitizer installed this delegates to
    /// [`Self::ingest_batch_report`]: per-trace failures are absorbed as
    /// rejections and the batch never errors.
    ///
    /// # Errors
    ///
    /// Forwarded projection errors (wrong trace length) — only without a
    /// sanitizer, where the monitor is left unchanged and no trace of
    /// the batch is counted.
    pub fn ingest_batch(&mut self, traces: &[Vec<f64>]) -> Result<Vec<Alarm>, TrustError> {
        if self.pipeline.sanitizer().is_some() {
            return Ok(self.ingest_batch_report(traces).alarms);
        }
        let batch = self.pipeline.try_ingest_batch(traces)?;
        let mut raised = Vec::new();
        for outcome in &batch.outcomes {
            if let Some(alarm) = self.settle_trace(outcome) {
                raised.push(alarm);
            }
        }
        Ok(raised)
    }

    /// Ingests a continuous monitoring window through the sanitized
    /// path: structural screening (without the per-encryption length
    /// gate) plus a sample-rate check against the golden spectrum, then
    /// the normal spectral comparison. Rejected windows skip comparison,
    /// feed the health tracker, and never alarm. Never fails.
    pub fn ingest_window_checked(
        &mut self,
        window: &VoltageTrace,
    ) -> (TraceVerdict, Option<Alarm>) {
        let outcome = self.pipeline.ingest_window(window);
        let alarm = self.settle_window(&outcome);
        (outcome.verdict, alarm)
    }

    /// Ingests a continuous monitoring window for spectral inspection;
    /// returns the alarm if one fired. No-op (returns `Ok(None)`) when no
    /// spectral detector is installed. With a sanitizer installed this
    /// delegates to [`Self::ingest_window_checked`] and rejected windows
    /// return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Forwarded spectral-comparison errors — only without a sanitizer.
    pub fn ingest_window(&mut self, window: &VoltageTrace) -> Result<Option<Alarm>, TrustError> {
        if self.pipeline.sanitizer().is_some() {
            return Ok(self.ingest_window_checked(window).1);
        }
        let outcome = self.pipeline.try_ingest_window(window)?;
        Ok(self.settle_window(&outcome))
    }

    /// All alarms raised so far, in order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// The forensic bundle of every alarm raised so far, in order —
    /// parallel to [`Self::alarms`] and keyed by correlation id.
    pub fn forensics(&self) -> &[AlarmRecord] {
        &self.forensics
    }

    /// Number of per-encryption traces scored (sanitizer-rejected traces
    /// are excluded — see [`Self::traces_rejected`]).
    pub fn traces_seen(&self) -> u64 {
        self.pipeline.traces_seen()
    }

    /// Number of continuous windows ingested through the spectral path.
    pub fn windows_seen(&self) -> u64 {
        self.pipeline.windows_seen()
    }

    /// Number of traces the sanitizer rejected (excluded from scoring
    /// and from [`Self::alarm_rate`]).
    pub fn traces_rejected(&self) -> u64 {
        self.pipeline.traces_rejected()
    }

    /// Number of traces scored despite mild defects.
    pub fn traces_degraded(&self) -> u64 {
        self.pipeline.traces_degraded()
    }

    /// Number of continuous windows the sanitizer rejected.
    pub fn windows_rejected(&self) -> u64 {
        self.pipeline.windows_rejected()
    }

    /// Total traces offered to the monitor, scored or rejected.
    pub fn traces_ingested(&self) -> u64 {
        self.pipeline.traces_ingested()
    }

    /// Current sensor-health judgement.
    pub fn health(&self) -> SensorHealth {
        self.pipeline.health()
    }

    /// The health tracker (rejection-rate EWMA, transition log).
    pub fn health_tracker(&self) -> &HealthTracker {
        self.pipeline.health_tracker()
    }

    /// The installed sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&TraceSanitizer> {
        self.pipeline.sanitizer()
    }

    /// Fraction of ingested traces that raised a time-domain alarm.
    pub fn alarm_rate(&self) -> f64 {
        let seen = self.pipeline.traces_seen();
        if seen == 0 {
            return 0.0;
        }
        let td = self
            .alarms
            .iter()
            .filter(|a| matches!(a, Alarm::TimeDomain { .. }))
            .count();
        td as f64 / seen as f64
    }

    /// Clears the alarm log and its forensic bundles (the paper's
    /// "further investigations" step acknowledges alarms).
    pub fn acknowledge_alarms(&mut self) {
        self.alarms.clear();
        self.forensics.clear();
        self.pipeline.acknowledge_alarms();
    }

    /// The fitted fingerprint.
    pub fn fingerprint(&self) -> &GoldenFingerprint {
        &self.fingerprint
    }

    /// The underlying detection pipeline (detector set, fusion policy,
    /// generic outcome counters).
    pub fn pipeline(&self) -> &DetectionPipeline {
        &self.pipeline
    }

    /// Decision records retained by the pipeline's forensic log, oldest
    /// first (empty unless [`TrustMonitorBuilder::with_forensics`] was
    /// used).
    pub fn decisions(&self) -> &[DecisionRecord] {
        self.pipeline.decisions()
    }

    /// Sealed alarm flight windows, oldest first (empty unless
    /// forensics was configured).
    pub fn flight_windows(&self) -> &[FlightWindow] {
        self.pipeline.flight_windows()
    }

    /// Seals every still-open flight window — call at end of campaign
    /// so windows whose post-context never filled become visible.
    pub fn seal_flight_windows(&mut self) {
        self.pipeline.seal_flight_windows();
    }

    /// The identity label set stamped on this monitor's metric series
    /// and decision records (empty unless configured at build time).
    pub fn labels(&self) -> &LabelSet {
        self.pipeline.labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::TraceSet;
    use crate::fingerprint::FingerprintConfig;
    use crate::sanitize::TraceDefect;
    use crate::spectral::SpectralConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 9.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    fn monitor() -> TrustMonitor {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        TrustMonitor::builder(fp).build()
    }

    #[test]
    fn clean_traces_raise_no_alarm() {
        let mut m = monitor();
        for t in synthetic_set(8, 1.0, 2).traces() {
            assert!(m.ingest_trace(t).unwrap().is_none());
        }
        assert_eq!(m.alarms().len(), 0);
        assert_eq!(m.traces_seen(), 8);
        assert_eq!(m.alarm_rate(), 0.0);
    }

    #[test]
    fn anomalous_traces_raise_time_domain_alarms() {
        let mut m = monitor();
        for t in synthetic_set(4, 1.4, 3).traces() {
            let alarm = m.ingest_trace(t).unwrap();
            assert!(matches!(alarm, Some(Alarm::TimeDomain { .. })));
        }
        assert_eq!(m.alarms().len(), 4);
        assert!((m.alarm_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alarm_indices_are_monotonic() {
        let mut m = monitor();
        let _ = m
            .ingest_trace(&synthetic_set(1, 1.0, 4).traces()[0])
            .unwrap();
        let a = m
            .ingest_trace(&synthetic_set(1, 1.5, 5).traces()[0])
            .unwrap();
        match a {
            Some(Alarm::TimeDomain { trace_index, .. }) => assert_eq!(trace_index, 1),
            other => panic!("expected time-domain alarm, got {other:?}"),
        }
    }

    #[test]
    fn spectral_window_path_raises_alarms() {
        let fs = 640e6;
        let tone = |freqs: &[(f64, f64)], seed: u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            VoltageTrace::new(
                (0..16384)
                    .map(|i| {
                        let t = i as f64 / fs;
                        freqs
                            .iter()
                            .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t).sin())
                            .sum::<f64>()
                            + 0.01 * rng.gen_range(-1.0..1.0)
                    })
                    .collect(),
                fs,
            )
        };
        let golden_window = tone(&[(10e6, 1.0)], 1);
        let det = SpectralDetector::fit(&golden_window, SpectralConfig::default()).unwrap();
        let fpset = synthetic_set(4, 1.0, 1);
        let fp = GoldenFingerprint::fit(&fpset, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::builder(fp).with_spectral(det).build();
        assert!(m.ingest_window(&tone(&[(10e6, 1.0)], 2)).unwrap().is_none());
        let alarm = m
            .ingest_window(&tone(&[(10e6, 1.0), (25e6, 0.4)], 3))
            .unwrap();
        assert!(matches!(alarm, Some(Alarm::Spectral { .. })));
        assert_eq!(m.alarms().len(), 1);
        m.acknowledge_alarms();
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn monitor_without_spectral_detector_ignores_windows() {
        let mut m = monitor();
        let window = VoltageTrace::new(vec![0.0; 1024], 640e6);
        assert!(m.ingest_window(&window).unwrap().is_none());
    }

    #[test]
    fn alarms_capture_a_forensic_ring_with_the_offending_distance() {
        let mut m = monitor().with_forensic_depth(4);
        for t in synthetic_set(3, 1.0, 7).traces() {
            assert!(m.ingest_trace(t).unwrap().is_none());
        }
        let alarm = m
            .ingest_trace(&synthetic_set(1, 1.5, 8).traces()[0])
            .unwrap()
            .expect("anomaly must alarm");
        assert_eq!(m.forensics().len(), 1);
        let record = &m.forensics()[0];
        assert_eq!(record.correlation_id, alarm.correlation_id());
        assert_eq!(record.alarm, alarm);
        // Ring depth 4: the last clean distances plus the offender.
        assert_eq!(record.recent_distances.len(), 4);
        let last = record.recent_distances.last().unwrap();
        assert_eq!(last.trace_index, 3);
        match alarm {
            Alarm::TimeDomain { distance, .. } => assert_eq!(last.distance, distance),
            other => panic!("expected time-domain alarm, got {other:?}"),
        }
        let json = record.to_json();
        assert!(json.contains("\"kind\":\"time_domain\""));
        assert!(json.contains("\"recent_distances\":["));
        m.acknowledge_alarms();
        assert!(m.forensics().is_empty());
    }

    #[test]
    fn correlation_ids_are_unique_and_monotonic_across_monitors() {
        let mut a = monitor();
        let mut b = monitor();
        let mut ids = Vec::new();
        for seed in 0..3 {
            for m in [&mut a, &mut b] {
                if let Some(alarm) = m
                    .ingest_trace(&synthetic_set(1, 1.5, 40 + seed).traces()[0])
                    .unwrap()
                {
                    ids.push(alarm.correlation_id());
                }
            }
        }
        assert_eq!(ids.len(), 6);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids {ids:?}");
    }

    #[test]
    fn sanitized_monitor_rejects_corrupt_traces_without_counting_them() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::builder(fp)
            .with_sanitizer(TraceSanitizer::default())
            .build();
        // A clean trace scores normally.
        let clean = synthetic_set(1, 1.0, 2).traces()[0].clone();
        let r = m.ingest_checked(&clean);
        assert!(r.verdict.is_clean());
        assert!(r.alarm.is_none());
        // A NaN-corrupted trace is rejected, not scored.
        let mut bad = clean.clone();
        bad[10] = f64::NAN;
        let r = m.ingest_checked(&bad);
        assert!(matches!(
            r.verdict,
            TraceVerdict::Rejected {
                reason: TraceDefect::NonFinite { .. }
            }
        ));
        // A mis-sized trace is rejected by the inherited expected length.
        let r = m.ingest_checked(&clean[..100]);
        assert!(matches!(
            r.verdict,
            TraceVerdict::Rejected {
                reason: TraceDefect::WrongLength { .. }
            }
        ));
        assert_eq!(m.traces_seen(), 1);
        assert_eq!(m.traces_rejected(), 2);
        assert_eq!(m.traces_ingested(), 3);
        assert_eq!(m.alarm_rate(), 0.0);
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn sanitized_batch_reports_per_trace_and_matches_serial_ingest() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let make = || {
            let mut traces = synthetic_set(4, 1.0, 2).traces().to_vec();
            traces[1][0] = f64::INFINITY; // rejected
            traces.push(synthetic_set(1, 1.5, 3).traces()[0].clone()); // alarms
            traces
        };
        let mut batch_m = TrustMonitor::builder(fp.clone())
            .with_sanitizer(TraceSanitizer::default())
            .build();
        let batch = batch_m.ingest_batch_report(&make());
        assert_eq!(batch.reports.len(), 5);
        assert_eq!(batch.rejected(), 1);
        assert_eq!(batch.clean(), 4);
        assert_eq!(batch.alarms.len(), 1);

        let mut serial_m = TrustMonitor::builder(fp)
            .with_sanitizer(TraceSanitizer::default())
            .build();
        let serial: Vec<IngestReport> = make().iter().map(|t| serial_m.ingest_checked(t)).collect();
        assert_eq!(batch.reports, serial);
        assert_eq!(batch_m.traces_seen(), serial_m.traces_seen());
        assert_eq!(batch_m.alarms(), serial_m.alarms());
    }

    #[test]
    fn sanitizer_does_not_change_clean_run_alarms() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let traces: Vec<Vec<f64>> = synthetic_set(6, 1.0, 2)
            .traces()
            .iter()
            .chain(synthetic_set(2, 1.4, 3).traces())
            .cloned()
            .collect();
        let mut plain = TrustMonitor::builder(fp.clone()).build();
        let mut sanitized = TrustMonitor::builder(fp)
            .with_sanitizer(TraceSanitizer::default())
            .build();
        let a = plain.ingest_batch(&traces).unwrap();
        let b = sanitized.ingest_batch(&traces).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.alarms(), sanitized.alarms());
        assert_eq!(sanitized.traces_rejected(), 0);
        assert_eq!(sanitized.health(), SensorHealth::Healthy);
    }

    #[test]
    fn sustained_rejections_degrade_sensor_health() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::builder(fp)
            .with_sanitizer(TraceSanitizer::default())
            .build();
        let flat = vec![0.5; 256];
        let mut states = Vec::new();
        for _ in 0..40 {
            states.push(m.ingest_checked(&flat).health);
        }
        assert_eq!(m.health(), SensorHealth::SensorFault);
        assert!(states.contains(&SensorHealth::Degraded));
        assert_eq!(m.traces_rejected(), 40);
        assert_eq!(m.traces_seen(), 0);
    }

    #[test]
    fn sanitized_window_path_rejects_rate_mismatch_and_corruption() {
        let fs = 640e6;
        // Tone incommensurate with the sample rate: like any real
        // measurement, no two samples repeat the exact extreme value
        // (a noiseless integer-period sine would trip the saturation
        // screen, and rightly so — 128 bit-identical peaks).
        let window = |rate: f64, corrupt: bool| {
            let mut s: Vec<f64> = (0..4096)
                .map(|i| (2.0 * std::f64::consts::PI * 10.1e6 * i as f64 / fs).sin())
                .collect();
            if corrupt {
                s[7] = f64::NAN;
            }
            VoltageTrace::new(s, rate)
        };
        let det = SpectralDetector::fit(
            &window(fs, false),
            crate::spectral::SpectralConfig::default(),
        )
        .unwrap();
        let fpset = synthetic_set(4, 1.0, 1);
        let fp = GoldenFingerprint::fit(&fpset, FingerprintConfig::default()).unwrap();
        let mut m = TrustMonitor::builder(fp)
            .with_spectral(det)
            .with_sanitizer(TraceSanitizer::default())
            .build();
        // Clean window, matching rate: no alarm, no rejection.
        let (v, a) = m.ingest_window_checked(&window(fs, false));
        assert!(v.is_clean());
        assert!(a.is_none());
        // Wrong sample rate is screened before the detector errors.
        let (v, _) = m.ingest_window_checked(&window(2.0 * fs, false));
        assert!(matches!(
            v,
            TraceVerdict::Rejected {
                reason: TraceDefect::SampleRateMismatch { .. }
            }
        ));
        // Corrupted window is screened structurally.
        let (v, _) = m.ingest_window_checked(&window(fs, true));
        assert!(v.is_rejected());
        assert_eq!(m.windows_rejected(), 2);
        // The plain entry point swallows rejects instead of erroring.
        assert!(m.ingest_window(&window(2.0 * fs, false)).unwrap().is_none());
    }

    #[test]
    fn alarm_equality_ignores_the_correlation_id() {
        let a = Alarm::TimeDomain {
            trace_index: 1,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 10,
        };
        let b = Alarm::TimeDomain {
            trace_index: 1,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 99,
        };
        assert_eq!(a, b);
        let c = Alarm::TimeDomain {
            trace_index: 2,
            distance: 0.5,
            threshold: 0.1,
            correlation_id: 10,
        };
        assert_ne!(a, c);
    }

    #[test]
    fn identically_built_monitors_agree_alarm_for_alarm() {
        let golden = synthetic_set(32, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let mut first = TrustMonitor::builder(fp.clone()).build();
        let mut second = TrustMonitor::builder(fp).build();
        let traces: Vec<Vec<f64>> = synthetic_set(6, 1.0, 2)
            .traces()
            .iter()
            .chain(synthetic_set(2, 1.4, 3).traces())
            .cloned()
            .collect();
        let a = first.ingest_batch(&traces).unwrap();
        let b = second.ingest_batch(&traces).unwrap();
        assert_eq!(a, b);
        assert_eq!(first.alarms(), second.alarms());
        assert_eq!(first.alarm_rate(), second.alarm_rate());
        assert_eq!(first.traces_seen(), second.traces_seen());
    }

    #[test]
    fn builder_registers_persistence_after_spectral() {
        let golden = synthetic_set(8, 1.0, 1);
        let fp = GoldenFingerprint::fit(&golden, FingerprintConfig::default()).unwrap();
        let m = TrustMonitor::builder(fp)
            .with_persistence(crate::persistence::PersistenceConfig::default())
            .with_fusion(FusionPolicy::Or)
            .build();
        assert_eq!(
            m.pipeline().detector_names(),
            vec!["euclidean", "spectral_persistence"]
        );
    }

    #[test]
    fn wrapper_exposes_its_pipeline() {
        let m = monitor();
        assert_eq!(m.pipeline().detector_names(), vec!["euclidean"]);
        assert_eq!(m.pipeline().fusion(), &FusionPolicy::Or);
        assert!(m.pipeline().is_fitted());
    }
}
