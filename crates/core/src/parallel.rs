//! Parallel execution policy for the acquisition → fingerprint → alarm
//! hot paths.
//!
//! The paper's monitor "works in parallel with the circuit's normal
//! execution"; this module makes the *reproduction* itself multi-core.
//! A [`ParallelConfig`] names a worker count and a chunk size; every
//! parallel stage in the workspace splits its work into **fixed chunks
//! whose layout depends only on the chunk size**, so results are
//! bit-identical for every worker count — serial (`workers = 1`) and
//! 8-wide runs produce the same traces, the same distances, and the same
//! alarms in the same order. Randomness is never drawn from worker
//! identity: every trace's noise seed is derived from the campaign seed
//! and the trace index alone.

use emtrust_dsp::parallel as substrate;

/// Worker-pool configuration shared by the parallel hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` runs inline on the caller's thread
    /// (the degenerate pool — no threads are spawned at all).
    pub workers: usize,
    /// Items per work chunk. Chunk boundaries are a pure function of this
    /// value, never of `workers`, which is what keeps parallel runs
    /// bit-identical to serial ones.
    pub chunk_size: usize,
}

impl Default for ParallelConfig {
    /// All available cores, four items per chunk — small enough to load
    /// balance trace collection, large enough to amortize dispatch.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            chunk_size: 4,
        }
    }
}

impl ParallelConfig {
    /// A configuration that runs everything inline on one thread.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            chunk_size: 4,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the chunk size (clamped to at least 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Self-tunes the configuration for a workload of `n_items` items.
    ///
    /// The policy:
    ///
    /// - **Workers** are clamped to the host's available parallelism and
    ///   to the item count — a pool can never go slower than serial by
    ///   oversubscribing cores, and never spawns a thread with nothing
    ///   to do.
    /// - **Chunk size** targets [`Self::CHUNKS_PER_WORKER`] chunks per
    ///   worker so the atomic-cursor scheduler can load-balance uneven
    ///   items, bounded to `1..=MAX_AUTO_CHUNK` so tiny workloads stay
    ///   fine-grained and huge ones still amortize dispatch.
    ///
    /// Chunk boundaries remain a pure function of the chunk size, so a
    /// tuned configuration keeps the workspace-wide guarantee: results
    /// are bit-identical to any other worker count for the same chunk
    /// size, and every chunk-pure stage (trace collection, featurize,
    /// distance scans) is bit-identical for *any* chunk size too.
    pub fn tuned_for(self, n_items: usize) -> Self {
        let host = emtrust_dsp::parallel::host_parallelism();
        let workers = self.workers.min(host).min(n_items.max(1)).max(1);
        let chunk_size =
            (n_items / (workers * Self::CHUNKS_PER_WORKER).max(1)).clamp(1, Self::MAX_AUTO_CHUNK);
        Self {
            workers,
            chunk_size,
        }
    }

    /// [`Self::tuned_for`] starting from the default configuration (all
    /// cores): the zero-knob entry point for batch workloads.
    pub fn auto_for(n_items: usize) -> Self {
        Self::default().tuned_for(n_items)
    }

    /// Target number of chunks per worker picked by [`Self::tuned_for`]:
    /// enough slack for the cursor scheduler to absorb uneven chunk
    /// costs, few enough to keep dispatch overhead negligible.
    pub const CHUNKS_PER_WORKER: usize = 4;

    /// Upper bound on the auto-tuned chunk size.
    pub const MAX_AUTO_CHUNK: usize = 32;

    /// The worker count the substrate will actually use for `n_items`
    /// items after its oversubscription clamp.
    pub fn effective_workers(&self, n_items: usize) -> usize {
        let n_chunks = n_items.div_ceil(self.chunk_size.max(1)).max(1);
        self.workers
            .max(1)
            .min(emtrust_dsp::parallel::host_parallelism())
            .min(n_chunks)
    }

    /// Maps chunk ranges of `0..n_items` with `f` across the pool and
    /// concatenates the chunk outputs in chunk order.
    ///
    /// # Errors
    ///
    /// Forwards the error of the lowest-indexed failing chunk.
    pub fn try_map_chunks<R, E, F>(&self, n_items: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(std::ops::Range<usize>) -> Result<Vec<R>, E> + Sync,
    {
        substrate::chunked_try_map(n_items, self.chunk_size, self.workers, f)
    }

    /// Maps every index of `0..n_items` with `f` across the pool,
    /// preserving index order in the output.
    ///
    /// # Errors
    ///
    /// Forwards the error of the lowest-indexed failing chunk.
    pub fn try_map<R, E, F>(&self, n_items: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        self.try_map_chunks(n_items, |range| range.map(&f).collect())
    }

    /// Maps every index of `0..n_items` with an infallible `f` across the
    /// pool, preserving index order in the output. The per-trace stages
    /// of the detection pipeline (featurize, score) report their failures
    /// as values, so this is their natural fan-out primitive.
    pub fn map<R, F>(&self, n_items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let wrapped: Result<Vec<R>, std::convert::Infallible> = self.try_map(n_items, |i| Ok(f(i)));
        match wrapped {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_every_core() {
        let cfg = ParallelConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.chunk_size, 4);
    }

    #[test]
    fn builders_clamp_to_one() {
        let cfg = ParallelConfig::serial().with_workers(0).with_chunk_size(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.chunk_size, 1);
    }

    #[test]
    fn indexed_map_preserves_order() {
        let cfg = ParallelConfig::default().with_workers(4).with_chunk_size(3);
        let got: Vec<usize> = cfg.try_map::<_, (), _>(20, |i| Ok(i * 2)).unwrap();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn infallible_map_matches_serial() {
        let cfg = ParallelConfig::default().with_workers(4).with_chunk_size(2);
        let got = cfg.map(15, |i| i * i);
        assert_eq!(got, (0..15).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn tuned_config_never_exceeds_items_or_host() {
        let host = emtrust_dsp::parallel::host_parallelism();
        for n_items in [0usize, 1, 2, 3, 7, 32, 1000] {
            let cfg = ParallelConfig::auto_for(n_items);
            assert!(cfg.workers >= 1);
            assert!(cfg.workers <= host, "n_items={n_items}");
            assert!(cfg.workers <= n_items.max(1), "n_items={n_items}");
            assert!(cfg.chunk_size >= 1);
            assert!(cfg.chunk_size <= ParallelConfig::MAX_AUTO_CHUNK);
        }
    }

    #[test]
    fn tuned_map_is_bit_identical_to_serial() {
        let n = 97;
        let serial: Vec<f64> = ParallelConfig::serial().map(n, |i| (i as f64 * 0.3).sin());
        let tuned: Vec<f64> = ParallelConfig::auto_for(n).map(n, |i| (i as f64 * 0.3).sin());
        for (a, b) in serial.iter().zip(&tuned) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn effective_workers_accounts_for_chunks_and_host() {
        let cfg = ParallelConfig::default()
            .with_workers(usize::MAX)
            .with_chunk_size(4);
        let host = emtrust_dsp::parallel::host_parallelism();
        // 8 items in chunks of 4 = 2 chunks; the host cap also applies.
        assert_eq!(cfg.effective_workers(8), host.min(2));
        assert_eq!(ParallelConfig::serial().effective_workers(1000), 1);
        assert_eq!(cfg.effective_workers(0), 1);
    }

    #[test]
    fn errors_pick_the_lowest_chunk() {
        let cfg = ParallelConfig::default().with_workers(8).with_chunk_size(2);
        let got: Result<Vec<usize>, usize> =
            cfg.try_map(50, |i| if i >= 11 { Err(i) } else { Ok(i) });
        // Chunk [10, 12) is the lowest failing chunk; within a chunk the
        // scan is sequential, so index 11 is the reported error.
        assert_eq!(got.unwrap_err(), 11);
    }

    use proptest::prelude::*;

    proptest! {
        /// Auto-tuning never exceeds the host's parallelism or the item
        /// count, and always yields a sane chunk size, no matter the
        /// workload or the (possibly absurd) requested worker count.
        #[test]
        fn tuned_configs_respect_host_and_item_bounds(
            n_items in 0usize..100_000,
            requested in 1usize..4096,
        ) {
            let host = emtrust_dsp::parallel::host_parallelism();
            for cfg in [
                ParallelConfig::auto_for(n_items),
                ParallelConfig::default().with_workers(requested).tuned_for(n_items),
            ] {
                prop_assert!(cfg.workers >= 1);
                prop_assert!(cfg.workers <= host);
                prop_assert!(cfg.workers <= n_items.max(1));
                prop_assert!(cfg.chunk_size >= 1);
                prop_assert!(cfg.chunk_size <= ParallelConfig::MAX_AUTO_CHUNK);
                prop_assert!(cfg.effective_workers(n_items) <= cfg.workers);
            }
        }

        /// An auto-tuned map is bit-identical to the serial path for any
        /// workload size — the determinism guarantee is worker- and
        /// chunk-independent.
        #[test]
        fn tuned_map_is_bit_identical_to_serial_for_any_size(n in 1usize..300) {
            let serial: Vec<f64> =
                ParallelConfig::serial().map(n, |i| (i as f64 * 0.37).sin() * 1e-6);
            let tuned: Vec<f64> =
                ParallelConfig::auto_for(n).map(n, |i| (i as f64 * 0.37).sin() * 1e-6);
            for (a, b) in serial.iter().zip(&tuned) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
