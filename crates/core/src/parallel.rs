//! Parallel execution policy for the acquisition → fingerprint → alarm
//! hot paths.
//!
//! The paper's monitor "works in parallel with the circuit's normal
//! execution"; this module makes the *reproduction* itself multi-core.
//! A [`ParallelConfig`] names a worker count and a chunk size; every
//! parallel stage in the workspace splits its work into **fixed chunks
//! whose layout depends only on the chunk size**, so results are
//! bit-identical for every worker count — serial (`workers = 1`) and
//! 8-wide runs produce the same traces, the same distances, and the same
//! alarms in the same order. Randomness is never drawn from worker
//! identity: every trace's noise seed is derived from the campaign seed
//! and the trace index alone.

use emtrust_dsp::parallel as substrate;

/// Worker-pool configuration shared by the parallel hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` runs inline on the caller's thread
    /// (the degenerate pool — no threads are spawned at all).
    pub workers: usize,
    /// Items per work chunk. Chunk boundaries are a pure function of this
    /// value, never of `workers`, which is what keeps parallel runs
    /// bit-identical to serial ones.
    pub chunk_size: usize,
}

impl Default for ParallelConfig {
    /// All available cores, four items per chunk — small enough to load
    /// balance trace collection, large enough to amortize dispatch.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            chunk_size: 4,
        }
    }
}

impl ParallelConfig {
    /// A configuration that runs everything inline on one thread.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            chunk_size: 4,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the chunk size (clamped to at least 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Maps chunk ranges of `0..n_items` with `f` across the pool and
    /// concatenates the chunk outputs in chunk order.
    ///
    /// # Errors
    ///
    /// Forwards the error of the lowest-indexed failing chunk.
    pub fn try_map_chunks<R, E, F>(&self, n_items: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(std::ops::Range<usize>) -> Result<Vec<R>, E> + Sync,
    {
        substrate::chunked_try_map(n_items, self.chunk_size, self.workers, f)
    }

    /// Maps every index of `0..n_items` with `f` across the pool,
    /// preserving index order in the output.
    ///
    /// # Errors
    ///
    /// Forwards the error of the lowest-indexed failing chunk.
    pub fn try_map<R, E, F>(&self, n_items: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        self.try_map_chunks(n_items, |range| range.map(&f).collect())
    }

    /// Maps every index of `0..n_items` with an infallible `f` across the
    /// pool, preserving index order in the output. The per-trace stages
    /// of the detection pipeline (featurize, score) report their failures
    /// as values, so this is their natural fan-out primitive.
    pub fn map<R, F>(&self, n_items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let wrapped: Result<Vec<R>, std::convert::Infallible> = self.try_map(n_items, |i| Ok(f(i)));
        match wrapped {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_every_core() {
        let cfg = ParallelConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.chunk_size, 4);
    }

    #[test]
    fn builders_clamp_to_one() {
        let cfg = ParallelConfig::serial().with_workers(0).with_chunk_size(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.chunk_size, 1);
    }

    #[test]
    fn indexed_map_preserves_order() {
        let cfg = ParallelConfig::default().with_workers(4).with_chunk_size(3);
        let got: Vec<usize> = cfg.try_map::<_, (), _>(20, |i| Ok(i * 2)).unwrap();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn infallible_map_matches_serial() {
        let cfg = ParallelConfig::default().with_workers(4).with_chunk_size(2);
        let got = cfg.map(15, |i| i * i);
        assert_eq!(got, (0..15).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn errors_pick_the_lowest_chunk() {
        let cfg = ParallelConfig::default().with_workers(8).with_chunk_size(2);
        let got: Result<Vec<usize>, usize> =
            cfg.try_map(50, |i| if i >= 11 { Err(i) } else { Ok(i) });
        // Chunk [10, 12) is the lowest failing chunk; within a chunk the
        // scan is sequential, so index 11 is the reported error.
        assert_eq!(got.unwrap_err(), 11);
    }
}
