//! Multi-sensor EM array with spatial Trojan localization.
//!
//! The paper's single spiral answers *whether* the chip radiates like its
//! golden self; it cannot say *where* the excess comes from. This module
//! tiles the die into an `rows × cols` grid of sub-spirals
//! ([`emtrust_em::array::EmArray`]), runs one [`DetectionPipeline`] per
//! sub-sensor, and fuses the per-tile anomaly margins into a heat map
//! whose score-weighted centroid is mapped back through the
//! [`Floorplan`]'s placement regions — attributing an alarm to the
//! nearest placed module (`trojan1` … `trojan4`, or the AES core
//! itself).
//!
//! Cost discipline: the array shares **one** logic simulation and **one**
//! switching-current synthesis pass per encryption across all `N`
//! sensors; only the per-tile flux weighting, noise, and scoring
//! multiply with `N`. Scoring fans over the same worker pool the
//! single-sensor path uses, and every result is bit-identical for every
//! worker count.
//!
//! The array also works **without any golden model**:
//! [`SensorArray::fit_reference_free`] gives every tile a
//! self-calibrating pipeline (see [`crate::baseline`]) and campaign
//! verdicts come from the [`ConsensusDetector`] — a Trojan's coupling
//! is spatially concentrated near its payload, while sensor faults and
//! global drift lift every tile together, so the `max − median` margin
//! asymmetry separates the two with no reference traces at all.
//!
//! Everything is fronted by [`ArrayConfig`]/[`ArrayBuilder`] — the same
//! consuming-builder idiom as [`crate::monitor::TrustMonitor::builder`] —
//! rather than positional constructors:
//!
//! ```no_run
//! # use emtrust::array::SensorArray;
//! # fn demo(chip: &emtrust_trojan::ProtectedChip) -> Result<(), emtrust::TrustError> {
//! let mut array = SensorArray::builder(chip).with_grid(4, 2)?.build()?;
//! let golden = array.collect(*b"sixteen byte key", 24, None, 42)?;
//! array.fit_golden(&golden)?;
//! # Ok(())
//! # }
//! ```

use crate::acquisition::{TraceSet, T2_LEAK_CURRENT_A};
use crate::attribution::{self, Attribution, CellEvidence};
use crate::baseline::{BaselineSource, CalibrationState, DetectorReadiness, SelfCalibratingConfig};
use crate::detector::{
    Detector, DetectorDomain, DetectorVerdict, EuclideanDetector, FeaturePlan, GoldenContext,
    Score, ScoreDetail,
};
use crate::features::FeatureFrame;
use crate::fingerprint::{FingerprintConfig, GoldenFingerprint};
use crate::fusion::FusionPolicy;
use crate::parallel::ParallelConfig;
use crate::persistence::PersistenceConfig;
use crate::pipeline::{DetectionPipeline, DetectorConfig};
use crate::TrustError;
use emtrust_aes::netlist::run_encryption_with;
use emtrust_dsp::stats::median;
use emtrust_em::array::EmArray;
use emtrust_em::emf::VoltageTrace;
use emtrust_layout::floorplan::{Die, Floorplan};
use emtrust_netlist::library::Library;
use emtrust_power::{ClockConfig, CurrentModel};
use emtrust_sim::ToggleActivity;
use emtrust_telemetry::{self as telemetry, DecisionRecord, ForensicsConfig, LabelSet, TileMargin};
use emtrust_trojan::{ProtectedChip, TrojanKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Geometry and detection knobs of a [`SensorArray`], with defaults
/// matching the single-sensor path wherever they overlap.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Grid rows (south to north).
    pub rows: usize,
    /// Grid columns (west to east).
    pub cols: usize,
    /// Turns per sub-spiral (the single-sensor default is 20; smaller
    /// tiles tolerate fewer turns before the metal-pitch rule bites).
    pub turns: usize,
    /// Per-tile fingerprint fitting configuration.
    pub fingerprint: FingerprintConfig,
    /// Optional reference-free persistence detector added to every
    /// tile's pipeline.
    pub persistence: Option<PersistenceConfig>,
    /// Fusion policy of each tile's pipeline.
    pub fusion: FusionPolicy,
    /// Worker pool shared by collection and scoring.
    pub parallel: ParallelConfig,
    /// Identity labels (`chip_id`, …) stamped on every tile pipeline's
    /// metric series and on array decision records; each tile pipeline
    /// additionally gets its own `tile=rXcY` pair.
    pub labels: LabelSet,
    /// Enables the array's campaign decision log (one
    /// [`DecisionRecord`] with per-tile margins per [`SensorArray::evaluate`]).
    pub forensics: Option<ForensicsConfig>,
    /// Cross-sensor consensus knobs, used when the array is fitted
    /// reference-free ([`SensorArray::fit_reference_free`]).
    pub consensus: ConsensusConfig,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            rows: 2,
            cols: 2,
            turns: 12,
            fingerprint: FingerprintConfig::default(),
            persistence: None,
            fusion: FusionPolicy::Or,
            parallel: ParallelConfig::default(),
            labels: LabelSet::new(),
            forensics: None,
            consensus: ConsensusConfig::default(),
        }
    }
}

/// Fluent constructor for [`SensorArray`] — obtained from
/// [`SensorArray::builder`], which takes the one required ingredient
/// (the chip under test).
#[derive(Debug)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct ArrayBuilder<'c> {
    chip: &'c ProtectedChip,
    config: ArrayConfig,
}

impl<'c> ArrayBuilder<'c> {
    /// Replaces the whole configuration at once.
    pub fn with_config(mut self, config: ArrayConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the grid shape.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if either dimension is zero.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Result<Self, TrustError> {
        if rows == 0 || cols == 0 {
            return Err(TrustError::InvalidParameter {
                what: "array grid needs at least one row and one column",
            });
        }
        self.config.rows = rows;
        self.config.cols = cols;
        Ok(self)
    }

    /// Sets the per-sub-spiral turn count.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if `turns` is zero (the
    /// metal-pitch rule is checked later, against the actual tile size,
    /// at build time).
    pub fn with_turns(mut self, turns: usize) -> Result<Self, TrustError> {
        if turns == 0 {
            return Err(TrustError::InvalidParameter {
                what: "sub-spiral needs at least one turn",
            });
        }
        self.config.turns = turns;
        Ok(self)
    }

    /// Sets the per-tile fingerprint configuration.
    pub fn with_fingerprint(mut self, config: FingerprintConfig) -> Self {
        self.config.fingerprint = config;
        self
    }

    /// Adds the reference-free persistence detector to every tile.
    pub fn with_persistence(mut self, config: PersistenceConfig) -> Self {
        self.config.persistence = Some(config);
        self
    }

    /// Sets each tile pipeline's fusion policy.
    pub fn with_fusion(mut self, fusion: FusionPolicy) -> Self {
        self.config.fusion = fusion;
        self
    }

    /// Sets the worker pool shared by collection and scoring.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Stamps a `chip_id` identity label on every tile pipeline and on
    /// array decision records.
    pub fn with_chip_id(mut self, chip_id: &str) -> Self {
        self.config.labels = self.config.labels.with("chip_id", chip_id);
        self
    }

    /// Sets the full identity label set shared by every tile (each tile
    /// pipeline adds its own `tile=rXcY` pair on top).
    pub fn with_labels(mut self, labels: LabelSet) -> Self {
        self.config.labels = labels;
        self
    }

    /// Enables the array's campaign decision log and per-tile pipeline
    /// forensics.
    pub fn with_forensics(mut self, config: ForensicsConfig) -> Self {
        self.config.forensics = Some(config);
        self
    }

    /// Sets the cross-sensor consensus knobs used by the
    /// reference-free fit path.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the configuration is out of
    /// range.
    pub fn with_consensus(mut self, config: ConsensusConfig) -> Result<Self, TrustError> {
        config.validate()?;
        self.config.consensus = config;
        Ok(self)
    }

    /// Places the chip, tiles the die, and builds every sub-sensor's
    /// coupling machinery. Detection pipelines are created later, by
    /// [`SensorArray::fit_golden`].
    ///
    /// # Errors
    ///
    /// Propagates placement errors and tile-coil design-rule violations
    /// (too many turns for the tile size).
    pub fn build(self) -> Result<SensorArray<'c>, TrustError> {
        let library = Library::generic_180nm();
        let die = Die::for_netlist(self.chip.netlist(), &library, 0.7)?;
        let floorplan = Floorplan::place(self.chip.netlist(), &library, die)?;
        let clock = ClockConfig::reference();
        let model = CurrentModel::new(library, clock);
        let array = EmArray::build(
            self.chip.netlist(),
            &floorplan,
            model,
            self.config.rows,
            self.config.cols,
            self.config.turns,
        )?;
        Ok(SensorArray {
            chip: self.chip,
            floorplan,
            clock,
            array,
            config: self.config,
            pipelines: Vec::new(),
            self_calibrating: false,
            campaigns: 0,
            decisions: Vec::new(),
            decisions_dropped: 0,
        })
    }
}

/// Knobs of the [`ConsensusDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusConfig {
    /// Alarm threshold on the spatial-excess statistic (hottest tile
    /// margin minus the median tile margin). A Trojan perturbs tiles
    /// asymmetrically; sensor faults and global drift lift every tile
    /// together, leaving this statistic near zero.
    pub margin_threshold: f64,
    /// Minimum tile count for a meaningful spatial vote (a single tile
    /// has no spatial contrast).
    pub min_tiles: usize,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        Self {
            margin_threshold: 0.25,
            min_tiles: 2,
        }
    }
}

impl ConsensusConfig {
    /// Checks every invariant the consensus detector relies on.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] naming the violated bound.
    pub fn validate(&self) -> Result<(), TrustError> {
        if !(self.margin_threshold.is_finite() && self.margin_threshold > 0.0) {
            return Err(TrustError::InvalidParameter {
                what: "consensus margin_threshold must be positive and finite",
            });
        }
        if self.min_tiles < 2 {
            return Err(TrustError::InvalidParameter {
                what: "consensus needs at least two tiles for spatial contrast",
            });
        }
        Ok(())
    }
}

/// Cross-sensor consensus detector: votes on the *spatial asymmetry* of
/// a heat map rather than on any single tile's score.
///
/// It consumes a [`FeatureFrame`] whose samples are the per-tile
/// relative margins of one campaign and computes `max − median` over
/// them. A Trojan couples most strongly into the tiles nearest its
/// payload, so its excess is spatially concentrated and the statistic
/// is large; a drifting supply, a temperature ramp, or a common-mode
/// sensor fault lifts every tile together and the statistic stays near
/// zero. This makes the detector reference-free — it needs no golden
/// material, only the geometric prior that real die area is shared.
#[derive(Debug, Clone)]
pub struct ConsensusDetector {
    config: ConsensusConfig,
}

impl ConsensusDetector {
    /// A consensus detector with the given knobs.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the configuration is out of
    /// range.
    pub fn new(config: ConsensusConfig) -> Result<Self, TrustError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in effect.
    pub fn config(&self) -> ConsensusConfig {
        self.config
    }
}

impl Detector for ConsensusDetector {
    fn name(&self) -> &'static str {
        "consensus"
    }

    fn domain(&self) -> DetectorDomain {
        DetectorDomain::PerEncryption
    }

    fn feature_plan(&self) -> FeaturePlan {
        FeaturePlan::default()
    }

    fn fit(&mut self, _ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        // Reference-free: nothing to learn, any context (even an empty
        // one) fits.
        Ok(())
    }

    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        if let BaselineSource::SelfCalibrating(cfg) = source {
            cfg.validate()?;
        }
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        true
    }

    fn readiness(&self) -> DetectorReadiness {
        DetectorReadiness::Ready
    }

    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError> {
        let margins = frame.samples();
        if margins.len() < self.config.min_tiles {
            return Err(TrustError::InvalidParameter {
                what: "consensus frame holds fewer tile margins than min_tiles",
            });
        }
        if margins.iter().any(|m| !m.is_finite()) {
            return Err(TrustError::InvalidParameter {
                what: "consensus tile margins must be finite",
            });
        }
        let max = margins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Score {
            statistic: max - median(margins),
            threshold: self.config.margin_threshold,
            detail: ScoreDetail::None,
        })
    }
}

/// One tile's entry in the localization heat map.
#[derive(Debug, Clone, PartialEq)]
pub struct TileScore {
    /// Grid row of the tile (0 = southmost).
    pub row: usize,
    /// Grid column of the tile (0 = westmost).
    pub col: usize,
    /// Tile centre on the die, in µm.
    pub center_um: (f64, f64),
    /// Mean positive relative Euclidean margin over the tile's suspect
    /// traces: `max(0, (distance − EDth) / |EDth|)` averaged per trace.
    pub margin: f64,
    /// Fraction of the tile's suspect traces that raised a fused alarm.
    pub alarm_rate: f64,
}

/// One floorplan region in the localization ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionScore {
    /// Region name as placed (`"aes"`, `"trojan1"`, …).
    pub region: String,
    /// Distance from the anomaly centroid to the region, in µm (zero if
    /// the centroid lies inside it).
    pub distance_um: f64,
}

/// The array's judgement of one suspect campaign: the per-tile heat map
/// plus its localization.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVerdict {
    /// Per-tile scores, in tile (row-major) order.
    pub heat: Vec<TileScore>,
    /// Score-weighted centroid of the common-mode-removed heat map, in
    /// µm. `None` when no tile carries excess energy (clean campaign).
    pub centroid_um: Option<(f64, f64)>,
    /// Floorplan regions ranked nearest-first from the centroid. Empty
    /// when the campaign is clean.
    pub regions: Vec<RegionScore>,
    /// Whether the campaign is judged suspected: any tile alarm on a
    /// golden-fitted array, the cross-sensor consensus vote on a
    /// reference-free one.
    pub alarmed: bool,
    /// The cross-sensor consensus vote over the per-tile margins.
    /// `None` on golden-fitted arrays and on grids below the consensus
    /// `min_tiles`.
    pub consensus: Option<DetectorVerdict>,
}

impl ArrayVerdict {
    /// The arg-max region — the localization's best guess.
    pub fn top_region(&self) -> Option<&str> {
        self.regions.first().map(|r| r.region.as_str())
    }

    /// Zero-based rank of `region` in the localization (0 = best).
    pub fn region_rank(&self, region: &str) -> Option<usize> {
        self.regions.iter().position(|r| r.region == region)
    }

    /// Whether `region` ranks within the top `k` (`hit@k`).
    pub fn hit_at(&self, region: &str, k: usize) -> bool {
        self.region_rank(region).is_some_and(|r| r < k)
    }
}

/// Fuses per-tile anomaly scores into a die location.
///
/// Two steps: **common-mode removal** (subtract the median tile score,
/// clamp at zero — a Trojan whose payload loads the whole supply net,
/// like T2's leak, lifts every tile; only the spatial excess above that
/// common mode carries location information) and a **score-weighted
/// centroid** of the surviving tiles' centres.
#[derive(Debug, Clone)]
pub struct Localizer {
    centers: Vec<(f64, f64)>,
}

impl Localizer {
    /// A localizer over the given tile centres (µm, tile order).
    pub fn new(centers: Vec<(f64, f64)>) -> Self {
        Self { centers }
    }

    /// Removes the common mode: subtracts the median score and clamps
    /// at zero.
    pub fn whiten(scores: &[f64]) -> Vec<f64> {
        if scores.is_empty() {
            return Vec::new();
        }
        let mut sorted = scores.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        scores.iter().map(|s| (s - median).max(0.0)).collect()
    }

    /// The score-weighted centroid of the whitened heat map, in µm.
    /// `None` if the score vector does not match the tile count or no
    /// tile carries excess energy.
    pub fn centroid(&self, scores: &[f64]) -> Option<(f64, f64)> {
        if scores.len() != self.centers.len() {
            return None;
        }
        let w = Self::whiten(scores);
        let total: f64 = w.iter().sum();
        if total <= 1e-12 {
            return None;
        }
        let x = w
            .iter()
            .zip(&self.centers)
            .map(|(wi, c)| wi * c.0)
            .sum::<f64>()
            / total;
        let y = w
            .iter()
            .zip(&self.centers)
            .map(|(wi, c)| wi * c.1)
            .sum::<f64>()
            / total;
        Some((x, y))
    }

    /// Ranks the floorplan's regions nearest-first from the localized
    /// centroid. Empty when [`Self::centroid`] is undefined.
    pub fn rank(&self, scores: &[f64], floorplan: &Floorplan) -> Vec<RegionScore> {
        match self.centroid(scores) {
            Some((x, y)) => floorplan
                .regions_by_distance(x, y)
                .into_iter()
                .map(|(name, d)| RegionScore {
                    region: name.to_string(),
                    distance_um: d,
                })
                .collect(),
            None => Vec::new(),
        }
    }
}

/// The assembled multi-sensor experiment: one chip, one shared
/// simulation/synthesis path, `rows × cols` sub-sensors each feeding its
/// own detection pipeline.
#[derive(Debug)]
pub struct SensorArray<'c> {
    chip: &'c ProtectedChip,
    floorplan: Floorplan,
    clock: ClockConfig,
    array: EmArray,
    config: ArrayConfig,
    /// One pipeline per tile, in tile order; empty until
    /// [`Self::fit_golden`] or [`Self::fit_reference_free`].
    pipelines: Vec<DetectionPipeline>,
    /// Whether the tile pipelines learn their baselines from live
    /// traffic ([`Self::fit_reference_free`]).
    self_calibrating: bool,
    /// Campaigns evaluated so far (indexes the decision log).
    campaigns: u64,
    /// Bounded campaign decision log (empty unless forensics enabled).
    decisions: Vec<DecisionRecord>,
    /// Campaign records dropped after the log filled.
    decisions_dropped: u64,
}

impl<'c> SensorArray<'c> {
    /// Starts a fluent builder over the chip under test.
    pub fn builder(chip: &'c ProtectedChip) -> ArrayBuilder<'c> {
        ArrayBuilder {
            chip,
            config: ArrayConfig::default(),
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.array.cols()
    }

    /// Number of sub-sensors.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the array has no sensors (never true once built).
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// The chip under test.
    pub fn chip(&self) -> &ProtectedChip {
        self.chip
    }

    /// The floorplan in use.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// The configuration the array was built with.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The underlying EM array (tile geometry, coupling maps).
    pub fn em_array(&self) -> &EmArray {
        &self.array
    }

    /// The per-tile pipelines (empty until [`Self::fit_golden`]).
    pub fn pipelines(&self) -> &[DetectionPipeline] {
        &self.pipelines
    }

    /// Whether [`Self::fit_golden`] or [`Self::fit_reference_free`] has
    /// run.
    pub fn is_fitted(&self) -> bool {
        self.pipelines.len() == self.array.len()
    }

    /// Whether the tile pipelines learn their baselines from live
    /// traffic.
    pub fn is_self_calibrating(&self) -> bool {
        self.self_calibrating
    }

    /// Aggregated calibration state across every tile pipeline:
    /// `Armed` once each tile's pipeline is armed, `Calibrating` (with
    /// the armed-tile count) before that. A golden-fitted array is
    /// `Armed` immediately.
    pub fn calibration_state(&self) -> CalibrationState {
        let total = self.pipelines.len();
        let ready = self
            .pipelines
            .iter()
            .filter(|p| p.calibration_state().is_armed())
            .count();
        if total > 0 && ready == total {
            CalibrationState::Armed
        } else {
            CalibrationState::Calibrating { ready, total }
        }
    }

    /// A localizer over this array's tile centres.
    pub fn localizer(&self) -> Localizer {
        Localizer::new(
            self.array
                .tiles()
                .iter()
                .map(|t| {
                    let c = t.center();
                    (c.x, c.y)
                })
                .collect(),
        )
    }

    /// Collects `n_traces` single-encryption traces **per tile** with the
    /// fixed stimulus derived from `seed` — one logic simulation and one
    /// current-synthesis pass per encryption, shared by every tile.
    ///
    /// Seeds mirror the single-sensor bench exactly (campaign seed ⊕
    /// trace-index mix for the noise, `seed ^ 0x97` for the plaintext),
    /// and tile 0's noise salt is zero — so a `1 × 1` array with the
    /// single-sensor turn count reproduces
    /// [`crate::acquisition::TestBench::collect`] bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect(
        &self,
        key: [u8; 16],
        n_traces: usize,
        armed: Option<TrojanKind>,
        seed: u64,
    ) -> Result<Vec<TraceSet>, TrustError> {
        self.collect_with_activity(key, n_traces, armed, seed)
            .map(|(traces, _)| traces)
    }

    /// [`Self::collect`], additionally returning the campaign's
    /// accumulated [`ToggleActivity`] — the switching-activity side of
    /// [`CellEvidence`] for cell-level attribution. The trace sets are
    /// bit-identical to [`Self::collect`]'s (the accumulation reads the
    /// same recorded activity the measurement fan consumes).
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement errors.
    pub fn collect_with_activity(
        &self,
        key: [u8; 16],
        n_traces: usize,
        armed: Option<TrojanKind>,
        seed: u64,
    ) -> Result<(Vec<TraceSet>, ToggleActivity), TrustError> {
        let _span = telemetry::span("array.collect");
        telemetry::counter("array.traces", (n_traces * self.array.len()) as u64);
        let pt: [u8; 16] = StdRng::seed_from_u64(seed ^ 0x97).gen();
        let leak_sense = armed
            .and_then(|k| self.chip.trojan_ports(k))
            .and_then(|p| p.leak_sense);

        // One serial simulation pass (Trojan state must evolve in
        // encryption order), recording every encryption's activity.
        let recorded = {
            let _span = telemetry::span("simulate");
            let mut sim = self.chip.simulator()?;
            self.chip.disarm_all(&mut sim);
            if let Some(kind) = armed {
                self.chip.arm(&mut sim, kind, true);
            }
            let _ = run_encryption_with(&mut sim, self.chip.aes_ports(), key, pt, |_| {});
            let mut recorded = Vec::with_capacity(n_traces);
            for _ in 0..n_traces {
                sim.start_recording();
                let mut leak_per_cycle = Vec::new();
                let _ct = run_encryption_with(&mut sim, self.chip.aes_ports(), key, pt, |s| {
                    if let Some(net) = leak_sense {
                        // Leakage path opens while the sense bit is low.
                        leak_per_cycle.push(if s.value(net) { 0.0 } else { T2_LEAK_CURRENT_A });
                    }
                });
                let activity = sim.take_recording();
                recorded.push((activity, leak_sense.is_some().then_some(leak_per_cycle)));
            }
            recorded
        };

        // Measurement fans over traces; inside each trace, one
        // synthesize_multi pass renders every tile's weighted current.
        let trace_seed = |i: usize| seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let per_trace =
            self.config
                .parallel
                .try_map(n_traces, |i| -> Result<Vec<Vec<f64>>, TrustError> {
                    let (activity, extra) = &recorded[i];
                    let tiles = self.array.measure_multi(
                        self.chip.netlist(),
                        activity,
                        extra.as_deref(),
                        &[],
                        trace_seed(i),
                        1,
                    )?;
                    Ok(tiles.into_iter().map(VoltageTrace::into_samples).collect())
                })?;

        // Transpose trace-major → tile-major.
        let mut per_tile: Vec<Vec<Vec<f64>>> = (0..self.array.len())
            .map(|_| Vec::with_capacity(n_traces))
            .collect();
        for tiles in per_trace {
            for (t, samples) in tiles.into_iter().enumerate() {
                per_tile[t].push(samples);
            }
        }
        let mut toggles = ToggleActivity::new();
        for (activity, _) in &recorded {
            toggles.absorb(activity);
        }
        let sets = per_tile
            .into_iter()
            .map(|ts| TraceSet::new(ts, self.clock.sample_rate_hz()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((sets, toggles))
    }

    /// Fits one golden fingerprint and one detection pipeline per tile.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] unless `golden` holds exactly
    /// one trace set per tile; forwarded fitting errors otherwise.
    pub fn fit_golden(&mut self, golden: &[TraceSet]) -> Result<(), TrustError> {
        let _span = telemetry::span("array.fit");
        if golden.len() != self.array.len() {
            return Err(TrustError::InvalidParameter {
                what: "fit_golden needs one golden trace set per tile",
            });
        }
        let mut pipelines = Vec::with_capacity(golden.len());
        for (t, set) in golden.iter().enumerate() {
            let fp = GoldenFingerprint::fit(set, self.config.fingerprint)?;
            let tile = &self.array.tiles()[t];
            let labels = self
                .config
                .labels
                .with("tile", format!("r{}c{}", tile.row(), tile.col()));
            let mut builder = DetectionPipeline::builder()
                .detector(Box::new(EuclideanDetector::new(fp)))
                .fusion(self.config.fusion.clone())
                .parallel(self.config.parallel)
                .labels(labels);
            if let Some(cfg) = self.config.forensics.clone() {
                builder = builder.forensics(cfg);
            }
            if let Some(cfg) = self.config.persistence {
                builder = builder.detector_config(&DetectorConfig::SpectralPersistence(cfg))?;
            }
            pipelines.push(builder.build());
        }
        self.pipelines = pipelines;
        self.self_calibrating = false;
        Ok(())
    }

    /// Fits one **self-calibrating** pipeline per tile — no golden
    /// material is consulted. Each tile's Euclidean detector learns a
    /// rolling robust baseline from the live traffic fed through
    /// [`Self::calibrate`] (or scored through [`Self::evaluate`]), and
    /// campaign verdicts come from the [`ConsensusDetector`]'s
    /// spatial-asymmetry vote instead of any single tile's alarm.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the baseline or consensus
    /// configuration is out of range.
    pub fn fit_reference_free(&mut self, cfg: SelfCalibratingConfig) -> Result<(), TrustError> {
        let _span = telemetry::span("array.fit");
        cfg.validate()?;
        self.config.consensus.validate()?;
        let source = BaselineSource::SelfCalibrating(cfg);
        let mut pipelines = Vec::with_capacity(self.array.len());
        for tile in self.array.tiles() {
            let labels = self
                .config
                .labels
                .with("tile", format!("r{}c{}", tile.row(), tile.col()));
            let mut builder = DetectionPipeline::builder()
                .detector_config(&DetectorConfig::Euclidean(self.config.fingerprint))?
                .fusion(self.config.fusion.clone())
                .parallel(self.config.parallel)
                .labels(labels);
            if let Some(fcfg) = self.config.forensics.clone() {
                builder = builder.forensics(fcfg);
            }
            if let Some(pcfg) = self.config.persistence {
                builder = builder.detector_config(&DetectorConfig::SpectralPersistence(pcfg))?;
            }
            let mut pipeline = builder.build();
            pipeline.fit_baseline(&source)?;
            pipelines.push(pipeline);
        }
        self.pipelines = pipelines;
        self.self_calibrating = true;
        Ok(())
    }

    /// Feeds one clean campaign (one trace set per tile, as returned by
    /// [`Self::collect`]) through the tile pipelines purely to advance
    /// their rolling baselines — no verdict is produced and no campaign
    /// decision is logged. Use after [`Self::fit_reference_free`] until
    /// [`Self::calibration_state`] reports `Armed`.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the array is unfitted or the
    /// set count mismatches; forwarded scoring errors otherwise.
    pub fn calibrate(&mut self, clean: &[TraceSet]) -> Result<(), TrustError> {
        let _span = telemetry::span("array.calibrate");
        if !self.is_fitted() {
            return Err(TrustError::InvalidParameter {
                what: "array is not fitted: call fit_golden or fit_reference_free first",
            });
        }
        if clean.len() != self.array.len() {
            return Err(TrustError::InvalidParameter {
                what: "calibrate needs one clean trace set per tile",
            });
        }
        for (t, set) in clean.iter().enumerate() {
            self.pipelines[t].try_ingest_batch(set.traces())?;
        }
        Ok(())
    }

    /// Scores one suspect campaign (one trace set per tile, as returned
    /// by [`Self::collect`]) and localizes the excess energy.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the array is unfitted or the
    /// set count mismatches; forwarded scoring errors otherwise.
    #[deprecated(
        since = "0.1.0",
        note = "use `attribute` — it returns the structured `Attribution` result \
                (ranked regions, optional cell tier, metric methods)"
    )]
    pub fn evaluate(&mut self, suspects: &[TraceSet]) -> Result<ArrayVerdict, TrustError> {
        self.evaluate_inner(suspects)
    }

    /// Scores one suspect campaign and attributes the excess energy:
    /// the region tier always, and — when `evidence` carries the
    /// campaign's switching activity (from
    /// [`Self::collect_with_activity`]) — a ranked per-cell suspicion
    /// tier.
    ///
    /// The tile heat map, alarm decision and region ranking are
    /// bit-identical to the deprecated [`Self::evaluate`]; the cell
    /// tier is computed on top, without touching the pipelines.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] if the array is unfitted, the
    /// set count mismatches, or the evidence is degenerate; forwarded
    /// scoring errors otherwise.
    pub fn attribute(
        &mut self,
        suspects: &[TraceSet],
        evidence: Option<&CellEvidence<'_>>,
    ) -> Result<Attribution, TrustError> {
        let verdict = self.evaluate_inner(suspects)?;
        let cells = match evidence {
            Some(ev) => {
                let centers: Vec<(f64, f64)> = self
                    .array
                    .tiles()
                    .iter()
                    .map(|t| {
                        let c = t.center();
                        (c.x, c.y)
                    })
                    .collect();
                attribution::score_cells(
                    self.chip.netlist(),
                    &self.floorplan,
                    &centers,
                    &verdict.heat,
                    verdict.centroid_um,
                    ev,
                )?
            }
            None => Vec::new(),
        };
        Ok(Attribution::from_parts(
            verdict.heat,
            verdict.centroid_um,
            verdict.regions,
            cells,
            verdict.alarmed,
            verdict.consensus,
        ))
    }

    fn evaluate_inner(&mut self, suspects: &[TraceSet]) -> Result<ArrayVerdict, TrustError> {
        let _span = telemetry::span("array.evaluate");
        if !self.is_fitted() {
            return Err(TrustError::InvalidParameter {
                what: "array is not fitted: call fit_golden or fit_reference_free first",
            });
        }
        if suspects.len() != self.array.len() {
            return Err(TrustError::InvalidParameter {
                what: "evaluate needs one suspect trace set per tile",
            });
        }
        let mut heat = Vec::with_capacity(self.array.len());
        let mut alarmed = false;
        for (t, set) in suspects.iter().enumerate() {
            let batch = self.pipelines[t].try_ingest_batch(set.traces())?;
            let mut margin_sum = 0.0;
            let mut alarms = 0usize;
            let mut scored = 0usize;
            for outcome in &batch.outcomes {
                // The Euclidean detector is registered first on every
                // tile; its relative margin is the heat-map currency.
                if let Some(vote) = outcome.votes.first() {
                    let thr = vote.score.threshold;
                    let rel = if thr.abs() > f64::EPSILON {
                        (vote.score.statistic - thr) / thr.abs()
                    } else {
                        vote.score.statistic
                    };
                    margin_sum += rel.max(0.0);
                    scored += 1;
                }
                if outcome.alarm.is_some() {
                    alarms += 1;
                }
            }
            alarmed |= alarms > 0;
            let tile = &self.array.tiles()[t];
            let c = tile.center();
            heat.push(TileScore {
                row: tile.row(),
                col: tile.col(),
                center_um: (c.x, c.y),
                margin: if scored > 0 {
                    margin_sum / scored as f64
                } else {
                    0.0
                },
                alarm_rate: if scored > 0 {
                    alarms as f64 / scored as f64
                } else {
                    0.0
                },
            });
        }
        let scores: Vec<f64> = heat.iter().map(|h| h.margin).collect();
        // Reference-free arrays decide by spatial consensus: single-tile
        // alarms are advisory (their thresholds are self-learned), the
        // asymmetry of the heat map is the campaign verdict.
        let mut consensus = None;
        if self.self_calibrating && scores.len() >= self.config.consensus.min_tiles {
            let det = ConsensusDetector::new(self.config.consensus)?;
            let score = det.score(&FeatureFrame::new(&scores))?;
            let suspected = det.verdict(&score);
            alarmed = suspected;
            consensus = Some(DetectorVerdict {
                detector: det.name(),
                suspected,
                score,
            });
        }
        let localizer = self.localizer();
        let centroid_um = localizer.centroid(&scores);
        let regions = localizer.rank(&scores, &self.floorplan);
        let index = self.campaigns;
        self.campaigns += 1;
        if self.config.forensics.is_some() || telemetry::is_enabled() {
            let mut rec = DecisionRecord::new("array");
            rec.index = Some(index);
            rec.labels = self.config.labels.clone();
            rec.verdict = if alarmed { "alarmed" } else { "clean" }.to_string();
            rec.fused_alarm = alarmed;
            if self.self_calibrating {
                rec.calibration = Some(self.calibration_state().label().to_string());
            }
            rec.tiles = heat
                .iter()
                .map(|h| TileMargin {
                    row: h.row,
                    col: h.col,
                    margin: h.margin,
                    alarm_rate: h.alarm_rate,
                })
                .collect();
            telemetry::decision(&rec);
            if let Some(cfg) = &self.config.forensics {
                if self.decisions.len() < cfg.max_decisions {
                    self.decisions.push(rec);
                } else {
                    self.decisions_dropped += 1;
                }
            }
        }
        Ok(ArrayVerdict {
            heat,
            centroid_um,
            regions,
            alarmed,
            consensus,
        })
    }

    /// Campaign decision records, oldest first (one per
    /// [`Self::evaluate`]; empty unless forensics was enabled).
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Campaign records dropped after the decision log filled.
    pub fn decisions_dropped(&self) -> u64 {
        self.decisions_dropped
    }

    /// Campaigns evaluated so far.
    pub fn campaigns(&self) -> u64 {
        self.campaigns
    }
}

#[cfg(test)]
#[deny(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ArrayConfig::default();
        assert_eq!((c.rows, c.cols), (2, 2));
        assert!(c.turns > 0);
        assert!(c.persistence.is_none());
        assert_eq!(c.fusion, FusionPolicy::Or);
    }

    #[test]
    fn builder_validates_grid_and_turns() {
        let chip = ProtectedChip::golden();
        assert!(SensorArray::builder(&chip).with_grid(0, 2).is_err());
        assert!(SensorArray::builder(&chip).with_grid(2, 0).is_err());
        assert!(SensorArray::builder(&chip).with_turns(0).is_err());
        assert!(SensorArray::builder(&chip).with_grid(3, 1).is_ok());
    }

    #[test]
    fn whitening_removes_the_common_mode() {
        let scores = [0.4, 0.5, 0.4, 2.4];
        let w = Localizer::whiten(&scores);
        assert_eq!(w[0], 0.0);
        assert!((w[3] - 1.95).abs() < 1e-12);
        // An all-equal heat map whitens to nothing.
        assert!(Localizer::whiten(&[0.7; 4]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn centroid_weights_toward_the_hot_tile() {
        let l = Localizer::new(vec![(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]);
        // All cold: undefined.
        assert!(l.centroid(&[0.1; 4]).is_none());
        // One hot tile: centroid lands on it.
        assert_eq!(l.centroid(&[0.0, 0.0, 0.0, 3.0]), Some((100.0, 100.0)));
        // Two equally hot tiles: midpoint.
        assert_eq!(l.centroid(&[0.0, 2.0, 0.0, 2.0]), Some((100.0, 50.0)));
        // Mismatched score vector: undefined.
        assert!(l.centroid(&[1.0; 3]).is_none());
    }

    #[test]
    fn verdict_ranking_helpers() {
        let v = ArrayVerdict {
            heat: Vec::new(),
            centroid_um: Some((1.0, 2.0)),
            regions: vec![
                RegionScore {
                    region: "trojan2".into(),
                    distance_um: 0.0,
                },
                RegionScore {
                    region: "aes".into(),
                    distance_um: 12.0,
                },
            ],
            alarmed: true,
            consensus: None,
        };
        assert_eq!(v.top_region(), Some("trojan2"));
        assert_eq!(v.region_rank("aes"), Some(1));
        assert!(v.hit_at("trojan2", 1));
        assert!(!v.hit_at("aes", 1));
        assert!(v.hit_at("aes", 3));
        assert!(!v.hit_at("trojan4", 9));
    }

    #[test]
    fn unfitted_array_refuses_to_evaluate() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let mut array = SensorArray::builder(&chip).with_grid(1, 1)?.build()?;
        assert!(!array.is_fitted());
        assert!(!array.is_self_calibrating());
        assert!(!array.calibration_state().is_armed());
        assert!(array.attribute(&[], None).is_err());
        assert!(array.calibrate(&[]).is_err());
        // Wrong golden arity is rejected too.
        assert!(array.fit_golden(&[]).is_err());
        Ok(())
    }

    #[test]
    fn consensus_config_bounds_are_enforced() {
        assert!(ConsensusConfig::default().validate().is_ok());
        assert!(ConsensusConfig {
            margin_threshold: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ConsensusConfig {
            margin_threshold: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ConsensusConfig {
            min_tiles: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        let chip = ProtectedChip::golden();
        assert!(SensorArray::builder(&chip)
            .with_consensus(ConsensusConfig {
                min_tiles: 0,
                ..Default::default()
            })
            .is_err());
    }

    #[test]
    fn consensus_votes_on_asymmetry_not_level() -> Result<(), TrustError> {
        let det = ConsensusDetector::new(ConsensusConfig::default())?;
        assert!(det.is_fitted());
        assert!(det.readiness().is_ready());
        // A concentrated excess trips the vote…
        let hot = [0.02, 0.05, 0.03, 1.4];
        let score = det.score(&FeatureFrame::new(&hot))?;
        // dsp's median takes the upper-middle element on even lengths.
        assert!((score.statistic - (1.4 - 0.05)).abs() < 1e-12);
        assert!(det.verdict(&score));
        // …a uniform lift (global drift, supply ramp) does not, however
        // large.
        let drifted = [3.0, 3.1, 3.0, 3.05];
        let score = det.score(&FeatureFrame::new(&drifted))?;
        assert!(!det.verdict(&score));
        // Degenerate inputs are rejected.
        assert!(det.score(&FeatureFrame::new(&[1.0])).is_err());
        assert!(det.score(&FeatureFrame::new(&[1.0, f64::NAN])).is_err());
        Ok(())
    }

    #[test]
    fn consensus_is_reference_free() -> Result<(), TrustError> {
        use crate::baseline::SelfCalibratingConfig;
        let mut det = ConsensusDetector::new(ConsensusConfig::default())?;
        // Fits on an empty golden context and on a self-calibrating
        // source alike.
        det.fit(&GoldenContext::new())?;
        det.fit_baseline(&BaselineSource::golden(GoldenContext::new()))?;
        det.fit_baseline(&BaselineSource::self_calibrating(
            SelfCalibratingConfig::default(),
        ))?;
        assert!(det
            .fit_baseline(&BaselineSource::self_calibrating(SelfCalibratingConfig {
                warmup: 0,
                ..Default::default()
            }))
            .is_err());
        Ok(())
    }

    #[test]
    fn reference_free_array_arms_after_warmup() -> Result<(), TrustError> {
        let chip = ProtectedChip::golden();
        let mut array = SensorArray::builder(&chip).with_grid(2, 1)?.build()?;
        let cfg = SelfCalibratingConfig {
            warmup: 2,
            ..Default::default()
        };
        array.fit_reference_free(cfg)?;
        assert!(array.is_fitted());
        assert!(array.is_self_calibrating());
        assert_eq!(
            array.calibration_state(),
            CalibrationState::Calibrating { ready: 0, total: 2 }
        );
        let clean = array.collect(*b"sixteen byte key", 2, None, 7)?;
        array.calibrate(&clean)?;
        assert!(array.calibration_state().is_armed());
        // A clean campaign after arming carries a consensus vote and no
        // alarm.
        let probe = array.collect(*b"sixteen byte key", 1, None, 8)?;
        let verdict = array.attribute(&probe, None)?;
        let consensus = verdict.consensus().ok_or(TrustError::InvalidParameter {
            what: "expected a consensus vote on a reference-free array",
        })?;
        assert_eq!(consensus.detector, "consensus");
        assert!(!verdict.alarmed());
        // No cell evidence was supplied, so the cell tier is empty.
        assert!(verdict.cell_scores().is_empty());
        Ok(())
    }
}
