//! The learned detector: a zero-dependency logistic-regression
//! classifier over [`FeatureFrame`]s, and the [`LogisticModel`] engine
//! it (and the register-level attribution harness) trains.
//!
//! MacLeR-style runtime Trojan detection shows a lightweight ML
//! classifier is viable on constrained devices; this module is the
//! `emtrust` counterpart, built under two hard constraints:
//!
//! - **No dependencies.** The model is plain batch gradient descent
//!   over standardized features — a few dozen lines of arithmetic, no
//!   linear-algebra crate.
//! - **Deterministic, seeded training.** Training itself uses no
//!   randomness at all (zero-initialized weights, full-batch descent in
//!   a fixed order), and the only stochastic ingredient — the synthetic
//!   anomaly augmentation — draws from a `StdRng` seeded by
//!   [`LearnedConfig::seed`]. Two fits from the same material are
//!   bit-identical, and because fitting happens serially (in
//!   [`Detector::fit`] / [`Detector::calibrate`]) while
//!   [`Detector::score`] is pure, results are bit-identical across
//!   worker counts too.
//!
//! The detector sees only *benign* material at fit time (golden traces,
//! or its own self-calibration warm-up ring), so it manufactures its
//! anomaly class: amplitude-scaled, jitter-perturbed copies of the
//! benign features, mimicking the extra switching current a Trojan
//! payload superimposes. That makes the classifier a one-class detector
//! trained discriminatively — and lets the same [`LogisticModel`] train
//! on genuinely labeled data when the attribution harness has some
//! (cells of the three Trojans left *in* under leave-one-Trojan-out).
//!
//! Both [`BaselineSource`] arms are
//! honored: `Golden` fits from the context's traces; `SelfCalibrating`
//! collects a health-gated warm-up ring of live frames and trains on
//! the ring once it fills, reporting
//! [`DetectorReadiness::Calibrating`] (and scoring benign) until then.

use crate::baseline::{BaselineSource, DetectorReadiness};
use crate::detector::{Detector, DetectorDomain, FeaturePlan, GoldenContext, Score, ScoreDetail};
use crate::features::{bin_rms, FeatureFrame, DEFAULT_RMS_BIN};
use crate::health::SensorHealth;
use crate::TrustError;
use emtrust_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Numerically safe logistic function.
fn sigmoid(z: f64) -> f64 {
    let z = z.clamp(-40.0, 40.0);
    1.0 / (1.0 + (-z).exp())
}

/// Gradient-descent knobs of a [`LogisticModel`] fit. Training is
/// full-batch in a fixed order with zero-initialized weights, so a
/// spec plus a training set determines the model bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSpec {
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 weight penalty (never applied to the bias).
    pub l2: f64,
    /// Re-weight classes inversely to their frequency — essential when
    /// positives are rare (a Trojan's cells are a sliver of the die).
    pub balance: bool,
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.5,
            l2: 1e-3,
            balance: true,
        }
    }
}

impl TrainSpec {
    /// Checks every invariant the trainer relies on.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] naming the violated bound.
    pub fn validate(&self) -> Result<(), TrustError> {
        if self.epochs == 0 {
            return Err(TrustError::InvalidParameter {
                what: "logistic training needs at least one epoch",
            });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(TrustError::InvalidParameter {
                what: "learning_rate must be positive and finite",
            });
        }
        if !(self.l2.is_finite() && self.l2 >= 0.0) {
            return Err(TrustError::InvalidParameter {
                what: "l2 must be non-negative and finite",
            });
        }
        Ok(())
    }
}

/// A fitted logistic-regression model: per-dimension standardization
/// (learned from the training set) followed by `σ(w·x + b)`.
///
/// Prediction is pure and self-contained, so a model can be handed to
/// worker threads or across crates (the attribution harness in
/// `emtrust-bench` trains one per held-out Trojan).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    mean: Vec<f64>,
    scale: Vec<f64>,
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Trains on `features` (row per example) against boolean `labels`
    /// (`true` = anomalous / Trojan class). Deterministic — see the
    /// module docs.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] on an empty or ragged training
    /// set, non-finite values, a label-count mismatch, a single-class
    /// set, or an out-of-range spec.
    pub fn train(
        features: &[Vec<f64>],
        labels: &[bool],
        spec: TrainSpec,
    ) -> Result<Self, TrustError> {
        spec.validate()?;
        let n = features.len();
        if n == 0 || labels.len() != n {
            return Err(TrustError::InvalidParameter {
                what: "logistic training needs one label per feature row",
            });
        }
        let dims = features[0].len();
        if dims == 0 {
            return Err(TrustError::InvalidParameter {
                what: "logistic training needs at least one feature dimension",
            });
        }
        for row in features {
            if row.len() != dims {
                return Err(TrustError::InvalidParameter {
                    what: "logistic training set is ragged",
                });
            }
            if row.iter().any(|x| !x.is_finite()) {
                return Err(TrustError::InvalidParameter {
                    what: "logistic training features must be finite",
                });
            }
        }
        let positives = labels.iter().filter(|&&l| l).count();
        if positives == 0 || positives == n {
            return Err(TrustError::InvalidParameter {
                what: "logistic training needs both classes represented",
            });
        }

        // Standardize per dimension; a constant dimension gets unit
        // scale so it contributes nothing rather than a division blowup.
        let mut mean = vec![0.0; dims];
        for row in features {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut scale = vec![0.0; dims];
        for row in features {
            for ((s, &m), &x) in scale.iter_mut().zip(&mean).zip(row) {
                let d = x - m;
                *s += d * d;
            }
        }
        for s in &mut scale {
            *s = (*s / n as f64).sqrt();
            if *s <= f64::EPSILON {
                *s = 1.0;
            }
        }

        // Inverse-frequency class weights (mean weight 1.0) when
        // balancing; uniform otherwise.
        let (w_pos, w_neg) = if spec.balance {
            let p = positives as f64;
            let q = (n - positives) as f64;
            (n as f64 / (2.0 * p), n as f64 / (2.0 * q))
        } else {
            (1.0, 1.0)
        };

        let std_rows: Vec<Vec<f64>> = features
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&mean)
                    .zip(&scale)
                    .map(|((&x, &m), &s)| (x - m) / s)
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        let mut grad = vec![0.0; dims];
        for _ in 0..spec.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for (row, &label) in std_rows.iter().zip(labels) {
                let z = bias + weights.iter().zip(row).map(|(&w, &x)| w * x).sum::<f64>();
                let err = sigmoid(z) - f64::from(u8::from(label));
                let cw = if label { w_pos } else { w_neg };
                for (g, &x) in grad.iter_mut().zip(row) {
                    *g += cw * err * x;
                }
                grad_b += cw * err;
            }
            let inv_n = 1.0 / n as f64;
            for (w, &g) in weights.iter_mut().zip(&grad) {
                *w -= spec.learning_rate * (g * inv_n + spec.l2 * *w);
            }
            bias -= spec.learning_rate * grad_b * inv_n;
        }
        Ok(Self {
            mean,
            scale,
            weights,
            bias,
        })
    }

    /// Feature dimensionality the model was trained on.
    pub fn dims(&self) -> usize {
        self.weights.len()
    }

    /// The learned weights, in standardized feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The raw decision value `w·x̂ + b` over standardized features.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] on a dimension mismatch or a
    /// non-finite feature.
    pub fn decision(&self, features: &[f64]) -> Result<f64, TrustError> {
        if features.len() != self.weights.len() {
            return Err(TrustError::InvalidParameter {
                what: "feature length does not match the logistic model",
            });
        }
        if features.iter().any(|x| !x.is_finite()) {
            return Err(TrustError::InvalidParameter {
                what: "logistic features must be finite",
            });
        }
        Ok(self.bias
            + self
                .weights
                .iter()
                .zip(features)
                .zip(self.mean.iter().zip(&self.scale))
                .map(|((&w, &x), (&m, &s))| w * ((x - m) / s))
                .sum::<f64>())
    }

    /// The predicted anomaly probability `σ(decision)`.
    ///
    /// # Errors
    ///
    /// Forwarded from [`Self::decision`].
    pub fn predict(&self, features: &[f64]) -> Result<f64, TrustError> {
        Ok(sigmoid(self.decision(features)?))
    }
}

/// Knobs of the [`LearnedDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Samples per RMS feature bin (matches
    /// [`crate::fingerprint::FingerprintConfig::rms_bin`]).
    pub rms_bin: usize,
    /// Gradient-descent spec for the trace classifier.
    pub train: TrainSpec,
    /// Seed of the synthetic-anomaly augmentation. Training is
    /// bit-identical for a fixed seed.
    pub seed: u64,
    /// Amplitude scales of the synthetic anomaly class — a Trojan's
    /// payload superimposes *extra* switching current, so anomalies are
    /// benign traces with more energy. Every scale must exceed 1.0: the
    /// model is linear, and a one-sided anomaly class is what keeps the
    /// benign class linearly separable.
    pub synthetic_scales: [f64; 3],
    /// Per-bin multiplicative jitter of the synthetic anomalies.
    pub synthetic_jitter: f64,
    /// Probability threshold of the suspected verdict.
    pub decision_probability: f64,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        Self {
            rms_bin: DEFAULT_RMS_BIN,
            train: TrainSpec {
                balance: false,
                ..TrainSpec::default()
            },
            seed: 0x1ea2ced,
            synthetic_scales: [1.1, 1.2, 1.4],
            synthetic_jitter: 0.03,
            decision_probability: 0.5,
        }
    }
}

impl LearnedConfig {
    /// Checks every invariant the detector relies on.
    ///
    /// # Errors
    ///
    /// [`TrustError::InvalidParameter`] naming the violated bound.
    pub fn validate(&self) -> Result<(), TrustError> {
        if self.rms_bin == 0 {
            return Err(TrustError::InvalidParameter {
                what: "rms_bin must be >= 1",
            });
        }
        self.train.validate()?;
        if self
            .synthetic_scales
            .iter()
            .any(|s| !s.is_finite() || *s <= 1.0)
        {
            return Err(TrustError::InvalidParameter {
                what: "synthetic_scales must be finite and exceed 1.0",
            });
        }
        if !(self.synthetic_jitter.is_finite() && (0.0..1.0).contains(&self.synthetic_jitter)) {
            return Err(TrustError::InvalidParameter {
                what: "synthetic_jitter must be in [0, 1)",
            });
        }
        if !(self.decision_probability.is_finite()
            && (0.0..1.0).contains(&self.decision_probability)
            && self.decision_probability > 0.0)
        {
            return Err(TrustError::InvalidParameter {
                what: "decision_probability must be in (0, 1)",
            });
        }
        Ok(())
    }
}

/// Warm-up ring of a self-calibrating [`LearnedDetector`].
#[derive(Debug, Clone)]
struct LearnedWarmup {
    required: usize,
    rms_bin: usize,
    ring: Vec<Vec<f64>>,
}

/// The fourth built-in [`Detector`]: a logistic-regression trace
/// classifier alongside Euclidean / spectral-window /
/// spectral-persistence (see the module docs for the training story).
///
/// The statistic is the predicted anomaly probability against the
/// configured probability threshold, so scores are directly
/// interpretable and fuse cleanly with the margin-style detectors.
#[derive(Debug, Clone)]
pub struct LearnedDetector {
    config: LearnedConfig,
    model: Option<LogisticModel>,
    selfcal: Option<LearnedWarmup>,
}

impl LearnedDetector {
    /// An unfitted detector with the given knobs; fit it from a
    /// [`GoldenContext`] or a [`BaselineSource`].
    pub fn from_config(config: LearnedConfig) -> Self {
        Self {
            config,
            model: None,
            selfcal: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> LearnedConfig {
        self.config
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&LogisticModel> {
        self.model.as_ref()
    }

    /// Builds the synthetic two-class training set from benign feature
    /// rows and trains the classifier. Deterministic for a fixed seed.
    fn train_from_benign(&self, benign: &[Vec<f64>]) -> Result<LogisticModel, TrustError> {
        if benign.len() < 2 {
            return Err(TrustError::InvalidParameter {
                what: "learned detector needs at least two benign observations",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut features =
            Vec::with_capacity(benign.len() * (1 + self.config.synthetic_scales.len()));
        let mut labels = Vec::with_capacity(features.capacity());
        for row in benign {
            features.push(row.clone());
            labels.push(false);
        }
        let jitter = self.config.synthetic_jitter;
        for row in benign {
            for &scale in &self.config.synthetic_scales {
                let anomaly: Vec<f64> = row
                    .iter()
                    .map(|&x| x * scale * (1.0 + jitter * rng.gen_range(-1.0..1.0)))
                    .collect();
                features.push(anomaly);
                labels.push(true);
            }
        }
        LogisticModel::train(&features, &labels, self.config.train)
    }
}

impl Detector for LearnedDetector {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn domain(&self) -> DetectorDomain {
        DetectorDomain::PerEncryption
    }

    fn feature_plan(&self) -> FeaturePlan {
        // Scores raw per-bin RMS features — no golden projection and no
        // spectrum are requested from the shared featurizer.
        FeaturePlan::default()
    }

    fn fit(&mut self, ctx: &GoldenContext<'_>) -> Result<(), TrustError> {
        self.config.validate()?;
        let traces = ctx.traces.ok_or(TrustError::InvalidParameter {
            what: "learned detector needs golden traces to fit",
        })?;
        let benign: Vec<Vec<f64>> = traces
            .traces()
            .iter()
            .map(|t| bin_rms(t, self.config.rms_bin))
            .collect::<Result<_, _>>()?;
        self.model = Some(self.train_from_benign(&benign)?);
        self.selfcal = None;
        Ok(())
    }

    fn fit_baseline(&mut self, source: &BaselineSource<'_>) -> Result<(), TrustError> {
        match source {
            BaselineSource::Golden(ctx) => self.fit(ctx),
            BaselineSource::SelfCalibrating(cfg) => {
                self.config.validate()?;
                cfg.validate()?;
                self.model = None;
                self.selfcal = Some(LearnedWarmup {
                    required: cfg.warmup,
                    rms_bin: cfg.rms_bin,
                    ring: Vec::with_capacity(cfg.warmup),
                });
                Ok(())
            }
        }
    }

    fn is_fitted(&self) -> bool {
        self.model.is_some() || self.selfcal.is_some()
    }

    fn readiness(&self) -> DetectorReadiness {
        if self.model.is_some() {
            return DetectorReadiness::Ready;
        }
        match &self.selfcal {
            Some(w) => DetectorReadiness::Calibrating {
                seen: w.ring.len().min(u32::MAX as usize) as u32,
                required: w.required.min(u32::MAX as usize) as u32,
            },
            None => DetectorReadiness::NeedsGoldenTraces,
        }
    }

    fn score(&self, frame: &FeatureFrame<'_>) -> Result<Score, TrustError> {
        let Some(model) = self.model.as_ref() else {
            if self.selfcal.is_some() {
                // Warm-up: benign by construction (the verdict
                // comparison is strict).
                return Ok(Score {
                    statistic: 0.0,
                    threshold: self.config.decision_probability,
                    detail: ScoreDetail::None,
                });
            }
            return Err(TrustError::InvalidParameter {
                what: "learned detector is not fitted",
            });
        };
        let rms_bin = self
            .selfcal
            .as_ref()
            .map_or(self.config.rms_bin, |w| w.rms_bin);
        let feats = bin_rms(frame.samples(), rms_bin)?;
        Ok(Score {
            statistic: model.predict(&feats)?,
            threshold: self.config.decision_probability,
            detail: ScoreDetail::None,
        })
    }

    fn calibrate(&mut self, frame: &FeatureFrame<'_>, _score: &Score, health: SensorHealth) {
        if self.model.is_some() {
            // The self-learned classifier is frozen at arming, like the
            // spectral warm-up: probabilities do not drift-track.
            return;
        }
        let benign = {
            let Some(w) = &mut self.selfcal else {
                return;
            };
            if health != SensorHealth::Healthy {
                telemetry::counter("baseline.calibrate_skips", 1);
                return;
            }
            let feats = match bin_rms(frame.samples(), w.rms_bin) {
                Ok(f) if f.iter().all(|x| x.is_finite()) => f,
                _ => {
                    telemetry::counter("baseline.calibrate_skips", 1);
                    return;
                }
            };
            if let Some(first) = w.ring.first() {
                if first.len() != feats.len() {
                    telemetry::counter("baseline.calibrate_skips", 1);
                    return;
                }
            }
            w.ring.push(feats);
            if w.ring.len() < w.required {
                return;
            }
            // The filled ring is consumed; on a degenerate warm-up the
            // (now empty) ring restarts instead of wedging.
            std::mem::take(&mut w.ring)
        };
        match self.train_from_benign(&benign) {
            Ok(model) => self.model = Some(model),
            Err(_) => telemetry::counter("baseline.calibrate_skips", 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::TraceSet;
    use crate::baseline::SelfCalibratingConfig;

    fn synthetic_set(n: usize, amplitude: f64, seed: u64) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(seed);
        TraceSet::new(
            (0..n)
                .map(|_| {
                    (0..256)
                        .map(|j| {
                            amplitude * ((j as f64 / 7.0).sin() + 0.02 * rng.gen_range(-1.0..1.0))
                        })
                        .collect()
                })
                .collect(),
            640e6,
        )
        .unwrap()
    }

    #[test]
    fn training_is_deterministic_and_seed_sensitive() {
        let golden = synthetic_set(16, 1.0, 1);
        let mut a = LearnedDetector::from_config(LearnedConfig::default());
        let mut b = LearnedDetector::from_config(LearnedConfig::default());
        a.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        b.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        assert_eq!(a.model(), b.model(), "same seed must train bit-identically");
        let mut c = LearnedDetector::from_config(LearnedConfig {
            seed: 999,
            ..LearnedConfig::default()
        });
        c.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        assert_ne!(a.model(), c.model(), "the augmentation seed must matter");
    }

    #[test]
    fn learned_detector_separates_energy_anomalies() {
        let golden = synthetic_set(24, 1.0, 1);
        let mut det = LearnedDetector::from_config(LearnedConfig::default());
        assert!(!det.is_fitted());
        assert!(det.score(&FeatureFrame::new(&[1.0; 64])).is_err());
        det.fit(&GoldenContext::new().with_traces(&golden)).unwrap();
        assert!(det.is_fitted());
        assert!(det.readiness().is_ready());

        let clean = synthetic_set(8, 1.0, 7);
        for t in clean.traces() {
            let s = det.score(&FeatureFrame::new(t)).unwrap();
            assert!(!det.verdict(&s), "clean trace scored {}", s.statistic);
        }
        let hot = synthetic_set(8, 1.3, 9);
        let flagged = hot
            .traces()
            .iter()
            .filter(|t| {
                let s = det.score(&FeatureFrame::new(t)).unwrap();
                det.verdict(&s)
            })
            .count();
        assert!(flagged >= 7, "only {flagged}/8 hot traces flagged");
    }

    #[test]
    fn self_calibrating_learned_detector_arms_from_live_frames() {
        let mut det = LearnedDetector::from_config(LearnedConfig::default());
        let cfg = SelfCalibratingConfig {
            warmup: 8,
            ..SelfCalibratingConfig::default()
        };
        det.fit_baseline(&BaselineSource::self_calibrating(cfg))
            .unwrap();
        assert!(det.is_fitted());
        assert!(!det.readiness().is_ready());

        let clean = synthetic_set(8, 1.0, 3);
        for t in clean.traces() {
            let frame = FeatureFrame::new(t);
            let score = det.score(&frame).unwrap();
            // Warm-up scores are benign by construction.
            assert!(!det.verdict(&score));
            det.calibrate(&frame, &score, SensorHealth::Healthy);
        }
        assert!(det.readiness().is_ready(), "ring filled, must be armed");
        let hot = synthetic_set(4, 1.35, 5);
        let flagged = hot
            .traces()
            .iter()
            .filter(|t| {
                let s = det.score(&FeatureFrame::new(t)).unwrap();
                det.verdict(&s)
            })
            .count();
        assert!(flagged >= 3, "only {flagged}/4 hot traces flagged");
    }

    #[test]
    fn unhealthy_frames_never_join_the_warmup() {
        let mut det = LearnedDetector::from_config(LearnedConfig::default());
        det.fit_baseline(&BaselineSource::self_calibrating(SelfCalibratingConfig {
            warmup: 2,
            ..SelfCalibratingConfig::default()
        }))
        .unwrap();
        let clean = synthetic_set(2, 1.0, 3);
        let t = &clean.traces()[0];
        let frame = FeatureFrame::new(t);
        let score = det.score(&frame).unwrap();
        det.calibrate(&frame, &score, SensorHealth::Degraded);
        det.calibrate(&frame, &score, SensorHealth::SensorFault);
        assert_eq!(
            det.readiness(),
            DetectorReadiness::Calibrating {
                seen: 0,
                required: 2
            }
        );
    }

    #[test]
    fn logistic_model_validates_inputs() {
        assert!(LogisticModel::train(&[], &[], TrainSpec::default()).is_err());
        assert!(
            LogisticModel::train(&[vec![1.0], vec![2.0]], &[true], TrainSpec::default()).is_err()
        );
        // One-class sets are rejected.
        assert!(LogisticModel::train(
            &[vec![1.0], vec![2.0]],
            &[false, false],
            TrainSpec::default()
        )
        .is_err());
        // Ragged rows are rejected.
        assert!(LogisticModel::train(
            &[vec![1.0], vec![2.0, 3.0]],
            &[false, true],
            TrainSpec::default()
        )
        .is_err());
        let m = LogisticModel::train(
            &[
                vec![0.0, 1.0],
                vec![0.1, 1.1],
                vec![2.0, 3.0],
                vec![2.1, 3.2],
            ],
            &[false, false, true, true],
            TrainSpec::default(),
        )
        .unwrap();
        assert_eq!(m.dims(), 2);
        assert!(m.predict(&[0.0, 1.0]).unwrap() < 0.5);
        assert!(m.predict(&[2.0, 3.0]).unwrap() > 0.5);
        assert!(m.predict(&[1.0]).is_err());
        assert!(m.predict(&[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn balanced_training_handles_rare_positives() {
        // 60 negatives around 0, 4 positives around 3: an unbalanced fit
        // could drown the positives; the balanced one must rank every
        // positive above every negative.
        let mut rng = StdRng::seed_from_u64(5);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            features.push(vec![rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]);
            labels.push(false);
        }
        for _ in 0..4 {
            features.push(vec![
                3.0 + rng.gen_range(-0.2..0.2),
                3.0 + rng.gen_range(-0.2..0.2),
            ]);
            labels.push(true);
        }
        let m = LogisticModel::train(&features, &labels, TrainSpec::default()).unwrap();
        let worst_pos = features
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(f, _)| m.predict(f).unwrap())
            .fold(f64::INFINITY, f64::min);
        let best_neg = features
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(f, _)| m.predict(f).unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst_pos > best_neg);
    }

    #[test]
    fn config_bounds_are_enforced() {
        assert!(LearnedConfig::default().validate().is_ok());
        let cases = [
            LearnedConfig {
                rms_bin: 0,
                ..LearnedConfig::default()
            },
            LearnedConfig {
                synthetic_scales: [1.0, 1.2, 1.3],
                ..LearnedConfig::default()
            },
            LearnedConfig {
                synthetic_jitter: 1.0,
                ..LearnedConfig::default()
            },
            LearnedConfig {
                decision_probability: 0.0,
                ..LearnedConfig::default()
            },
            LearnedConfig {
                train: TrainSpec {
                    epochs: 0,
                    ..TrainSpec::default()
                },
                ..LearnedConfig::default()
            },
        ];
        for cfg in cases {
            assert!(cfg.validate().is_err(), "{cfg:?} must be rejected");
        }
    }
}
